//! The abstract-interpretation lint pass.
//!
//! The analyzer walks a strategy once, tracking for every view the abstract
//! update state a real execution would be in:
//!
//! * **installed** — views whose delta has landed in the stored extent
//!   (reads of them observe the *fresh* state);
//! * **computed** — views whose delta has been (partially) computed, with
//!   the positions of the computing expressions;
//! * **propagated** — which sources each view's `Comp`s have covered.
//!
//! Every `Comp(V, O)` *reads* ΔW and the stale extent of W for each `W ∈ O`,
//! reads the fresh-or-stale extent of V's remaining sources according to the
//! installed set, and *writes* ΔV. Every `Inst(V)` reads ΔV and writes V's
//! extent. The rules below are phrased over those effects and are, by
//! construction, **exactly equivalent** to the dynamic checkers
//! [`uww_vdag::check_view_strategy`] / [`uww_vdag::check_vdag_strategy`] on
//! sequential strategies: [`Report::has_errors`] is `true` iff the dynamic
//! checker rejects (a property test asserts this on random strategies).
//! On parallel strategies the analyzer is strictly stronger: `UWW001`
//! catches stage races the dynamic check of the linearization cannot see.

use crate::diag::{Diagnostic, Report, Rule, Severity};
use std::collections::{BTreeMap, BTreeSet};
use uww_vdag::{Strategy, UpdateExpr, Vdag, ViewId};

/// Renders a view name, tolerating ids outside the VDAG.
pub(crate) fn safe_name(g: &Vdag, v: ViewId) -> String {
    if v.0 < g.len() {
        g.name(v).to_string()
    } else {
        format!("#{}", v.0)
    }
}

/// Renders an expression, tolerating ids outside the VDAG.
pub(crate) fn safe_expr(g: &Vdag, e: &UpdateExpr) -> String {
    match e {
        UpdateExpr::Comp { view, over } => {
            let over: Vec<String> = over.iter().map(|v| safe_name(g, *v)).collect();
            format!("Comp({}, {{{}}})", safe_name(g, *view), over.join(", "))
        }
        UpdateExpr::Inst(v) => format!("Inst({})", safe_name(g, *v)),
    }
}

/// Accumulates diagnostics over one expression sequence.
struct Ctx<'g> {
    g: &'g Vdag,
    exprs: &'g [UpdateExpr],
    /// Well-formed flag per expression: every id in it names a view of `g`.
    wf: Vec<bool>,
    /// First position of `Inst(v)`.
    first_inst: BTreeMap<ViewId, usize>,
    /// Positions and over-sets of `Comp(v, ·)`, per view.
    comps: BTreeMap<ViewId, Vec<(usize, &'g BTreeSet<ViewId>)>>,
    out: Vec<Diagnostic>,
}

impl<'g> Ctx<'g> {
    fn new(g: &'g Vdag, exprs: &'g [UpdateExpr]) -> Self {
        Ctx {
            g,
            exprs,
            wf: vec![true; exprs.len()],
            first_inst: BTreeMap::new(),
            comps: BTreeMap::new(),
            out: Vec::new(),
        }
    }

    fn push(
        &mut self,
        rule: Rule,
        message: String,
        primary: Option<usize>,
        primary_label: &str,
        related: Vec<(usize, String)>,
        views: Vec<ViewId>,
    ) {
        let views = views
            .into_iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .map(|v| safe_name(self.g, v))
            .collect();
        self.out.push(Diagnostic {
            rule,
            severity: Severity::Error,
            message,
            primary,
            primary_label: primary_label.to_string(),
            related,
            views,
        });
    }

    /// UWW010: ids must name views; `Comp` must target a derived view with a
    /// non-empty over-set drawn from its sources.
    ///
    /// When `view_mode` is `Some(v)`, the Definition 3.1 shape is enforced
    /// instead: every `Comp` must target `v` and every `Inst` must target
    /// `v` or one of its sources.
    fn structural(&mut self, view_mode: Option<ViewId>) {
        let exprs = self.exprs;
        for (i, e) in exprs.iter().enumerate() {
            let mut ids: Vec<ViewId> = vec![e.subject()];
            if let UpdateExpr::Comp { over, .. } = e {
                ids.extend(over.iter().copied());
            }
            let unknown: Vec<ViewId> = ids
                .iter()
                .copied()
                .filter(|v| v.0 >= self.g.len())
                .collect();
            if !unknown.is_empty() {
                self.wf[i] = false;
                let msg = format!(
                    "{} refers to unknown view id{} {}",
                    safe_expr(self.g, e),
                    if unknown.len() == 1 { "" } else { "s" },
                    unknown
                        .iter()
                        .map(|v| format!("#{}", v.0))
                        .collect::<Vec<_>>()
                        .join(", "),
                );
                self.push(
                    Rule::MalformedExpr,
                    msg,
                    Some(i),
                    "not a view of this VDAG",
                    vec![],
                    vec![],
                );
                continue;
            }
            if let UpdateExpr::Comp { view, over } = e {
                match view_mode {
                    Some(target) if *view != target => {
                        self.push(
                            Rule::MalformedExpr,
                            format!(
                                "{} does not update {} (a view strategy may only compute its own delta)",
                                safe_expr(self.g, e),
                                safe_name(self.g, target),
                            ),
                            Some(i),
                            "computes a foreign delta",
                            vec![],
                            vec![*view, target],
                        );
                        continue;
                    }
                    None if self.g.is_base(*view) => {
                        self.push(
                            Rule::MalformedExpr,
                            format!(
                                "base view {} cannot have a Comp: base deltas arrive from the sources",
                                safe_name(self.g, *view),
                            ),
                            Some(i),
                            "Comp of a base view",
                            vec![],
                            vec![*view],
                        );
                        continue;
                    }
                    _ => {}
                }
                if over.is_empty() {
                    self.push(
                        Rule::MalformedExpr,
                        format!("{} has an empty over-set", safe_expr(self.g, e)),
                        Some(i),
                        "propagates nothing",
                        vec![],
                        vec![*view],
                    );
                }
                let sources = self.g.sources(*view);
                let alien: Vec<ViewId> = over
                    .iter()
                    .copied()
                    .filter(|o| !sources.contains(o))
                    .collect();
                for o in alien {
                    self.push(
                        Rule::MalformedExpr,
                        format!(
                            "{} propagates {}, which is not a source of {}",
                            safe_expr(self.g, e),
                            safe_name(self.g, o),
                            safe_name(self.g, *view),
                        ),
                        Some(i),
                        "over-set escapes the view's sources",
                        vec![],
                        vec![*view, o],
                    );
                }
            } else if let (UpdateExpr::Inst(v), Some(target)) = (e, view_mode) {
                if *v != target && !self.g.sources(target).contains(v) {
                    self.push(
                        Rule::MalformedExpr,
                        format!(
                            "{} installs a view foreign to {}'s strategy",
                            safe_expr(self.g, e),
                            safe_name(self.g, target),
                        ),
                        Some(i),
                        "foreign install",
                        vec![],
                        vec![*v, target],
                    );
                }
            }
        }
    }

    /// One forward pass: builds the abstract state (installed set, computed
    /// deltas) and flags `UWW004` duplicates and `UWW006` stale reads of
    /// already-installed views.
    fn forward(&mut self) {
        let exprs = self.exprs;
        let mut seen: BTreeMap<&UpdateExpr, usize> = BTreeMap::new();
        for (i, e) in exprs.iter().enumerate() {
            if !self.wf[i] {
                continue;
            }
            if let Some(&j) = seen.get(e) {
                self.push(
                    Rule::RedundantTerm,
                    format!("duplicate expression {}", safe_expr(self.g, e)),
                    Some(i),
                    "repeats the work",
                    vec![(j, "first occurrence".to_string())],
                    vec![e.subject()],
                );
            } else {
                seen.insert(e, i);
            }
            match e {
                UpdateExpr::Comp { view, over } => {
                    for o in over {
                        if let Some(&ip) = self.first_inst.get(o) {
                            self.push(
                                Rule::ReadAfterInstall,
                                format!(
                                    "{} reads Δ{} and the stale extent of {}, but {} was already installed",
                                    safe_expr(self.g, e),
                                    safe_name(self.g, *o),
                                    safe_name(self.g, *o),
                                    safe_name(self.g, *o),
                                ),
                                Some(i),
                                "needs the pre-install state",
                                vec![(ip, format!("{} becomes fresh here", safe_name(self.g, *o)))],
                                vec![*view, *o],
                            );
                        }
                    }
                    self.comps.entry(*view).or_default().push((i, over));
                }
                UpdateExpr::Inst(v) => {
                    self.first_inst.entry(*v).or_insert(i);
                }
            }
        }
    }

    /// Per-view checks over the accumulated abstract state, restricted to
    /// `views`: coverage (`UWW003`), installs (`UWW002`), install ordering
    /// between computes (`UWW007`), computes after the self-install
    /// (`UWW008`), and overlapping over-sets (`UWW004`).
    fn per_view(&mut self, views: &[ViewId]) {
        for &v in views {
            let sources: Vec<ViewId> = self.g.sources(v).to_vec();
            let vcomps: Vec<(usize, BTreeSet<ViewId>)> = self
                .comps
                .get(&v)
                .map(|c| c.iter().map(|(i, o)| (*i, (*o).clone())).collect())
                .unwrap_or_default();
            for src in &sources {
                if !vcomps.iter().any(|(_, o)| o.contains(src)) {
                    self.push(
                        Rule::UncoveredSource,
                        format!(
                            "changes of {} are never propagated into {}",
                            safe_name(self.g, *src),
                            safe_name(self.g, v),
                        ),
                        None,
                        "",
                        vec![],
                        vec![v, *src],
                    );
                }
            }
            let self_inst = self.first_inst.get(&v).copied();
            if self_inst.is_none() {
                let first_comp = vcomps.first().map(|(i, _)| *i);
                let message = if first_comp.is_some() {
                    format!(
                        "Δ{} is computed but never installed — the computed delta is dead and {}'s extent stays stale",
                        safe_name(self.g, v),
                        safe_name(self.g, v),
                    )
                } else {
                    format!(
                        "{} is never installed — its extent stays stale after the update window",
                        safe_name(self.g, v),
                    )
                };
                self.out.push(Diagnostic {
                    rule: Rule::DeadDelta,
                    severity: Severity::Error,
                    message,
                    primary: first_comp,
                    primary_label: if first_comp.is_some() {
                        "dead delta computed here".to_string()
                    } else {
                        String::new()
                    },
                    related: vec![],
                    views: vec![safe_name(self.g, v)],
                });
            }
            // C4 / UWW007: an earlier Comp's over-views must be installed
            // before any later Comp of the same view.
            for (a, (pi, oi)) in vcomps.iter().enumerate() {
                for (pj, _) in vcomps.iter().skip(a + 1) {
                    for w in oi {
                        if let Some(&ip) = self.first_inst.get(w) {
                            if ip > *pj {
                                self.push(
                                    Rule::InstallOrder,
                                    format!(
                                        "Inst({}) must precede the later Comp of {}: the second compute must read {}'s fresh extent",
                                        safe_name(self.g, *w),
                                        safe_name(self.g, v),
                                        safe_name(self.g, *w),
                                    ),
                                    Some(*pj),
                                    "reads a stale extent the earlier Comp already propagated",
                                    vec![
                                        (*pi, format!("propagates Δ{} here", safe_name(self.g, *w))),
                                        (ip, format!("{} installed too late", safe_name(self.g, *w))),
                                    ],
                                    vec![v, *w],
                                );
                            }
                        }
                    }
                }
            }
            // C5 / UWW008: computes after the self-install write a delta the
            // install already consumed.
            if let Some(sp) = self_inst {
                let exprs = self.exprs;
                for (p, _) in &vcomps {
                    if *p > sp {
                        self.push(
                            Rule::LateComp,
                            format!(
                                "{} is computed after Inst({}) — the installed extent misses this delta",
                                safe_expr(self.g, &exprs[*p]),
                                safe_name(self.g, v),
                            ),
                            Some(*p),
                            "delta computed after the install consumed ΔV",
                            vec![(sp, format!("{} installed here", safe_name(self.g, v)))],
                            vec![v],
                        );
                    }
                }
            }
            // UWW004 overlap: two computes of one view sharing an over
            // element double-propagate it, and C3+C4 make any ordering
            // incorrect.
            for (a, (pi, oi)) in vcomps.iter().enumerate() {
                for (pj, oj) in vcomps.iter().skip(a + 1) {
                    if oi == oj {
                        continue; // exact duplicate, flagged in forward()
                    }
                    let shared: Vec<ViewId> = oi.intersection(oj).copied().collect();
                    if let Some(w) = shared.first() {
                        self.push(
                            Rule::RedundantTerm,
                            format!(
                                "two Comps of {} both propagate {} — the changes would be applied twice",
                                safe_name(self.g, v),
                                safe_name(self.g, *w),
                            ),
                            Some(*pj),
                            "overlapping over-set",
                            vec![(*pi, format!("also propagates {}", safe_name(self.g, *w)))],
                            vec![v, *w],
                        );
                    }
                }
            }
        }
    }

    /// C8 / UWW009: a `Comp` reading Δ of a derived view needs that delta
    /// fully computed first.
    fn deltas_computed(&mut self) {
        let exprs = self.exprs;
        for (pk, ek) in exprs.iter().enumerate() {
            if !self.wf[pk] {
                continue;
            }
            if let UpdateExpr::Comp { view: vk, over } = ek {
                for vj in over {
                    if self.g.is_base(*vj) {
                        continue;
                    }
                    let positions = self
                        .comps
                        .get(vj)
                        .map(|l| l.iter().map(|(p, _)| *p).collect::<Vec<_>>());
                    match positions {
                        None => {
                            self.push(
                                Rule::UncomputedDelta,
                                format!(
                                    "{} reads Δ{}, but Δ{} is never computed",
                                    safe_expr(self.g, ek),
                                    safe_name(self.g, *vj),
                                    safe_name(self.g, *vj),
                                ),
                                Some(pk),
                                "reads a delta no Comp produces",
                                vec![],
                                vec![*vk, *vj],
                            );
                        }
                        Some(list) => {
                            for pj in list {
                                if pj >= pk {
                                    self.push(
                                        Rule::UncomputedDelta,
                                        format!(
                                            "{} reads Δ{} before {} finishes computing it",
                                            safe_expr(self.g, ek),
                                            safe_name(self.g, *vj),
                                            safe_expr(self.g, &exprs[pj]),
                                        ),
                                        Some(pk),
                                        "reads a partial delta",
                                        vec![(
                                            pj,
                                            format!(
                                                "Δ{} still being computed here",
                                                safe_name(self.g, *vj)
                                            ),
                                        )],
                                        vec![*vk, *vj],
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn finish(self) -> Report {
        let exprs = self.exprs.iter().map(|e| safe_expr(self.g, e)).collect();
        Report::new(exprs, self.out)
    }
}

/// Lints a whole-VDAG strategy (Definition 3.3).
///
/// Assumes the paper's batch model: every base view has pending changes, so
/// every view of the VDAG must be brought fresh. `Report::has_errors()` is
/// `true` exactly when [`uww_vdag::check_vdag_strategy`] rejects `s`.
pub fn analyze(g: &Vdag, s: &Strategy) -> Report {
    let mut ctx = Ctx::new(g, &s.exprs);
    ctx.structural(None);
    ctx.forward();
    let views: Vec<ViewId> = g.view_ids().collect();
    ctx.per_view(&views);
    ctx.deltas_computed();
    ctx.finish()
}

/// Lints a single-view strategy (Definition 3.1) for `view`.
///
/// `Report::has_errors()` is `true` exactly when
/// [`uww_vdag::check_view_strategy`] rejects `s`.
pub fn analyze_view(g: &Vdag, view: ViewId, s: &Strategy) -> Report {
    let mut ctx = Ctx::new(g, &s.exprs);
    if view.0 >= g.len() {
        ctx.push(
            Rule::MalformedExpr,
            format!("view id #{} is not part of this VDAG", view.0),
            None,
            "",
            vec![],
            vec![],
        );
        return ctx.finish();
    }
    ctx.structural(Some(view));
    ctx.forward();
    // Definition 3.1 constrains only the view and its sources.
    let mut views = vec![view];
    views.extend(g.sources(view).iter().copied());
    // Installs checked by C2: the view itself plus its sources. The global
    // per-view pass covers exactly that set here.
    ctx.per_view_installs_only(&views, view);
    ctx.finish()
}

impl Ctx<'_> {
    /// The Definition 3.1 variant of [`Ctx::per_view`]: coverage and C4/C5
    /// apply to `view` only, while the install requirement (C2) spans the
    /// view and all its sources.
    fn per_view_installs_only(&mut self, installed_required: &[ViewId], view: ViewId) {
        self.per_view(&[view]);
        for &v in installed_required {
            if v == view {
                continue; // handled by per_view above
            }
            if !self.first_inst.contains_key(&v) {
                self.push(
                    Rule::DeadDelta,
                    format!(
                        "{} is never installed — its extent stays stale after the update window",
                        safe_name(self.g, v),
                    ),
                    None,
                    "",
                    vec![],
                    vec![v],
                );
            }
        }
    }
}

/// The dependence relation of the parallel scheduler (Section 9): `later`
/// must not run in the same stage as (or before) `earlier`.
///
/// Mirrors `uww_core::parallel`'s list-scheduling dependence exactly:
/// C3 (`Inst` after the `Comp`s reading its delta), C5 (`Inst(V)` after
/// `Comp(V, ·)`), C8 (`Comp` producing a delta before the `Comp` reading
/// it), C4-ordering between same-view `Comp`s, and state preservation
/// (`Inst(v)` stays ordered with `Comp`s whose view reads `v`).
pub fn depends(g: &Vdag, earlier: &UpdateExpr, later: &UpdateExpr) -> bool {
    match (earlier, later) {
        (UpdateExpr::Comp { view, over }, UpdateExpr::Inst(v)) => over.contains(v) || *view == *v,
        (UpdateExpr::Comp { view: w1, .. }, UpdateExpr::Comp { view: w2, over }) => {
            *w1 == *w2 || over.contains(w1)
        }
        (UpdateExpr::Inst(v), UpdateExpr::Comp { view, .. }) => {
            view.0 < g.len() && g.sources(*view).contains(v)
        }
        (UpdateExpr::Inst(_), UpdateExpr::Inst(_)) => false,
    }
}

/// Lints a parallel strategy given as raw stages (avoids a dependency on
/// `uww_core::ParallelStrategy`; pass `&p.stages`).
///
/// Runs [`analyze`] on the linearization (stages concatenated; diagnostic
/// indices refer to it) and adds `UWW001` for every pair of expressions
/// sharing a stage that the scheduler's dependence relation orders. Such
/// pairs are real races: the threaded executor computes every `Comp` of a
/// stage against the frozen stage-entry state, so e.g. a same-stage
/// `Comp(V5, {V4})` misses the Δ`V4` its neighbour `Comp(V4, ·)` produces —
/// even though the linearized sequence passes the dynamic checker.
pub fn analyze_parallel(g: &Vdag, stages: &[Vec<UpdateExpr>]) -> Report {
    let linear: Vec<UpdateExpr> = stages.iter().flatten().cloned().collect();
    let base = analyze(g, &Strategy::from_exprs(linear.clone()));

    let mut races = Vec::new();
    let mut offset = 0usize;
    for (sn, stage) in stages.iter().enumerate() {
        for (a, ea) in stage.iter().enumerate() {
            for (b, eb) in stage.iter().enumerate().skip(a + 1) {
                let fwd = depends(g, ea, eb);
                let bwd = depends(g, eb, ea);
                if !fwd && !bwd {
                    continue;
                }
                let (first, second, fi, si) = if fwd {
                    (ea, eb, offset + a, offset + b)
                } else {
                    (eb, ea, offset + b, offset + a)
                };
                let message = if fwd && bwd {
                    format!(
                        "stage {} runs {} and {} concurrently, but they conflict in both directions and must run in different stages",
                        sn,
                        safe_expr(g, first),
                        safe_expr(g, second),
                    )
                } else {
                    format!(
                        "stage {} runs {} and {} concurrently, but {} must complete first",
                        sn,
                        safe_expr(g, first),
                        safe_expr(g, second),
                        safe_expr(g, first),
                    )
                };
                races.push(Diagnostic {
                    rule: Rule::StageRace,
                    severity: Severity::Error,
                    message,
                    primary: Some(si),
                    primary_label: "races against its dependency".to_string(),
                    related: vec![(fi, "must happen before".to_string())],
                    views: {
                        let mut vs: BTreeSet<String> = [first.subject(), second.subject()]
                            .into_iter()
                            .map(|v| safe_name(g, v))
                            .collect();
                        if let UpdateExpr::Comp { over, .. } = first {
                            vs.extend(over.iter().map(|v| safe_name(g, *v)));
                        }
                        vs.into_iter().collect()
                    },
                });
            }
        }
        offset += stage.len();
    }
    base.merge(Report::new(Vec::new(), races))
}

/// The crash-recovery gate: analyzes the concatenation of an
/// already-executed prefix with a proposed resume suffix.
///
/// Recovery replays the prefix from the WAL verbatim, so the only question
/// is whether *prefix ⧺ suffix* forms a correct strategy — e.g. a suffix
/// that re-propagates a view the prefix already installed trips `UWW006`
/// (read-after-install, C3), and one that drops a required install trips
/// `UWW002` (dead-delta, C2). Diagnostics whose span falls inside the
/// prefix indicate the journaled plan itself was never valid; either way
/// the resume must be refused.
pub fn analyze_resume(g: &Vdag, executed: &[UpdateExpr], suffix: &[UpdateExpr]) -> Report {
    let mut all = executed.to_vec();
    all.extend(suffix.iter().cloned());
    analyze(g, &Strategy::from_exprs(all))
}

/// Lints cost inputs: `UWW005` for non-finite or negative entries (labels
/// are free-form, typically `"Comp(V, {..})"` or a view name).
pub fn analyze_costs(items: &[(String, f64)]) -> Report {
    let mut out = Vec::new();
    for (i, (label, cost)) in items.iter().enumerate() {
        let problem = if cost.is_nan() {
            Some("is NaN")
        } else if cost.is_infinite() {
            Some("is infinite")
        } else if *cost < 0.0 {
            Some("is negative")
        } else {
            None
        };
        if let Some(p) = problem {
            out.push(Diagnostic {
                rule: Rule::CostAnomaly,
                severity: Severity::Error,
                message: format!("predicted work of {label} {p} ({cost})"),
                primary: Some(i),
                primary_label: "cost model produced a meaningless value".to_string(),
                related: vec![],
                views: vec![],
            });
        }
    }
    Report::new(items.iter().map(|(l, _)| l.clone()).collect(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_vdag::{check_vdag_strategy, check_view_strategy, dual_stage_strategy, figure3_vdag};

    fn id(g: &Vdag, n: &str) -> ViewId {
        g.id_of(n).unwrap()
    }

    /// Example 3.1's correct VDAG strategy.
    fn good_strategy(g: &Vdag) -> Strategy {
        Strategy::from_exprs(vec![
            UpdateExpr::comp1(id(g, "V4"), id(g, "V2")),
            UpdateExpr::inst(id(g, "V2")),
            UpdateExpr::comp1(id(g, "V4"), id(g, "V3")),
            UpdateExpr::inst(id(g, "V3")),
            UpdateExpr::comp1(id(g, "V5"), id(g, "V4")),
            UpdateExpr::inst(id(g, "V4")),
            UpdateExpr::comp1(id(g, "V5"), id(g, "V1")),
            UpdateExpr::inst(id(g, "V1")),
            UpdateExpr::inst(id(g, "V5")),
        ])
    }

    #[test]
    fn correct_strategies_lint_clean() {
        let g = figure3_vdag();
        for s in [good_strategy(&g), dual_stage_strategy(&g)] {
            check_vdag_strategy(&g, &s).unwrap();
            let r = analyze(&g, &s);
            assert!(r.is_clean(), "unexpected diagnostics:\n{}", r.render_text());
        }
    }

    #[test]
    fn resume_gate_accepts_every_split_of_a_correct_strategy() {
        let g = figure3_vdag();
        let s = good_strategy(&g);
        for k in 0..=s.len() {
            let r = analyze_resume(&g, &s.exprs[..k], &s.exprs[k..]);
            assert!(
                !r.has_errors(),
                "split at {k} refused:\n{}",
                r.render_text()
            );
        }
    }

    #[test]
    fn resume_gate_refuses_suffix_invalidated_by_the_prefix() {
        let g = figure3_vdag();
        let s = good_strategy(&g);
        // The executed prefix ends with Inst(V2) (index 0..2); a suffix that
        // re-propagates ΔV2 reads V2 after its install — C3 / UWW006.
        let executed = &s.exprs[..2];
        let mut suffix = s.exprs[2..].to_vec();
        suffix.insert(0, UpdateExpr::comp1(id(&g, "V4"), id(&g, "V2")));
        let r = analyze_resume(&g, executed, &suffix);
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.rule.id() == "UWW006"));
    }

    #[test]
    fn read_after_install_flagged() {
        let g = figure3_vdag();
        let mut s = good_strategy(&g);
        // Move Inst(V2) before its Comp.
        s.exprs.swap(0, 1);
        let r = analyze(&g, &s);
        assert!(r.has_errors());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::ReadAfterInstall));
        assert!(check_vdag_strategy(&g, &s).is_err());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::ReadAfterInstall)
            .unwrap();
        assert_eq!(d.span(), Some((0, 1)));
        assert!(d.views.contains(&"V2".to_string()));
    }

    #[test]
    fn dead_delta_flagged() {
        let g = figure3_vdag();
        let mut s = good_strategy(&g);
        // Drop Inst(V5): its computed delta is dead.
        s.exprs.retain(|e| *e != UpdateExpr::inst(id(&g, "V5")));
        let r = analyze(&g, &s);
        let dead: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::DeadDelta)
            .collect();
        assert_eq!(dead.len(), 1, "{}", r.render_text());
        assert!(dead[0].message.contains("never installed"));
        assert!(dead[0].views.contains(&"V5".to_string()));
        assert!(check_vdag_strategy(&g, &s).is_err());
    }

    #[test]
    fn uncovered_source_flagged() {
        let g = figure3_vdag();
        let mut s = good_strategy(&g);
        // Drop the propagation of V1 into V5 but keep V1's install.
        s.exprs
            .retain(|e| *e != UpdateExpr::comp1(id(&g, "V5"), id(&g, "V1")));
        let r = analyze(&g, &s);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::UncoveredSource && d.views.contains(&"V1".to_string())));
        assert!(check_vdag_strategy(&g, &s).is_err());
    }

    #[test]
    fn late_comp_and_install_order_flagged() {
        let g = figure3_vdag();
        // Comp(V4,{V3}) after Inst(V4): C5.
        let s = Strategy::from_exprs(vec![
            UpdateExpr::comp1(id(&g, "V4"), id(&g, "V2")),
            UpdateExpr::inst(id(&g, "V2")),
            UpdateExpr::comp1(id(&g, "V5"), id(&g, "V4")),
            UpdateExpr::inst(id(&g, "V4")),
            UpdateExpr::comp1(id(&g, "V4"), id(&g, "V3")),
            UpdateExpr::inst(id(&g, "V3")),
            UpdateExpr::comp1(id(&g, "V5"), id(&g, "V1")),
            UpdateExpr::inst(id(&g, "V1")),
            UpdateExpr::inst(id(&g, "V5")),
        ]);
        let r = analyze(&g, &s);
        assert!(r.diagnostics.iter().any(|d| d.rule == Rule::LateComp));
        assert!(check_vdag_strategy(&g, &s).is_err());

        // Two comps of V4 with V2 installed after the second: C4.
        let s = Strategy::from_exprs(vec![
            UpdateExpr::comp1(id(&g, "V4"), id(&g, "V2")),
            UpdateExpr::comp1(id(&g, "V4"), id(&g, "V3")),
            UpdateExpr::inst(id(&g, "V2")),
            UpdateExpr::inst(id(&g, "V3")),
            UpdateExpr::comp1(id(&g, "V5"), id(&g, "V4")),
            UpdateExpr::inst(id(&g, "V4")),
            UpdateExpr::comp1(id(&g, "V5"), id(&g, "V1")),
            UpdateExpr::inst(id(&g, "V1")),
            UpdateExpr::inst(id(&g, "V5")),
        ]);
        let r = analyze(&g, &s);
        assert!(r.diagnostics.iter().any(|d| d.rule == Rule::InstallOrder));
        assert!(check_vdag_strategy(&g, &s).is_err());
    }

    #[test]
    fn uncomputed_delta_flagged() {
        let g = figure3_vdag();
        let mut s = good_strategy(&g);
        // Move Comp(V5,{V4}) to the front: reads ΔV4 before it is computed.
        let e = s.exprs.remove(4);
        s.exprs.insert(0, e);
        let r = analyze(&g, &s);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::UncomputedDelta));
        assert!(check_vdag_strategy(&g, &s).is_err());
    }

    #[test]
    fn malformed_exprs_flagged() {
        let g = figure3_vdag();
        // Unknown id.
        let s = Strategy::from_exprs(vec![UpdateExpr::inst(ViewId(99))]);
        let r = analyze(&g, &s);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::MalformedExpr && d.message.contains("#99")));

        // Comp of a base view.
        let s = Strategy::from_exprs(vec![UpdateExpr::comp1(id(&g, "V1"), id(&g, "V2"))]);
        let r = analyze(&g, &s);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::MalformedExpr && d.message.contains("base view")));
        assert!(check_vdag_strategy(&g, &s).is_err());

        // Empty over-set.
        let s = Strategy::from_exprs(vec![UpdateExpr::comp(id(&g, "V4"), [])]);
        let r = analyze(&g, &s);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::MalformedExpr && d.message.contains("empty over-set")));
        assert!(check_vdag_strategy(&g, &s).is_err());

        // Over-set escaping the sources.
        let s = Strategy::from_exprs(vec![UpdateExpr::comp1(id(&g, "V4"), id(&g, "V1"))]);
        let r = analyze(&g, &s);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::MalformedExpr && d.message.contains("not a source")));
        assert!(check_vdag_strategy(&g, &s).is_err());
    }

    #[test]
    fn redundant_terms_flagged() {
        let g = figure3_vdag();
        let mut s = good_strategy(&g);
        // Exact duplicate.
        s.exprs.insert(1, s.exprs[0].clone());
        let r = analyze(&g, &s);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::RedundantTerm && d.message.contains("duplicate")));
        assert!(check_vdag_strategy(&g, &s).is_err());

        // Overlapping over-sets.
        let s = Strategy::from_exprs(vec![
            UpdateExpr::comp(id(&g, "V4"), [id(&g, "V2"), id(&g, "V3")]),
            UpdateExpr::comp1(id(&g, "V4"), id(&g, "V2")),
            UpdateExpr::inst(id(&g, "V2")),
            UpdateExpr::inst(id(&g, "V3")),
            UpdateExpr::comp(id(&g, "V5"), [id(&g, "V1"), id(&g, "V4")]),
            UpdateExpr::inst(id(&g, "V4")),
            UpdateExpr::inst(id(&g, "V1")),
            UpdateExpr::inst(id(&g, "V5")),
        ]);
        let r = analyze(&g, &s);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::RedundantTerm && d.message.contains("twice")));
        assert!(check_vdag_strategy(&g, &s).is_err());
    }

    #[test]
    fn view_mode_matches_dynamic_checker() {
        let g = figure3_vdag();
        let v4 = id(&g, "V4");
        let ok = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v4, id(&g, "V2")),
            UpdateExpr::inst(id(&g, "V2")),
            UpdateExpr::comp1(v4, id(&g, "V3")),
            UpdateExpr::inst(id(&g, "V3")),
            UpdateExpr::inst(v4),
        ]);
        assert!(check_view_strategy(&g, v4, &ok).is_ok());
        assert!(analyze_view(&g, v4, &ok).is_clean());

        // Foreign comp inside a view strategy.
        let bad = Strategy::from_exprs(vec![
            UpdateExpr::comp1(id(&g, "V5"), id(&g, "V4")),
            UpdateExpr::inst(v4),
        ]);
        let r = analyze_view(&g, v4, &bad);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::MalformedExpr && d.message.contains("does not update")));
        assert!(check_view_strategy(&g, v4, &bad).is_err());

        // Foreign install.
        let bad = Strategy::from_exprs(vec![UpdateExpr::inst(id(&g, "V5"))]);
        let r = analyze_view(&g, v4, &bad);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::MalformedExpr && d.message.contains("foreign")));
        assert!(check_view_strategy(&g, v4, &bad).is_err());
    }

    #[test]
    fn stage_race_flagged() {
        let g = figure3_vdag();
        // Inst(V2) and the Comp reading ΔV2 share a stage.
        let stages = vec![
            vec![
                UpdateExpr::inst(id(&g, "V2")),
                UpdateExpr::comp1(id(&g, "V4"), id(&g, "V2")),
            ],
            vec![
                UpdateExpr::comp1(id(&g, "V4"), id(&g, "V3")),
                UpdateExpr::inst(id(&g, "V3")),
            ],
            vec![UpdateExpr::comp1(id(&g, "V5"), id(&g, "V4"))],
            vec![UpdateExpr::inst(id(&g, "V4"))],
            vec![UpdateExpr::comp1(id(&g, "V5"), id(&g, "V1"))],
            vec![UpdateExpr::inst(id(&g, "V1"))],
            vec![UpdateExpr::inst(id(&g, "V5"))],
        ];
        let r = analyze_parallel(&g, &stages);
        let races: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::StageRace)
            .collect();
        assert!(!races.is_empty(), "{}", r.render_text());
        assert!(races.iter().any(|d| d.message.contains("stage 0")));
        // Stage 1 pairs Comp(V4,{V3}) before Inst(V3): also a race.
        assert!(races.iter().any(|d| d.message.contains("stage 1")));
    }

    #[test]
    fn c8_stage_race_invisible_to_linearized_check() {
        // The soundness gap UWW001 closes: Comp(V4,·) and Comp(V5,{V4})
        // share a stage. The linearization is dynamically correct, but the
        // threaded executor would compute Comp(V5,{V4}) against the frozen
        // stage-entry ΔV4 and miss this stage's contribution.
        let g = figure3_vdag();
        let stages = vec![
            vec![
                UpdateExpr::comp(id(&g, "V4"), [id(&g, "V2"), id(&g, "V3")]),
                UpdateExpr::comp(id(&g, "V5"), [id(&g, "V1"), id(&g, "V4")]),
            ],
            vec![
                UpdateExpr::inst(id(&g, "V1")),
                UpdateExpr::inst(id(&g, "V2")),
                UpdateExpr::inst(id(&g, "V3")),
                UpdateExpr::inst(id(&g, "V4")),
                UpdateExpr::inst(id(&g, "V5")),
            ],
        ];
        let linear = Strategy::from_exprs(stages.iter().flatten().cloned().collect());
        check_vdag_strategy(&g, &linear).unwrap();
        let r = analyze_parallel(&g, &stages);
        assert!(r.diagnostics.iter().any(|d| d.rule == Rule::StageRace));
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn clean_parallel_strategy_accepted() {
        let g = figure3_vdag();
        let stages = vec![
            vec![UpdateExpr::comp(id(&g, "V4"), [id(&g, "V2"), id(&g, "V3")])],
            vec![UpdateExpr::comp(id(&g, "V5"), [id(&g, "V1"), id(&g, "V4")])],
            vec![
                UpdateExpr::inst(id(&g, "V1")),
                UpdateExpr::inst(id(&g, "V2")),
                UpdateExpr::inst(id(&g, "V3")),
                UpdateExpr::inst(id(&g, "V4")),
                UpdateExpr::inst(id(&g, "V5")),
            ],
        ];
        let r = analyze_parallel(&g, &stages);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn cost_anomalies_flagged() {
        let items = vec![
            ("Comp(V, {A})".to_string(), 10.0),
            ("Comp(V, {B})".to_string(), f64::NAN),
            ("Inst(V)".to_string(), -3.0),
            ("Comp(W, {C})".to_string(), f64::INFINITY),
        ];
        let r = analyze_costs(&items);
        assert_eq!(r.error_count(), 3);
        assert!(r.diagnostics.iter().all(|d| d.rule == Rule::CostAnomaly));
        assert!(analyze_costs(&[("x".to_string(), 0.0)]).is_clean());
    }
}
