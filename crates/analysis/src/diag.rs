//! Diagnostics: rules, severities, reports, and the text/JSON renderers.

use std::fmt;

/// The lint rules, each with a stable `UWW###` identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `UWW001`: two expressions that must stay ordered share a parallel
    /// stage, so the threaded executor's frozen-stage-entry reads diverge
    /// from every valid linearization.
    StageRace,
    /// `UWW002`: a delta is computed (or a view's changes exist) but the
    /// view is never installed — its extent is left stale (condition C2).
    DeadDelta,
    /// `UWW003`: a source's changes are never propagated into a consumer
    /// (condition C1).
    UncoveredSource,
    /// `UWW004`: a duplicated expression (condition C6) or two `Comp`s of
    /// one view with overlapping over-sets, which double-propagate changes
    /// and can never be ordered correctly (C3 + C4).
    RedundantTerm,
    /// `UWW005`: a non-finite or negative cost/size entered the cost model.
    CostAnomaly,
    /// `UWW006`: a `Comp` reads a delta whose view was already installed,
    /// so the term sees a fresh extent where it needs the stale one
    /// (condition C3).
    ReadAfterInstall,
    /// `UWW007`: an earlier `Comp`'s over-views are not all installed
    /// before a later `Comp` of the same view (condition C4).
    InstallOrder,
    /// `UWW008`: a `Comp` of a view appears after that view's `Inst`
    /// (condition C5).
    LateComp,
    /// `UWW009`: a delta is propagated before (or without) being computed
    /// (condition C8).
    UncomputedDelta,
    /// `UWW010`: a structurally invalid expression — unknown view id, a
    /// `Comp` on a base view, an empty over-set, or an over-set escaping
    /// the view's sources (conditions C1/C2/C7).
    MalformedExpr,
    /// `UWW011` (advisory): a `Comp` rebuilds the same `(operand,
    /// pushed-down filter, key columns)` hash table across two or more of
    /// its maintenance terms — the intra-`Comp` share the operand cache
    /// exploits when term sharing is on, and a per-term executor misses.
    IntraCompShare,
    /// `UWW012` (advisory): two `Comp`s of the strategy build an identical
    /// operand hash table with no intervening modification of the operand —
    /// a cross-`Comp` sharing opportunity the per-`Comp` cache cannot
    /// exploit (the planner hook for a strategy-wide operand cache).
    CrossCompShare,
    /// `UWW013` (advisory): two operand uses inside one `Comp` are equal
    /// modulo a keying detail the runtime cache distinguishes — e.g. two
    /// aliases of one view with identical role, filters, and key columns,
    /// which the source-position cache key keeps apart.
    CacheKeyMismatch,
    /// `UWW014`: two expressions sharing a parallel stage touch a common
    /// operand with at least one writer — read/write interference over
    /// views, deltas, or operand-cache snapshots that makes the stage's
    /// outcome schedule-dependent.
    SharedOperandRace,
}

impl Rule {
    /// Every rule, in id order.
    pub const ALL: [Rule; 14] = [
        Rule::StageRace,
        Rule::DeadDelta,
        Rule::UncoveredSource,
        Rule::RedundantTerm,
        Rule::CostAnomaly,
        Rule::ReadAfterInstall,
        Rule::InstallOrder,
        Rule::LateComp,
        Rule::UncomputedDelta,
        Rule::MalformedExpr,
        Rule::IntraCompShare,
        Rule::CrossCompShare,
        Rule::CacheKeyMismatch,
        Rule::SharedOperandRace,
    ];

    /// The stable identifier, `UWW001` through `UWW014`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::StageRace => "UWW001",
            Rule::DeadDelta => "UWW002",
            Rule::UncoveredSource => "UWW003",
            Rule::RedundantTerm => "UWW004",
            Rule::CostAnomaly => "UWW005",
            Rule::ReadAfterInstall => "UWW006",
            Rule::InstallOrder => "UWW007",
            Rule::LateComp => "UWW008",
            Rule::UncomputedDelta => "UWW009",
            Rule::MalformedExpr => "UWW010",
            Rule::IntraCompShare => "UWW011",
            Rule::CrossCompShare => "UWW012",
            Rule::CacheKeyMismatch => "UWW013",
            Rule::SharedOperandRace => "UWW014",
        }
    }

    /// The short kebab-case rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::StageRace => "stage-race",
            Rule::DeadDelta => "dead-delta",
            Rule::UncoveredSource => "uncovered-source",
            Rule::RedundantTerm => "redundant-term",
            Rule::CostAnomaly => "cost-anomaly",
            Rule::ReadAfterInstall => "read-after-install",
            Rule::InstallOrder => "install-order",
            Rule::LateComp => "late-comp",
            Rule::UncomputedDelta => "uncomputed-delta",
            Rule::MalformedExpr => "malformed-expr",
            Rule::IntraCompShare => "missed-intra-comp-share",
            Rule::CrossCompShare => "cross-comp-share",
            Rule::CacheKeyMismatch => "cache-key-mismatch",
            Rule::SharedOperandRace => "shared-operand-race",
        }
    }

    /// The paper condition (Definitions 3.1/3.3) or executor invariant the
    /// rule enforces.
    pub fn condition(self) -> &'static str {
        match self {
            Rule::StageRace => "stage isolation (Section 9 executor)",
            Rule::DeadDelta => "C2",
            Rule::UncoveredSource => "C1",
            Rule::RedundantTerm => "C6 (overlap: C3+C4)",
            Rule::CostAnomaly => "linear work metric (Definition 3.5)",
            Rule::ReadAfterInstall => "C3",
            Rule::InstallOrder => "C4",
            Rule::LateComp => "C5",
            Rule::UncomputedDelta => "C8",
            Rule::MalformedExpr => "C1/C2/C7",
            Rule::IntraCompShare => "term sharing (Section 3.3 terms; MQO)",
            Rule::CrossCompShare => "cross-expression sharing (MQO)",
            Rule::CacheKeyMismatch => "operand-cache key discipline",
            Rule::SharedOperandRace => "stage isolation over shared operands (Section 9)",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id(), self.name())
    }
}

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The strategy is incorrect: executing it would produce wrong extents
    /// (or the executor would reject it).
    Error,
    /// Suspicious but not provably incorrect.
    Warning,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding of the analyzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// Error or warning.
    pub severity: Severity,
    /// One-line description of the defect.
    pub message: String,
    /// Index of the offending expression, when one exists (indices are into
    /// the analyzed sequence; for parallel strategies, the linearization).
    pub primary: Option<usize>,
    /// Label rendered under the primary expression.
    pub primary_label: String,
    /// Related expressions (index, note), rendered as secondary context.
    pub related: Vec<(usize, String)>,
    /// Names of the views involved.
    pub views: Vec<String>,
}

impl Diagnostic {
    /// The inclusive expression-index span covered by this diagnostic:
    /// the range from the earliest related index to the primary.
    pub fn span(&self) -> Option<(usize, usize)> {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for &(i, _) in &self.related {
            lo = lo.min(i);
            hi = hi.max(i);
        }
        if let Some(p) = self.primary {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        if lo == usize::MAX {
            None
        } else {
            Some((lo, hi))
        }
    }
}

/// The analyzer's output: every diagnostic plus the analyzed expressions
/// (rendered), so the text renderer can quote them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Rendered expressions of the analyzed sequence, in order.
    pub exprs: Vec<String>,
    /// All findings, sorted by primary position then rule id.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub(crate) fn new(exprs: Vec<String>, mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            let ka = (a.primary.unwrap_or(usize::MAX), a.rule, a.message.clone());
            let kb = (b.primary.unwrap_or(usize::MAX), b.rule, b.message.clone());
            ka.cmp(&kb)
        });
        Report { exprs, diagnostics }
    }

    /// True when nothing at all was flagged.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one [`Severity::Error`] diagnostic was emitted —
    /// exactly when the dynamic checker would reject the strategy.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of error diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Diagnostics per rule, in rule-id order — the JSON summary's
    /// `"rules"` object, so CI can gate on specific rules (e.g. fail on
    /// `UWW014` while tolerating advisory `UWW011`/`UWW012` findings).
    pub fn rule_counts(&self) -> Vec<(Rule, usize)> {
        let mut counts: Vec<(Rule, usize)> = Vec::new();
        for r in Rule::ALL {
            let n = self.diagnostics.iter().filter(|d| d.rule == r).count();
            if n > 0 {
                counts.push((r, n));
            }
        }
        counts
    }

    /// Merges another report whose indices are already in this report's
    /// index space (e.g. the sharing report computed over the same
    /// strategy). Kept public so CLI consumers can combine passes.
    pub fn merge(self, other: Report) -> Report {
        let mut all = self.diagnostics;
        all.extend(other.diagnostics);
        Report::new(self.exprs, all)
    }

    /// Renders every diagnostic rustc-style, quoting the involved
    /// expressions with carets under the primary one.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{}]: {}\n",
                d.severity.label(),
                d.rule.id(),
                d.message
            ));
            let gutter = self.exprs.len().saturating_sub(1).to_string().len().max(2);
            if let Some(p) = d.primary {
                out.push_str(&format!("  --> strategy:{p}\n"));
                out.push_str(&format!("{:>gutter$} |\n", ""));
                let mut lines: Vec<(usize, &str, bool)> = d
                    .related
                    .iter()
                    .map(|(i, note)| (*i, note.as_str(), false))
                    .collect();
                lines.push((p, d.primary_label.as_str(), true));
                lines.sort_by_key(|(i, _, primary)| (*i, *primary));
                for (i, note, primary) in lines {
                    let text = self
                        .exprs
                        .get(i)
                        .map(String::as_str)
                        .unwrap_or("<out of range>");
                    out.push_str(&format!("{i:>gutter$} | {text}\n"));
                    let marker = if primary { "^" } else { "-" }.repeat(text.chars().count());
                    out.push_str(&format!("{:>gutter$} | {marker} {note}\n", ""));
                }
            }
            out.push_str(&format!(
                "{:>gutter$} = note: rule {} enforces {}\n\n",
                "",
                d.rule,
                d.rule.condition()
            ));
        }
        let (e, w) = (self.error_count(), self.warning_count());
        if e == 0 && w == 0 {
            out.push_str("clean: no diagnostics\n");
        } else {
            out.push_str(&format!(
                "{e} error{}, {w} warning{}\n",
                if e == 1 { "" } else { "s" },
                if w == 1 { "" } else { "s" },
            ));
        }
        out
    }

    /// Renders the report as a JSON object (no external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (n, d) in self.diagnostics.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"name\":{},\"severity\":{},\"condition\":{},\"message\":{}",
                json_str(d.rule.id()),
                json_str(d.rule.name()),
                json_str(d.severity.label()),
                json_str(d.rule.condition()),
                json_str(&d.message),
            ));
            match d.primary {
                Some(p) => out.push_str(&format!(",\"primary\":{p}")),
                None => out.push_str(",\"primary\":null"),
            }
            match d.span() {
                Some((lo, hi)) => {
                    out.push_str(&format!(",\"span\":{{\"start\":{lo},\"end\":{hi}}}"))
                }
                None => out.push_str(",\"span\":null"),
            }
            out.push_str(",\"views\":[");
            for (m, v) in d.views.iter().enumerate() {
                if m > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(v));
            }
            out.push_str("]}");
        }
        out.push_str("],\"rules\":{");
        for (n, (rule, count)) in self.rule_counts().into_iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{count}", json_str(rule.id())));
        }
        out.push_str(&format!(
            "}},\"errors\":{},\"warnings\":{}}}",
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(
            vec!["Inst(V2)".into(), "Comp(V4, {V2})".into()],
            vec![Diagnostic {
                rule: Rule::ReadAfterInstall,
                severity: Severity::Error,
                message: "Comp(V4, {V2}) reads ΔV2 after Inst(V2)".into(),
                primary: Some(1),
                primary_label: "stale read of a fresh extent".into(),
                related: vec![(0, "V2 installed here".into())],
                views: vec!["V2".into(), "V4".into()],
            }],
        )
    }

    #[test]
    fn rule_ids_are_stable_and_unique() {
        let ids: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
        assert_eq!(ids[0], "UWW001");
        assert_eq!(ids[9], "UWW010");
        assert_eq!(ids[13], "UWW014");
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids, dedup);
        for r in Rule::ALL {
            assert!(r.id().starts_with("UWW"));
            assert!(!r.name().is_empty());
            assert!(!r.condition().is_empty());
        }
    }

    #[test]
    fn span_covers_primary_and_related() {
        let r = sample();
        assert_eq!(r.diagnostics[0].span(), Some((0, 1)));
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 0);
    }

    #[test]
    fn text_renderer_quotes_expressions() {
        let text = sample().render_text();
        assert!(text.contains("error[UWW006]"));
        assert!(text.contains("--> strategy:1"));
        assert!(text.contains("Comp(V4, {V2})"));
        assert!(text.contains("^"));
        assert!(text.contains("C3"));
        assert!(text.contains("1 error, 0 warnings"));
    }

    #[test]
    fn json_renderer_escapes_and_structures() {
        let json = sample().to_json();
        assert!(json.contains("\"rule\":\"UWW006\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"span\":{\"start\":0,\"end\":1}"));
        assert!(json.contains("\"rules\":{\"UWW006\":1}"));
        assert!(json.contains("\"errors\":1"));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
