//! The static interference pass: `UWW014` over a staged parallel strategy.
//!
//! Section 9 parallelizes a strategy into stages whose expressions run
//! concurrently (term- or stage-level threads). Two expressions may share a
//! stage only when neither touches state the other mutates. This pass
//! computes, per expression, its read and write sets over the warehouse's
//! mutable locations — stored view extents and pending deltas, the two
//! operand forms the shared `OperandCache` keys by — and flags every
//! same-stage pair whose sets conflict.
//!
//! The conflict relation is deliberately *at least as strict* as the
//! dynamic race check in the threaded executor: any schedule the engine
//! would reject at runtime is already an error here, and a `UWW014`-clean
//! schedule (in particular, anything [`parallelize`] emits) runs
//! identically threaded or sequential.
//!
//! [`parallelize`]: https://docs.rs/uww-core (Section 9 scheduler)

use crate::analyzer::{safe_expr, safe_name};
use crate::diag::{Diagnostic, Report, Rule, Severity};
use std::collections::BTreeSet;
use uww_vdag::{UpdateExpr, Vdag, ViewId};

/// A mutable warehouse location an update expression can touch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Loc {
    /// The stored extent of a view.
    Stored(ViewId),
    /// The pending delta (ΔV) of a view.
    Delta(ViewId),
}

impl Loc {
    fn describe(self, g: &Vdag) -> String {
        match self {
            Loc::Stored(v) => format!("the stored extent of {}", safe_name(g, v)),
            Loc::Delta(v) => format!("Δ{}", safe_name(g, v)),
        }
    }
}

/// The locations `e` reads: an `Inst(V)` consumes ΔV; a `Comp(W, Y)` scans
/// the stored extent of every source of `W` and the delta of every view
/// in `Y`.
pub fn reads(g: &Vdag, e: &UpdateExpr) -> BTreeSet<Loc> {
    let mut out = BTreeSet::new();
    match e {
        UpdateExpr::Inst(v) => {
            out.insert(Loc::Delta(*v));
        }
        UpdateExpr::Comp { view, over } => {
            if view.0 < g.len() {
                for s in g.sources(*view) {
                    out.insert(Loc::Stored(*s));
                }
            }
            for s in over {
                out.insert(Loc::Delta(*s));
            }
        }
    }
    out
}

/// The locations `e` writes: an `Inst(V)` rewrites the stored extent and
/// clears ΔV; a `Comp(W, Y)` extends ΔW.
pub fn writes(_g: &Vdag, e: &UpdateExpr) -> BTreeSet<Loc> {
    let mut out = BTreeSet::new();
    match e {
        UpdateExpr::Inst(v) => {
            out.insert(Loc::Stored(*v));
            out.insert(Loc::Delta(*v));
        }
        UpdateExpr::Comp { view, .. } => {
            out.insert(Loc::Delta(*view));
        }
    }
    out
}

/// Runs the interference pass over a staged strategy: every pair of
/// expressions sharing a stage with a write/read or write/write overlap is
/// a `UWW014` error. Diagnostic indices point into the stage-order
/// linearization of `stages`.
pub fn analyze_interference(g: &Vdag, stages: &[Vec<UpdateExpr>]) -> Report {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut offset = 0usize;
    for (si, stage) in stages.iter().enumerate() {
        for a in 0..stage.len() {
            let wa = writes(g, &stage[a]);
            let ra = reads(g, &stage[a]);
            for b in a + 1..stage.len() {
                let wb = writes(g, &stage[b]);
                let rb = reads(g, &stage[b]);
                let mut conflicts: BTreeSet<Loc> = BTreeSet::new();
                conflicts.extend(wa.intersection(&rb).copied());
                conflicts.extend(wb.intersection(&ra).copied());
                conflicts.extend(wa.intersection(&wb).copied());
                if conflicts.is_empty() {
                    continue;
                }
                let locs: Vec<String> = conflicts.iter().map(|l| l.describe(g)).collect();
                diags.push(Diagnostic {
                    rule: Rule::SharedOperandRace,
                    severity: Severity::Error,
                    message: format!(
                        "stage {} runs {} and {} concurrently, but they interfere on {}",
                        si,
                        safe_expr(g, &stage[a]),
                        safe_expr(g, &stage[b]),
                        locs.join(" and "),
                    ),
                    primary: Some(offset + b),
                    primary_label: "races with an earlier expression in its stage".to_string(),
                    related: vec![(offset + a, "conflicting stage-mate".to_string())],
                    views: conflicts
                        .iter()
                        .map(|l| match l {
                            Loc::Stored(v) | Loc::Delta(v) => safe_name(g, *v),
                        })
                        .collect(),
                });
            }
        }
        offset += stage.len();
    }
    let exprs = stages.iter().flatten().map(|e| safe_expr(g, e)).collect();
    Report::new(exprs, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_vdag::figure3_vdag;

    #[test]
    fn disjoint_comps_share_a_stage() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        let v5 = g.id_of("V5").unwrap();
        let v2 = g.id_of("V2").unwrap();
        let v1 = g.id_of("V1").unwrap();
        // Comp(V4,{V2}) reads stored V2,V3 + ΔV2, writes ΔV4.
        // Comp(V5,{V1}) reads stored V1,V4 + ΔV1, writes ΔV5. No overlap.
        let stages = vec![vec![UpdateExpr::comp1(v4, v2), UpdateExpr::comp1(v5, v1)]];
        assert!(analyze_interference(&g, &stages).is_clean());
    }

    #[test]
    fn comp_racing_its_source_inst_is_flagged() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        let v2 = g.id_of("V2").unwrap();
        // Inst(V2) rewrites stored V2 while Comp(V4,{V2}) scans it (and both
        // touch ΔV2).
        let stages = vec![vec![UpdateExpr::inst(v2), UpdateExpr::comp1(v4, v2)]];
        let r = analyze_interference(&g, &stages);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.diagnostics[0].rule, Rule::SharedOperandRace);
        assert!(r.diagnostics[0].message.contains("stored extent of V2"));
    }

    #[test]
    fn comp_feeding_concurrent_comp_is_flagged() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        let v5 = g.id_of("V5").unwrap();
        let v2 = g.id_of("V2").unwrap();
        // Comp(V4,{V2}) writes ΔV4; Comp(V5,{V4}) reads ΔV4.
        let stages = vec![vec![UpdateExpr::comp1(v4, v2), UpdateExpr::comp1(v5, v4)]];
        let r = analyze_interference(&g, &stages);
        assert_eq!(r.error_count(), 1);
        assert!(r.diagnostics[0].message.contains("ΔV4"));
    }

    #[test]
    fn duplicate_inst_is_a_write_write_race() {
        let g = figure3_vdag();
        let v1 = g.id_of("V1").unwrap();
        let stages = vec![vec![UpdateExpr::inst(v1), UpdateExpr::inst(v1)]];
        let r = analyze_interference(&g, &stages);
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn sequential_stages_never_conflict() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        let v2 = g.id_of("V2").unwrap();
        let stages = vec![vec![UpdateExpr::inst(v2)], vec![UpdateExpr::comp1(v4, v2)]];
        assert!(analyze_interference(&g, &stages).is_clean());
    }

    #[test]
    fn indices_are_linearization_offsets() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        let v2 = g.id_of("V2").unwrap();
        let v1 = g.id_of("V1").unwrap();
        let stages = vec![
            vec![UpdateExpr::inst(v1)],
            vec![UpdateExpr::inst(v2), UpdateExpr::comp1(v4, v2)],
        ];
        let r = analyze_interference(&g, &stages);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.diagnostics[0].primary, Some(2));
        assert_eq!(r.diagnostics[0].related[0].0, 1);
        assert_eq!(r.exprs.len(), 3);
    }
}
