//! # uww-analysis
//!
//! A rule-based static analyzer ("strategy lint") for update strategies.
//!
//! Where [`uww_vdag::check_vdag_strategy`] dynamically *rejects* an
//! incorrect strategy with the first violated condition, this crate runs an
//! abstract interpretation over the strategy — tracking, per expression,
//! which extents are read stale vs. fresh and which deltas are written —
//! and reports **every** defect as a structured diagnostic with a stable
//! rule id:
//!
//! | rule | name | enforces |
//! |------|------|----------|
//! | `UWW001` | `stage-race` | stage isolation of the parallel executor |
//! | `UWW002` | `dead-delta` | C2 (every view installed) |
//! | `UWW003` | `uncovered-source` | C1 (every source propagated) |
//! | `UWW004` | `redundant-term` | C6, plus overlapping over-sets (C3+C4) |
//! | `UWW005` | `cost-anomaly` | finite, non-negative predicted work |
//! | `UWW006` | `read-after-install` | C3 |
//! | `UWW007` | `install-order` | C4 |
//! | `UWW008` | `late-comp` | C5 |
//! | `UWW009` | `uncomputed-delta` | C8 |
//! | `UWW010` | `malformed-expr` | C1/C2/C7 shape conditions |
//! | `UWW011` | `missed-intra-comp-share` | term sharing (Section 3.3 terms; MQO) |
//! | `UWW012` | `cross-comp-share` | cross-expression sharing (MQO) |
//! | `UWW013` | `cache-key-mismatch` | operand-cache key discipline |
//! | `UWW014` | `shared-operand-race` | stage isolation over shared operands (Section 9) |
//!
//! On sequential strategies the analyzer is **exactly equivalent** to the
//! dynamic checkers: [`Report::has_errors`] is `true` iff
//! [`uww_vdag::check_vdag_strategy`] (resp. `check_view_strategy` for
//! [`analyze_view`]) rejects. On parallel strategies it is strictly
//! stronger: [`analyze_parallel`] additionally flags same-stage expression
//! pairs whose order matters (`UWW001`) — races the dynamic check of the
//! linearization cannot observe.
//!
//! Diagnostics carry severity, an expression-index span, and the involved
//! view names; [`Report::render_text`] renders them rustc-style and
//! [`Report::to_json`] emits machine-readable JSON.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analyzer;
mod diag;
mod interference;
mod parse;
mod sharing;

pub use analyzer::{
    analyze, analyze_costs, analyze_parallel, analyze_resume, analyze_view, depends,
};
pub use diag::{Diagnostic, Report, Rule, Severity};
pub use interference::{analyze_interference, reads, writes, Loc};
pub use parse::{parse_expr, parse_stages, parse_strategy};
pub use sharing::{
    analyze_sharing, modifies_operand, ExprSharingProfile, OperandProfile, SharingProfile,
};
