//! A small parser for strategy text, so the CLI can lint hand-written
//! strategies without executing them.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! strategy ::= expr (';' expr)* [';']
//! stages   ::= strategy ('|' strategy)*
//! expr     ::= 'Comp' '(' NAME ',' over ')' | 'Inst' '(' NAME ')'
//! over     ::= '{' NAME (',' NAME)* '}' | NAME
//! ```
//!
//! View names are resolved against the VDAG; an unknown name is a parse
//! error (everything else — empty over-sets, wrong sources, bad ordering —
//! is left for the analyzer to diagnose).

use uww_vdag::{Strategy, UpdateExpr, Vdag, ViewId};

fn resolve(g: &Vdag, name: &str) -> Result<ViewId, String> {
    let name = name.trim();
    if name.is_empty() {
        return Err("empty view name".to_string());
    }
    g.id_of(name).map_err(|_| format!("unknown view {name:?}"))
}

/// Parses one update expression, e.g. `Comp(V4, {V2, V3})` or `Inst(V2)`.
pub fn parse_expr(g: &Vdag, text: &str) -> Result<UpdateExpr, String> {
    let text = text.trim();
    let (kind, rest) = if let Some(rest) = text.strip_prefix("Comp") {
        ("Comp", rest)
    } else if let Some(rest) = text.strip_prefix("Inst") {
        ("Inst", rest)
    } else {
        return Err(format!("expected Comp(...) or Inst(...), found {text:?}"));
    };
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| format!("expected parentheses after {kind} in {text:?}"))?
        .trim();
    if kind == "Inst" {
        return Ok(UpdateExpr::inst(resolve(g, inner)?));
    }
    let (view, over) = inner
        .split_once(',')
        .ok_or_else(|| format!("Comp needs a view and an over-set in {text:?}"))?;
    let view = resolve(g, view)?;
    let over = over.trim();
    let names: Vec<&str> =
        if let Some(body) = over.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
            let body = body.trim();
            if body.is_empty() {
                Vec::new() // empty over-set: parseable, flagged by UWW010
            } else {
                body.split(',').collect()
            }
        } else {
            vec![over]
        };
    let over = names
        .into_iter()
        .map(|n| resolve(g, n))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(UpdateExpr::comp(view, over))
}

/// Parses a `;`-separated sequential strategy.
pub fn parse_strategy(g: &Vdag, text: &str) -> Result<Strategy, String> {
    let exprs = text
        .split(';')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| parse_expr(g, t))
        .collect::<Result<Vec<_>, _>>()?;
    if exprs.is_empty() {
        return Err("empty strategy".to_string());
    }
    Ok(Strategy::from_exprs(exprs))
}

/// Parses a `|`-separated sequence of stages, each a `;`-separated list.
pub fn parse_stages(g: &Vdag, text: &str) -> Result<Vec<Vec<UpdateExpr>>, String> {
    let stages = text
        .split('|')
        .map(|stage| {
            stage
                .split(';')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(|t| parse_expr(g, t))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<Vec<_>>, _>>()?;
    if stages.iter().all(Vec::is_empty) {
        return Err("empty parallel strategy".to_string());
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_vdag::figure3_vdag;

    #[test]
    fn round_trips_display_syntax() {
        let g = figure3_vdag();
        let s = parse_strategy(
            &g,
            "Comp(V4, {V2, V3}); Inst(V2); Inst(V3); Comp(V5, V4); Inst(V4)",
        )
        .unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(
            s.exprs[0],
            UpdateExpr::comp(
                g.id_of("V4").unwrap(),
                [g.id_of("V2").unwrap(), g.id_of("V3").unwrap()]
            )
        );
        assert_eq!(
            s.exprs[3],
            UpdateExpr::comp1(g.id_of("V5").unwrap(), g.id_of("V4").unwrap())
        );
        // Whitespace-insensitive, trailing separator tolerated.
        let t = parse_strategy(&g, "  Comp(V4,{V2,V3}) ;Inst( V2 ); ").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.exprs[0], s.exprs[0]);
    }

    #[test]
    fn parses_stages() {
        let g = figure3_vdag();
        let stages = parse_stages(
            &g,
            "Comp(V4, {V2, V3}) | Comp(V5, {V1, V4}) | Inst(V1); Inst(V2); Inst(V3); Inst(V4); Inst(V5)",
        )
        .unwrap();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].len(), 1);
        assert_eq!(stages[2].len(), 5);
    }

    #[test]
    fn empty_over_set_is_parseable() {
        let g = figure3_vdag();
        let s = parse_strategy(&g, "Comp(V4, {})").unwrap();
        assert!(matches!(&s.exprs[0], UpdateExpr::Comp { over, .. } if over.is_empty()));
    }

    #[test]
    fn rejects_garbage() {
        let g = figure3_vdag();
        assert!(parse_strategy(&g, "").is_err());
        assert!(parse_strategy(&g, "Frob(V1)").is_err());
        assert!(parse_strategy(&g, "Inst(NOPE)").is_err());
        assert!(parse_strategy(&g, "Comp(V4)").is_err());
        assert!(parse_strategy(&g, "Inst V4").is_err());
        assert!(parse_strategy(&g, "Comp(V4, {V2, NOPE})").is_err());
        assert!(parse_stages(&g, " | ").is_err());
    }
}
