//! The sharing-opportunity pass: `UWW011`–`UWW013` over a strategy's
//! sharing profile.
//!
//! The profile is produced by the engine's static predictor
//! (`uww_core::predict_strategy_sharing`, priced by the cost model in
//! `uww_core::sharing_report`) and describes, per expression, every
//! distinct `(operand, pushed-down filter, key columns)` hash-table build
//! the shared executor will perform, with exact predicted build/reuse
//! counters. This module is deliberately core-agnostic — it sees only the
//! profile — so the rule logic stays beside the other `UWW` rules while the
//! numeric plan stays beside the engine that must conform to it.
//!
//! The three rules are advisory ([`Severity::Warning`]): they describe
//! work that *could* be shared, not a correctness defect.
//!
//! * `UWW011` — an operand repeats across one `Comp`'s terms: the
//!   intra-`Comp` share the operand cache exploits (and the per-term
//!   baseline misses), with the priced saving;
//! * `UWW012` — two `Comp`s build an identical operand table with no
//!   intervening modification of that operand: the cross-`Comp` share a
//!   strategy-wide cache would exploit (the ROADMAP planner hook);
//! * `UWW013` — two operand uses inside one `Comp` are equal modulo the
//!   cache's source-position key (aliases of one view): shareable in
//!   principle, kept apart by the runtime's keying detail.

use crate::analyzer::{safe_expr, safe_name};
use crate::diag::{Diagnostic, Report, Rule, Severity};
use std::collections::BTreeMap;
use uww_vdag::{Strategy, UpdateExpr, Vdag};

/// One distinct keyed operand use inside a `Comp`, as the engine's static
/// plan reports it — a node of the sharing-opportunity graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OperandProfile {
    /// Source view name.
    pub source: String,
    /// Source alias (distinct for self-join aliases).
    pub alias: String,
    /// Source position in the view definition — the runtime cache-key
    /// component `UWW013` is about.
    pub source_idx: usize,
    /// True when the delta form of the source is scanned.
    pub as_delta: bool,
    /// Build-key column names, in key order.
    pub key_cols: Vec<String>,
    /// Rendered pushed-down filters applied to this operand.
    pub filters: Vec<String>,
    /// Filtered operand cardinality (rows one build scans).
    pub rows: u64,
    /// Keyed join steps using this exact key across the `Comp`'s terms.
    pub occurrences: u64,
    /// Cost-model-priced rows saved by interning this key
    /// (`occurrences − 1` avoided rebuilds).
    pub saved_rows: u64,
}

/// Owned form of [`OperandProfile::identity`], used as a grouping key.
type OperandIdentity = (String, bool, Vec<String>, Vec<String>);

impl OperandProfile {
    /// The sharing identity of this use: everything except the source
    /// position. Two uses with equal identity build interchangeable hash
    /// tables (within one expression; across expressions the operand must
    /// also be unmodified in between).
    fn identity(&self) -> (&str, bool, &[String], &[String]) {
        (
            self.source.as_str(),
            self.as_delta,
            &self.key_cols,
            &self.filters,
        )
    }

    /// Human label: `ΔS` or `stored S`, plus the key columns.
    fn label(&self) -> String {
        let role = if self.as_delta { "Δ" } else { "stored " };
        format!(
            "{role}{} keyed on [{}]",
            self.source,
            self.key_cols.join(", ")
        )
    }
}

/// The engine's static sharing prediction for one strategy expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExprSharingProfile {
    /// Target view name.
    pub view: String,
    /// `"comp"` or `"inst"`.
    pub kind: String,
    /// Surviving maintenance terms (footnote-5 filter applied).
    pub terms: usize,
    /// Hash tables the shared engine will build for this expression.
    pub predicted_builds: u64,
    /// Hash-table reuses the shared engine will record.
    pub predicted_reuses: u64,
    /// Of `predicted_reuses`, join steps served from a hash table built by
    /// an *earlier expression* (zero outside strategy-scope caching).
    pub predicted_cross_reuses: u64,
    /// Raw operand reads the strategy-scope cache serves without touching
    /// the stored/delta extent (zero outside strategy-scope caching).
    pub predicted_cached_reads: u64,
    /// Every distinct keyed operand use.
    pub operands: Vec<OperandProfile>,
}

/// A whole strategy's sharing profile, aligned index-for-index with the
/// strategy's expressions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharingProfile {
    /// Per-expression profiles, in strategy order.
    pub exprs: Vec<ExprSharingProfile>,
}

impl SharingProfile {
    /// Total predicted hash-table builds across the strategy.
    pub fn predicted_builds(&self) -> u64 {
        self.exprs.iter().map(|e| e.predicted_builds).sum()
    }

    /// Total predicted hash-table reuses across the strategy.
    pub fn predicted_reuses(&self) -> u64 {
        self.exprs.iter().map(|e| e.predicted_reuses).sum()
    }

    /// Total predicted cross-expression hash-table reuses.
    pub fn predicted_cross_reuses(&self) -> u64 {
        self.exprs.iter().map(|e| e.predicted_cross_reuses).sum()
    }

    /// Total predicted strategy-cache-served raw operand reads.
    pub fn predicted_cached_reads(&self) -> u64 {
        self.exprs.iter().map(|e| e.predicted_cached_reads).sum()
    }
}

/// Runs the sharing-opportunity pass: `UWW011` (intra-`Comp` repeats),
/// `UWW012` (cross-`Comp` repeats with no intervening modification), and
/// `UWW013` (alias-split cache keys), all advisory. Diagnostic indices are
/// strategy positions; `profile.exprs` must align with `s.exprs` (extra or
/// missing entries are ignored rather than flagged — the profile producer
/// is trusted).
pub fn analyze_sharing(g: &Vdag, s: &Strategy, profile: &SharingProfile) -> Report {
    let mut out: Vec<Diagnostic> = Vec::new();

    // UWW011: one Comp, one key, ≥ 2 uses.
    for (i, (expr, prof)) in s.exprs.iter().zip(&profile.exprs).enumerate() {
        for op in &prof.operands {
            if op.occurrences < 2 {
                continue;
            }
            out.push(Diagnostic {
                rule: Rule::IntraCompShare,
                severity: Severity::Warning,
                message: format!(
                    "{} builds the hash table over {} ({} rows) {} times across its {} terms; \
                     interning saves {} builds (~{} rows)",
                    safe_expr(g, expr),
                    op.label(),
                    op.rows,
                    op.occurrences,
                    prof.terms,
                    op.occurrences - 1,
                    op.saved_rows,
                ),
                primary: Some(i),
                primary_label: "repeated operand build across terms".to_string(),
                related: vec![],
                views: vec![prof.view.clone(), op.source.clone()],
            });
        }
    }

    // UWW013: one Comp, identical identity, distinct source positions.
    for (i, (expr, prof)) in s.exprs.iter().zip(&profile.exprs).enumerate() {
        let mut groups: BTreeMap<OperandIdentity, Vec<&OperandProfile>> = BTreeMap::new();
        for op in &prof.operands {
            let (source, as_delta, keys, filters) = op.identity();
            groups
                .entry((
                    source.to_string(),
                    as_delta,
                    keys.to_vec(),
                    filters.to_vec(),
                ))
                .or_default()
                .push(op);
        }
        for ops in groups.values() {
            let mut positions: Vec<usize> = ops.iter().map(|o| o.source_idx).collect();
            positions.sort_unstable();
            positions.dedup();
            if positions.len() < 2 {
                continue;
            }
            let first = ops[0];
            let aliases: Vec<&str> = ops.iter().map(|o| o.alias.as_str()).collect();
            out.push(Diagnostic {
                rule: Rule::CacheKeyMismatch,
                severity: Severity::Warning,
                message: format!(
                    "{} scans {} under {} aliases ({}) with identical role, filters, and key \
                     columns; the operand cache keys by source position and builds {} tables \
                     where one would serve",
                    safe_expr(g, expr),
                    first.label(),
                    positions.len(),
                    aliases.join(", "),
                    positions.len(),
                ),
                primary: Some(i),
                primary_label: "aliases split an otherwise-shared cache key".to_string(),
                related: vec![],
                views: vec![prof.view.clone(), first.source.clone()],
            });
        }
    }

    // UWW012: a Comp rebuilds a table an earlier Comp built, with the
    // operand unmodified in between. Each rebuild is attributed to the
    // *first* builder of its live run — the table a strategy-wide cache
    // actually holds — so a chain of n sharing Comps prices n−1 avoided
    // rebuilds, not the n(n−1)/2 a pairwise walk would double-count.
    for (j, (ej, pj)) in s.exprs.iter().zip(&profile.exprs).enumerate() {
        if !matches!(ej, UpdateExpr::Comp { .. }) {
            continue;
        }
        for oj in &pj.operands {
            let builder = s
                .exprs
                .iter()
                .zip(&profile.exprs)
                .enumerate()
                .take(j)
                .find_map(|(i, (ei, pi))| {
                    if !matches!(ei, UpdateExpr::Comp { .. }) {
                        return None;
                    }
                    pi.operands.iter().find(|o| o.identity() == oj.identity())?;
                    if (i + 1..j).any(|p| modifies_operand(g, &s.exprs[p], &oj.source, oj.as_delta))
                    {
                        return None;
                    }
                    Some((i, ei, pi))
                });
            let Some((i, ei, pi)) = builder else {
                continue;
            };
            out.push(Diagnostic {
                rule: Rule::CrossCompShare,
                severity: Severity::Warning,
                message: format!(
                    "{} rebuilds the hash table over {} ({} rows) that {} already built, \
                     with {} unmodified in between; a strategy-wide operand cache would \
                     reuse it (~{} rows saved)",
                    safe_expr(g, ej),
                    oj.label(),
                    oj.rows,
                    safe_expr(g, ei),
                    oj.source,
                    oj.rows,
                ),
                primary: Some(j),
                primary_label: "cross-Comp rebuild of an unchanged operand".to_string(),
                related: vec![(i, "same hash table first built here".to_string())],
                views: vec![pi.view.clone(), pj.view.clone(), oj.source.clone()],
            });
        }
    }

    let exprs = s.exprs.iter().map(|e| safe_expr(g, e)).collect();
    Report::new(exprs, out)
}

/// Whether executing `e` changes the contents of the given operand form of
/// `source`: the stored extent changes only at `Inst(source)`; the pending
/// delta changes when a `Comp` extends it or an `Inst` consumes it.
///
/// This predicate is the single liveness source of truth for cross-`Comp`
/// sharing: `UWW012` uses it to decide which rebuild opportunities are
/// live, and the engine's `StrategyCache` uses the *same* predicate to
/// invalidate cached materializations and hash tables after each executed
/// expression — so anything the analyzer prices is exactly what the cache
/// may legally serve.
pub fn modifies_operand(g: &Vdag, e: &UpdateExpr, source: &str, as_delta: bool) -> bool {
    match e {
        UpdateExpr::Inst(v) => safe_name(g, *v) == source,
        UpdateExpr::Comp { view, .. } => as_delta && safe_name(g, *view) == source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_vdag::{figure3_vdag, UpdateExpr, ViewId};

    fn op(source: &str, idx: usize, as_delta: bool, occ: u64) -> OperandProfile {
        OperandProfile {
            source: source.to_string(),
            alias: source.to_string(),
            source_idx: idx,
            as_delta,
            key_cols: vec!["k".to_string()],
            filters: vec![],
            rows: 100,
            occurrences: occ,
            saved_rows: 100 * occ.saturating_sub(1),
        }
    }

    fn comp_profile(view: &str, operands: Vec<OperandProfile>) -> ExprSharingProfile {
        let builds = operands.len() as u64;
        let reuses = operands
            .iter()
            .map(|o| o.occurrences.saturating_sub(1))
            .sum();
        ExprSharingProfile {
            view: view.to_string(),
            kind: "comp".to_string(),
            terms: 3,
            predicted_builds: builds,
            predicted_reuses: reuses,
            predicted_cross_reuses: 0,
            predicted_cached_reads: 0,
            operands,
        }
    }

    fn inst_profile(view: &str) -> ExprSharingProfile {
        ExprSharingProfile {
            view: view.to_string(),
            kind: "inst".to_string(),
            terms: 0,
            predicted_builds: 0,
            predicted_reuses: 0,
            predicted_cross_reuses: 0,
            predicted_cached_reads: 0,
            operands: vec![],
        }
    }

    #[test]
    fn intra_comp_repeat_flags_uww011() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        let v2 = g.id_of("V2").unwrap();
        let s = Strategy::from_exprs(vec![UpdateExpr::comp1(v4, v2)]);
        let profile = SharingProfile {
            exprs: vec![comp_profile("V4", vec![op("V3", 1, false, 3)])],
        };
        let r = analyze_sharing(&g, &s, &profile);
        assert!(!r.has_errors());
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.diagnostics[0].rule, Rule::IntraCompShare);
        assert!(r.diagnostics[0].message.contains("saves 2 builds"));
    }

    #[test]
    fn alias_split_key_flags_uww013() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        let v2 = g.id_of("V2").unwrap();
        let s = Strategy::from_exprs(vec![UpdateExpr::comp1(v4, v2)]);
        let mut a = op("V2", 0, false, 1);
        a.alias = "l".to_string();
        let mut b = op("V2", 2, false, 1);
        b.alias = "r".to_string();
        let profile = SharingProfile {
            exprs: vec![comp_profile("V4", vec![a, b])],
        };
        let r = analyze_sharing(&g, &s, &profile);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.diagnostics[0].rule, Rule::CacheKeyMismatch);
        assert!(r.diagnostics[0].message.contains("l, r"));
    }

    #[test]
    fn cross_comp_repeat_flags_uww012_unless_modified_between() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        let v5 = g.id_of("V5").unwrap();
        let v2 = g.id_of("V2").unwrap();
        let shared = || op("V1", 0, false, 1);
        let profile = SharingProfile {
            exprs: vec![
                comp_profile("V4", vec![shared()]),
                comp_profile("V5", vec![shared()]),
            ],
        };
        // Back-to-back Comps reusing stored V1: flagged.
        let s = Strategy::from_exprs(vec![UpdateExpr::comp1(v4, v2), UpdateExpr::comp1(v5, v2)]);
        let r = analyze_sharing(&g, &s, &profile);
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.rule == Rule::CrossCompShare)
                .count(),
            1
        );

        // An Inst(V1) in between invalidates the stored extent: clean.
        let v1 = g.id_of("V1").unwrap();
        let s2 = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v4, v2),
            UpdateExpr::inst(v1),
            UpdateExpr::comp1(v5, v2),
        ]);
        let profile2 = SharingProfile {
            exprs: vec![
                comp_profile("V4", vec![shared()]),
                inst_profile("V1"),
                comp_profile("V5", vec![shared()]),
            ],
        };
        let r2 = analyze_sharing(&g, &s2, &profile2);
        assert_eq!(
            r2.diagnostics
                .iter()
                .filter(|d| d.rule == Rule::CrossCompShare)
                .count(),
            0
        );
    }

    #[test]
    fn transitive_chain_prices_each_rebuild_once() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        let v5 = g.id_of("V5").unwrap();
        let v2 = g.id_of("V2").unwrap();
        let shared = || op("V1", 0, false, 1);
        // Three Comps sharing one live table: a pairwise walk would price
        // 3 savings; the cache realizes exactly 2 (one per rebuild).
        let s = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v4, v2),
            UpdateExpr::comp1(v5, v2),
            UpdateExpr::comp1(v4, v2),
        ]);
        let profile = SharingProfile {
            exprs: vec![
                comp_profile("V4", vec![shared()]),
                comp_profile("V5", vec![shared()]),
                comp_profile("V4", vec![shared()]),
            ],
        };
        let r = analyze_sharing(&g, &s, &profile);
        let cross: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::CrossCompShare)
            .collect();
        assert_eq!(cross.len(), 2);
        // Both rebuilds are attributed to the first live builder (expr 0),
        // and each prices one avoided 100-row build.
        for d in &cross {
            assert_eq!(
                d.related,
                vec![(0, "same hash table first built here".to_string())]
            );
            assert!(d.message.contains("~100 rows saved"));
        }

        // An Inst(V1) mid-chain splits the live run: the last Comp is
        // attributed to the post-install builder, not the first.
        let v1 = g.id_of("V1").unwrap();
        let s2 = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v4, v2),
            UpdateExpr::comp1(v5, v2),
            UpdateExpr::inst(v1),
            UpdateExpr::comp1(v4, v2),
            UpdateExpr::comp1(v5, v2),
        ]);
        let profile2 = SharingProfile {
            exprs: vec![
                comp_profile("V4", vec![shared()]),
                comp_profile("V5", vec![shared()]),
                inst_profile("V1"),
                comp_profile("V4", vec![shared()]),
                comp_profile("V5", vec![shared()]),
            ],
        };
        let r2 = analyze_sharing(&g, &s2, &profile2);
        let related: Vec<usize> = r2
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::CrossCompShare)
            .map(|d| d.related[0].0)
            .collect();
        assert_eq!(related, vec![0, 3]);
    }

    #[test]
    fn delta_operand_invalidated_by_comp_between() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        let v5 = g.id_of("V5").unwrap();
        let v2 = g.id_of("V2").unwrap();
        // Both Comps scan ΔV4; a Comp(V4, ·) in between extends that delta.
        let dv4 = || op("V4", 0, true, 1);
        let s = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v5, v2),
            UpdateExpr::comp1(v4, v2),
            UpdateExpr::comp1(v5, v2),
        ]);
        let profile = SharingProfile {
            exprs: vec![
                comp_profile("V5", vec![dv4()]),
                comp_profile("V4", vec![]),
                comp_profile("V5", vec![dv4()]),
            ],
        };
        let r = analyze_sharing(&g, &s, &profile);
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.rule == Rule::CrossCompShare)
                .count(),
            0
        );
    }

    #[test]
    fn empty_profile_is_clean() {
        let g = figure3_vdag();
        let s = Strategy::from_exprs(vec![UpdateExpr::inst(ViewId(0))]);
        let profile = SharingProfile {
            exprs: vec![inst_profile("V1")],
        };
        assert!(analyze_sharing(&g, &s, &profile).is_clean());
    }
}
