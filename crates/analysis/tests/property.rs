//! Property tests: the static analyzer is exactly as strict as the dynamic
//! correctness checkers.
//!
//! For randomly generated VDAGs and strategies — unbiased random sequences
//! as well as mutations of known-correct strategies, which concentrate the
//! samples near the correct/incorrect boundary — the analyzer reports at
//! least one error **iff** `check_vdag_strategy` (resp.
//! `check_view_strategy`) rejects. Every strategy the dynamic checker
//! rejects is flagged statically, and the analyzer never cries wolf on a
//! strategy the executor would accept.

use proptest::prelude::*;
use uww_analysis::{analyze, analyze_view};
use uww_vdag::{
    check_vdag_strategy, check_view_strategy, dual_stage_strategy, random_vdag, RandomVdagConfig,
    SplitMix64, Strategy, UpdateExpr, Vdag, ViewId,
};

/// Pool of plausible expressions for `g`: every `Inst`, plus `Comp`s of each
/// derived view over single sources and the full source set.
fn expr_pool(g: &Vdag) -> Vec<UpdateExpr> {
    let mut pool: Vec<UpdateExpr> = g.view_ids().map(UpdateExpr::inst).collect();
    for v in g.derived_views() {
        let sources = g.sources(v).to_vec();
        for s in &sources {
            pool.push(UpdateExpr::comp1(v, *s));
        }
        if sources.len() > 1 {
            pool.push(UpdateExpr::comp(v, sources.clone()));
        }
    }
    pool
}

/// A random sequence drawn (with replacement, so duplicates occur) from the
/// pool — mostly incorrect, occasionally correct by chance.
fn random_strategy(g: &Vdag, rng: &mut SplitMix64) -> Strategy {
    let pool = expr_pool(g);
    let len = 1 + rng.below(2 * g.len() as u64 + 2) as usize;
    Strategy::from_exprs(
        (0..len)
            .map(|_| pool[rng.below(pool.len() as u64) as usize].clone())
            .collect(),
    )
}

/// A known-correct strategy with 0–2 random mutations (swap, drop,
/// duplicate) applied: samples concentrate near the boundary the analyzer
/// must track exactly.
fn mutated_strategy(g: &Vdag, rng: &mut SplitMix64) -> Strategy {
    let mut exprs = dual_stage_strategy(g).exprs;
    for _ in 0..rng.below(3) {
        if exprs.len() < 2 {
            break;
        }
        let i = rng.below(exprs.len() as u64) as usize;
        let j = rng.below(exprs.len() as u64) as usize;
        match rng.below(3) {
            0 => exprs.swap(i, j),
            1 => {
                exprs.remove(i);
            }
            _ => {
                let e = exprs[i].clone();
                exprs.insert(j, e);
            }
        }
    }
    Strategy::from_exprs(exprs)
}

fn assert_vdag_equivalence(g: &Vdag, s: &Strategy) {
    let report = analyze(g, s);
    let dynamic = check_vdag_strategy(g, s);
    assert_eq!(
        report.has_errors(),
        dynamic.is_err(),
        "analyzer ({} errors) and check_vdag_strategy ({:?}) disagree on {}\n{}",
        report.error_count(),
        dynamic,
        s.display(g),
        report.render_text()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn analyzer_matches_dynamic_vdag_checker_on_random_strategies(
        seed in 0u64..10_000,
        bases in 1usize..4,
        derived in 1usize..4,
    ) {
        let g = random_vdag(seed, RandomVdagConfig {
            bases,
            derived,
            edge_probability: 0.6,
        });
        let mut rng = SplitMix64::new(seed ^ 0xA5A5_5A5A);
        for _ in 0..8 {
            let s = random_strategy(&g, &mut rng);
            assert_vdag_equivalence(&g, &s);
        }
    }

    #[test]
    fn analyzer_matches_dynamic_vdag_checker_near_the_boundary(
        seed in 0u64..10_000,
        bases in 1usize..4,
        derived in 1usize..4,
    ) {
        let g = random_vdag(seed, RandomVdagConfig {
            bases,
            derived,
            edge_probability: 0.5,
        });
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9));
        for _ in 0..8 {
            let s = mutated_strategy(&g, &mut rng);
            assert_vdag_equivalence(&g, &s);
        }
        // The unmutated strategy itself is correct and must lint clean.
        let s = dual_stage_strategy(&g);
        check_vdag_strategy(&g, &s).unwrap();
        let report = analyze(&g, &s);
        prop_assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn analyzer_matches_dynamic_view_checker(
        seed in 0u64..10_000,
        bases in 1usize..5,
    ) {
        // One derived view over `bases` sources; random view strategies
        // from its expression pool (view-level ids only, matching the
        // domain of Definition 3.1).
        let mut g = Vdag::new();
        let srcs: Vec<ViewId> = (0..bases)
            .map(|i| g.add_base(format!("B{i}")).unwrap())
            .collect();
        let view = g.add_derived("V", &srcs).unwrap();
        let mut rng = SplitMix64::new(seed);
        let mut pool: Vec<UpdateExpr> = srcs
            .iter()
            .flat_map(|s| [UpdateExpr::comp1(view, *s), UpdateExpr::inst(*s)])
            .collect();
        pool.push(UpdateExpr::inst(view));
        if srcs.len() > 1 {
            pool.push(UpdateExpr::comp(view, srcs.clone()));
        }
        for _ in 0..8 {
            let len = 1 + rng.below(pool.len() as u64 + 3) as usize;
            let s = Strategy::from_exprs(
                (0..len)
                    .map(|_| pool[rng.below(pool.len() as u64) as usize].clone())
                    .collect(),
            );
            let report = analyze_view(&g, view, &s);
            let dynamic = check_view_strategy(&g, view, &s);
            prop_assert_eq!(
                report.has_errors(),
                dynamic.is_err(),
                "analyze_view and check_view_strategy disagree on {}\n{}",
                s.display(&g),
                report.render_text()
            );
        }
    }
}
