//! Engine microbenchmarks: the physical operators the update window is made
//! of — scans, hash joins with signed multiplicities, grouping, installs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use uww::relational::ops::{self, AggFunc, AggSpec};
use uww::relational::{
    DeltaRelation, ScalarExpr, Schema, Table, Tuple, Value, ValueType, WorkMeter,
};

fn table(rows: usize) -> Table {
    let mut t = Table::new(
        "T",
        Schema::of(&[
            ("k", ValueType::Int),
            ("g", ValueType::Int),
            ("x", ValueType::Decimal),
        ]),
    );
    for i in 0..rows {
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int((i % 100) as i64),
            Value::Decimal((i * 13 % 10_000) as i64),
        ]))
        .unwrap();
    }
    t
}

fn bench_ops(c: &mut Criterion) {
    let t = table(10_000);
    let u = table(2_000);
    let mut group = c.benchmark_group("engine_micro");

    group.bench_function("scan_10k", |b| {
        b.iter(|| {
            let mut m = WorkMeter::new();
            black_box(ops::scan_table(&t, &mut m))
        })
    });

    group.bench_function("hash_join_10k_x_2k", |b| {
        let mut m = WorkMeter::new();
        let left = ops::scan_table(&t, &mut m);
        let right = ops::scan_table(&u, &mut m);
        b.iter(|| {
            let mut m = WorkMeter::new();
            black_box(ops::hash_join(&left, &[0], &right, &[0], &mut m))
        })
    });

    group.bench_function("group_10k", |b| {
        let mut m = WorkMeter::new();
        let rows = ops::scan_table(&t, &mut m);
        let spec = AggSpec {
            group_by: vec![ScalarExpr::col("g").bind(t.schema()).unwrap()],
            aggs: vec![(
                AggFunc::Sum,
                ScalarExpr::col("x").bind(t.schema()).unwrap(),
                ValueType::Decimal,
            )],
        };
        b.iter(|| black_box(ops::group_rows(&rows, &spec).unwrap()))
    });

    group.bench_function("install_1k_into_10k", |b| {
        let mut delta = DeltaRelation::new(t.schema().clone());
        for (i, (row, _)) in t.sorted_rows().into_iter().enumerate() {
            if i % 10 == 0 {
                delta.add(row, -1);
            }
        }
        b.iter_batched(
            || t.clone(),
            |mut t2| t2.install(&delta).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
