//! Figure 12 bench (Experiment 1): update-window time for representative
//! Q3 view-strategy classes — the best 1-way (MinWorkSingle), the worst
//! 1-way, a 2-way, and the dual-stage strategy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use uww::core::SizeCatalog;
use uww::vdag::{view_strategies, UpdateExpr};
use uww_bench::{minwork_single_strategy, q3_with_changes, strategy_kind};

fn bench_fig12(c: &mut Criterion) {
    let sc = q3_with_changes(0.10);
    let g = sc.warehouse.vdag();
    let q3 = g.id_of("Q3").unwrap();
    let n = g.sources(q3).len();
    let _sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();

    let mws = minwork_single_strategy(&sc);
    let mut dual = None;
    let mut two_way = None;
    for s in view_strategies(g, q3) {
        match strategy_kind(&s, n) {
            "dual-stage" => dual = Some(sc.complete_strategy(&s)),
            "2-way"
                if two_way.is_none()
                    && s.exprs
                        .iter()
                        .any(|e| matches!(e, UpdateExpr::Comp { over, .. } if over.len() == 2)) =>
            {
                two_way = Some(sc.complete_strategy(&s))
            }
            _ => {}
        }
    }

    let mut group = c.benchmark_group("fig12_q3_strategies");
    group.sample_size(10);
    for (label, strategy) in [
        ("minwork_single_1way", mws),
        ("two_way", two_way.unwrap()),
        ("dual_stage", dual.unwrap()),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || sc.warehouse.clone(),
                |mut w| w.execute(&strategy).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
