//! Figure 13 bench (Experiment 2): Q5 under MinWorkSingle vs dual-stage.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use uww_bench::{minwork_single_strategy, q5_with_changes};

fn bench_fig13(c: &mut Criterion) {
    let sc = q5_with_changes(0.10);
    let mws = minwork_single_strategy(&sc);
    let dual = sc.dual_stage_strategy();

    let mut group = c.benchmark_group("fig13_q5_strategies");
    group.sample_size(10);
    for (label, strategy) in [("minwork_single", mws), ("dual_stage", dual)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || sc.warehouse.clone(),
                |mut w| w.execute(&strategy).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
