//! Figure 14 bench (Experiment 3): the Q3 change-percentage sweep for
//! MinWorkSingle vs dual-stage at 2%, 6% and 10% deletions.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use uww_bench::{minwork_single_strategy, q3_with_changes};

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_change_sweep");
    group.sample_size(10);
    for p in [2u32, 6, 10] {
        let sc = q3_with_changes(p as f64 / 100.0);
        let mws = minwork_single_strategy(&sc);
        let dual = sc.dual_stage_strategy();
        group.bench_with_input(BenchmarkId::new("minwork_single", p), &p, |b, _| {
            b.iter_batched(
                || sc.warehouse.clone(),
                |mut w| w.execute(&mws).unwrap(),
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("dual_stage", p), &p, |b, _| {
            b.iter_batched(
                || sc.warehouse.clone(),
                |mut w| w.execute(&dual).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
