//! Figure 15 bench (Experiment 4): MinWork vs RNSCOL vs dual-stage VDAG
//! strategies on the full Figure 4 TPC-D warehouse.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use uww::core::{min_work, SizeCatalog};
use uww_bench::figure4_with_changes;

fn bench_fig15(c: &mut Criterion) {
    let sc = figure4_with_changes(0.10);
    let sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();
    let plan = min_work(sc.warehouse.vdag(), &sizes).unwrap();
    let rnscol = sc.rnscol_strategy().unwrap();
    let dual = sc.dual_stage_strategy();

    let mut group = c.benchmark_group("fig15_vdag_strategies");
    group.sample_size(10);
    for (label, strategy) in [
        ("minwork", plan.strategy),
        ("rnscol", rnscol),
        ("dual_stage", dual),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || sc.warehouse.clone(),
                |mut w| w.execute(&strategy).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);
