//! Metric ablation bench: evaluating strategies under the paper's linear
//! work metric vs the flawed "operands once" variant, plus planner runtime
//! under each.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use uww::core::{min_work, prune, CostMetric, CostModel, SizeCatalog};
use uww_bench::figure4_with_changes;

fn bench_metric(c: &mut Criterion) {
    let sc = figure4_with_changes(0.10);
    let g = sc.warehouse.vdag();
    let sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();
    let plan = min_work(g, &sizes).unwrap();
    let dual = sc.dual_stage_strategy();

    let mut group = c.benchmark_group("metric_ablation");
    for (label, metric) in [
        ("linear", CostMetric::Linear),
        ("operands_once", CostMetric::OperandsOnce),
    ] {
        let model = CostModel::with_metric(g, &sizes, metric);
        group.bench_function(format!("cost_eval_{label}"), |b| {
            b.iter(|| black_box(model.strategy_work(&plan.strategy) + model.strategy_work(&dual)))
        });
    }

    // Planner runtime is dominated by graph work, not metric evaluation,
    // but Prune costs every candidate: time it under the real metric.
    let model = CostModel::new(g, &sizes);
    group.sample_size(10);
    group.bench_function("prune_with_linear_metric", |b| {
        b.iter(|| black_box(prune(g, &model).unwrap().cost))
    });
    group.finish();
}

criterion_group!(benches, bench_metric);
criterion_main!(benches);
