//! Section 9 ablation: parallelizing the MinWork strategy vs the dual-stage
//! strategy — scheduling cost and stage-parallel execution.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use uww::core::{makespan, min_work, parallelize, CostModel, SizeCatalog};
use uww_bench::figure4_with_changes;

fn bench_parallel(c: &mut Criterion) {
    let sc = figure4_with_changes(0.10);
    let g = sc.warehouse.vdag();
    let sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();
    let model = CostModel::new(g, &sizes);
    let plan = min_work(g, &sizes).unwrap();
    let dual = sc.dual_stage_strategy();

    let mut group = c.benchmark_group("parallel_ablation");
    group.sample_size(10);

    group.bench_function("schedule_minwork", |b| {
        b.iter(|| black_box(parallelize(g, &plan.strategy)))
    });
    group.bench_function("schedule_dual_stage", |b| {
        b.iter(|| black_box(parallelize(g, &dual)))
    });

    let p1 = parallelize(g, &plan.strategy);
    let pd = parallelize(g, &dual);
    group.bench_function("makespan_eval", |b| {
        b.iter(|| black_box(makespan(&model, &p1) + makespan(&model, &pd)))
    });

    group.bench_function("execute_parallel_minwork", |b| {
        b.iter_batched(
            || sc.warehouse.clone(),
            |mut w| w.execute_parallel(&p1).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("execute_parallel_dual_stage", |b| {
        b.iter_batched(
            || sc.warehouse.clone(),
            |mut w| w.execute_parallel(&pd).unwrap(),
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
