//! Planner scaling: MinWorkSingle is O(n log n), MinWork O(n³), Prune
//! O(m!·n³). Times the planners on synthetic VDAGs of growing width, and
//! the exhaustive baseline on a tiny VDAG for contrast.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use uww::core::{
    best_vdag_strategy, min_work, min_work_single, prune, CostModel, SizeCatalog, SizeInfo,
};
use uww::vdag::{Vdag, ViewId};

/// A uniform VDAG: `width` bases feeding `summaries` level-1 views (each
/// over all bases), sizes shrinking 10%.
fn uniform_vdag(width: usize, summaries: usize) -> (Vdag, SizeCatalog) {
    let mut g = Vdag::new();
    let bases: Vec<ViewId> = (0..width)
        .map(|i| g.add_base(format!("B{i}")).unwrap())
        .collect();
    for s in 0..summaries {
        g.add_derived(format!("S{s}"), &bases).unwrap();
    }
    let mut sizes = SizeCatalog::default();
    for v in g.view_ids() {
        let pre = 100.0 * (v.0 + 1) as f64;
        sizes.set(
            v,
            SizeInfo {
                pre,
                post: pre * 0.9,
                delta: pre * 0.1,
            },
        );
    }
    (g, sizes)
}

fn bench_planners(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_scaling");

    for width in [4usize, 6, 8] {
        let (g, sizes) = uniform_vdag(width, 3);
        let view = g.id_of("S0").unwrap();
        group.bench_with_input(
            BenchmarkId::new("min_work_single", width),
            &width,
            |b, _| b.iter(|| black_box(min_work_single(&g, view, &sizes))),
        );
        group.bench_with_input(BenchmarkId::new("min_work", width), &width, |b, _| {
            b.iter(|| black_box(min_work(&g, &sizes).unwrap()))
        });
    }

    // Prune's factorial blow-up: m = number of consumed views.
    for width in [4usize, 5, 6] {
        let (g, sizes) = uniform_vdag(width, 2);
        let model = CostModel::new(&g, &sizes);
        group.bench_with_input(BenchmarkId::new("prune", width), &width, |b, _| {
            b.iter(|| black_box(prune(&g, &model).unwrap()))
        });
    }

    // Exhaustive baseline on a tiny VDAG (3 bases, 1 summary).
    let (g, sizes) = uniform_vdag(3, 1);
    let model = CostModel::new(&g, &sizes);
    group.bench_function("exhaustive_3x1", |b| {
        b.iter(|| black_box(best_vdag_strategy(&g, &model).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_planners);
criterion_main!(benches);
