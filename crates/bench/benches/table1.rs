//! Table 1 bench: strategy-space counting and enumeration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use uww_vdag::{fubini, ordered_set_partitions, paper_formula_strategies};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.bench_function("fubini_recurrence_n6", |b| {
        b.iter(|| black_box(fubini(black_box(6))))
    });
    g.bench_function("paper_formula_n6", |b| {
        b.iter(|| black_box(paper_formula_strategies(black_box(6))))
    });
    g.bench_function("enumerate_partitions_n6", |b| {
        b.iter(|| black_box(ordered_set_partitions(black_box(6)).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
