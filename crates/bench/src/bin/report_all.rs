//! Runs every report in sequence: the full paper-evaluation regeneration.
//! Equivalent to running `report_table1`, `report_fig12` ... `report_parallel`
//! one after another (same process, shared build).

use std::process::Command;

fn main() {
    let reports = [
        "report_table1",
        "report_fig12",
        "report_fig13",
        "report_fig14",
        "report_fig15",
        "report_parallel",
        "report_olap",
        "report_policies",
        "report_design",
        "report_scaling",
    ];
    // Re-exec the sibling binaries so each report stays runnable standalone.
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("binary directory");
    let mut failures = Vec::new();
    for r in reports {
        println!("\n──────────────────────────────────────────────────────────");
        let path = dir.join(r);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failures.push(r);
        }
    }
    println!("\n──────────────────────────────────────────────────────────");
    if failures.is_empty() {
        println!("All reports completed.");
    } else {
        println!("FAILED reports: {failures:?}");
        std::process::exit(1);
    }
}
