//! Cross-`Comp` sharing report: proves the strategy-scope operand cache
//! and the sharing-aware planner objective on two workloads.
//!
//! **Figure-4 warehouse** (all TPC-D summary views, paper change batch):
//! the MinWork strategy is executed uncached, with the per-`Comp` cache,
//! and with the strategy-scope cache (sequential and term-threaded). The
//! final state and the logical (paper-metric) `WorkMeter` must be
//! identical across all engines; the strategy scope must record
//! cross-expression hash-table reuses (> 0) and cached raw reads, touch no
//! more physical rows than the per-`Comp` scope, and match
//! `plan_strategy_sharing`'s static prediction *exactly*, counter by
//! counter, expression by expression.
//!
//! **Objective fixture** (`V1 = A ⋈ B`, `V2 = B ⋈ C`, delta sizes chosen
//! so the linear and shared rankings disagree — see
//! `tests/planner_objective.rs`): `MinWorkShared` must select a different
//! strategy than plain MinWork and the flip must pay off in *measured*
//! physical rows, strictly.
//!
//! Violations abort the run, so this binary doubles as a CI smoke check.
//! Output: a summary on stdout plus `BENCH_cross_sharing.json` in the
//! current directory. Scale comes from `UWW_SCALE` (default 0.002).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use uww::core::{
    min_work, min_work_shared, plan_strategy_sharing, CostModel, ExecOptions, SharingScope,
    SizeCatalog, StrategySharingPlan, Warehouse,
};
use uww::relational::{
    catalog_to_string, DeltaRelation, EquiJoin, OutputColumn, Schema, Table, Tuple, Value,
    ValueType, ViewDef, ViewOutput, ViewSource, WorkMeter,
};
use uww::vdag::Strategy;
use uww_bench::{bench_scale, figure4_with_changes};

struct Run {
    work: WorkMeter,
    per_expr: Vec<WorkMeter>,
    state: String,
    wall_us: u128,
}

fn run(w: &Warehouse, strategy: &Strategy, share: bool, cache: bool, threads: usize) -> Run {
    let mut clone = w.clone();
    let opts = ExecOptions {
        term_sharing: share,
        strategy_sharing: cache,
        term_threads: threads,
        ..ExecOptions::default()
    };
    let start = Instant::now();
    let report = clone.execute_with(strategy, opts).expect("execute");
    let wall_us = start.elapsed().as_micros();
    Run {
        work: report.total_work(),
        per_expr: report.per_expr.iter().map(|e| e.work).collect(),
        state: catalog_to_string(clone.state()),
        wall_us,
    }
}

/// Asserts predicted == measured for every hash-table counter of every
/// expression — the conformance gate, no tolerance.
fn assert_conformant(tag: &str, plan: &StrategySharingPlan, run: &Run) {
    assert_eq!(
        plan.exprs.len(),
        run.per_expr.len(),
        "{tag}: expression count"
    );
    for (i, (p, m)) in plan.exprs.iter().zip(run.per_expr.iter()).enumerate() {
        assert_eq!(
            p.plan.predicted_builds, m.hash_tables_built,
            "{tag} expr {i} ({}): builds diverged",
            p.view
        );
        assert_eq!(
            p.plan.predicted_reuses, m.hash_tables_reused,
            "{tag} expr {i} ({}): reuses diverged",
            p.view
        );
        assert_eq!(
            p.plan.cross_reuses, m.hash_tables_cross_reused,
            "{tag} expr {i} ({}): cross-reuses diverged",
            p.view
        );
        assert_eq!(
            p.plan.cached_reads, m.operand_reads_cached,
            "{tag} expr {i} ({}): cached reads diverged",
            p.view
        );
    }
}

// ---------------------------------------------------------------------------
// The objective fixture (mirrors tests/planner_objective.rs)
// ---------------------------------------------------------------------------

const COLS: &[(&str, ValueType)] = &[
    ("k", ValueType::Int),
    ("v", ValueType::Int),
    ("g", ValueType::Int),
];

fn base(name: &str, rows: i64) -> Table {
    let mut t = Table::new(name, Schema::of(COLS));
    for k in 0..rows {
        t.insert(Tuple::new(vec![
            Value::Int(k % 20),
            Value::Int(k),
            Value::Int(k % 3),
        ]))
        .unwrap();
    }
    t
}

fn join2(name: &str, a: (&str, &str), b: (&str, &str)) -> ViewDef {
    ViewDef {
        name: name.into(),
        sources: vec![
            ViewSource {
                view: a.0.into(),
                alias: a.1.into(),
            },
            ViewSource {
                view: b.0.into(),
                alias: b.1.into(),
            },
        ],
        joins: vec![EquiJoin::new(format!("{}.k", a.1), format!("{}.k", b.1))],
        filters: vec![],
        output: ViewOutput::Project(vec![
            OutputColumn::col("k", format!("{}.k", a.1)),
            OutputColumn::col("v", format!("{}.v", a.1)),
            OutputColumn::col("g", format!("{}.v", b.1)),
        ]),
    }
}

fn inserts(rows: i64, v_base: i64) -> DeltaRelation {
    let mut delta = DeltaRelation::new(Schema::of(COLS));
    for i in 0..rows {
        delta.add(
            Tuple::new(vec![
                Value::Int(i % 20),
                Value::Int(v_base + i),
                Value::Int(i % 3),
            ]),
            1,
        );
    }
    delta
}

fn objective_fixture() -> Warehouse {
    let mut w = Warehouse::builder()
        .base_table(base("A", 50))
        .base_table(base("B", 20))
        .base_table(base("C", 50))
        .view(join2("V1", ("A", "A"), ("B", "B")))
        .view(join2("V2", ("B", "B"), ("C", "C")))
        .build()
        .unwrap();
    let changes = BTreeMap::from([
        ("A".to_string(), inserts(25, 500)),
        ("B".to_string(), inserts(30, 600)),
        ("C".to_string(), inserts(40, 700)),
    ]);
    w.load_changes(changes).unwrap();
    w
}

fn main() {
    let scale = bench_scale();
    println!("Cross-Comp sharing report (figure-4 warehouse, scale = {scale})");

    // -- Figure-4 warehouse ------------------------------------------------
    let sc = figure4_with_changes(0.10);
    let w = &sc.warehouse;
    let sizes = SizeCatalog::estimate(w).expect("sizes");
    let strategy = min_work(w.vdag(), &sizes).expect("min_work").strategy;

    let uncached = run(w, &strategy, false, false, 0);
    let percomp = run(w, &strategy, true, false, 0);
    let strat = run(w, &strategy, true, true, 0);
    let threaded = run(w, &strategy, true, true, 4);

    for (name, other) in [
        ("per-Comp", &percomp),
        ("strategy", &strat),
        ("threaded", &threaded),
    ] {
        assert_eq!(uncached.state, other.state, "fig4: state diverged ({name})");
        assert_eq!(
            uncached.work.logical(),
            other.work.logical(),
            "fig4: logical work moved ({name})"
        );
    }
    assert!(
        percomp.work.physical_rows_touched <= uncached.work.physical_rows_touched,
        "fig4: per-Comp cache touched more rows than uncached"
    );
    assert!(
        strat.work.physical_rows_touched <= percomp.work.physical_rows_touched,
        "fig4: strategy cache touched more rows than per-Comp"
    );
    assert!(
        strat.work.hash_tables_built <= percomp.work.hash_tables_built,
        "fig4: strategy cache built more tables than per-Comp"
    );
    assert!(
        strat.work.hash_tables_cross_reused > 0,
        "fig4: strategy cache served no cross-expression reuse"
    );
    assert_eq!(
        strat.work.physical_rows_touched, threaded.work.physical_rows_touched,
        "fig4: threaded physical rows diverged"
    );

    let plan = plan_strategy_sharing(w, &strategy, SharingScope::Strategy).expect("plan");
    assert_conformant("fig4", &plan, &strat);

    let model = CostModel::new(w.vdag(), &sizes);
    let outcome = min_work_shared(w, &model).expect("min_work_shared");
    let fig4_chosen = run(w, &outcome.strategy, true, true, 0);
    assert_eq!(
        uncached.state, fig4_chosen.state,
        "fig4: shared choice diverged"
    );
    assert!(
        fig4_chosen.work.physical_rows_touched <= strat.work.physical_rows_touched,
        "fig4: MinWorkShared's choice must not touch more rows than MinWork's"
    );

    let ratio = percomp.work.physical_rows_touched as f64 / strat.work.physical_rows_touched as f64;
    println!(
        "  physical rows: uncached {} | per-Comp {} | strategy {} ({ratio:.2}x vs per-Comp)",
        uncached.work.physical_rows_touched,
        percomp.work.physical_rows_touched,
        strat.work.physical_rows_touched,
    );
    println!(
        "  hash tables:   per-Comp {} built / {} reused | strategy {} built / {} reused ({} cross) | {} cached reads",
        percomp.work.hash_tables_built,
        percomp.work.hash_tables_reused,
        strat.work.hash_tables_built,
        strat.work.hash_tables_reused,
        strat.work.hash_tables_cross_reused,
        strat.work.operand_reads_cached,
    );
    println!(
        "  MinWorkShared: differs = {} (saving {:.0} rows priced; measured {} vs {})",
        outcome.differs,
        outcome.cross_saving,
        fig4_chosen.work.physical_rows_touched,
        strat.work.physical_rows_touched,
    );

    // -- Objective fixture -------------------------------------------------
    let fx = objective_fixture();
    let fx_sizes = SizeCatalog::estimate(&fx).expect("fixture sizes");
    let fx_model = CostModel::new(fx.vdag(), &fx_sizes);
    let fx_outcome = min_work_shared(&fx, &fx_model).expect("fixture min_work_shared");
    assert!(
        fx_outcome.differs,
        "fixture: MinWorkShared must flip away from plain MinWork"
    );
    let fx_chosen = run(&fx, &fx_outcome.strategy, true, true, 0);
    let fx_base = run(&fx, &fx_outcome.baseline, true, true, 0);
    assert_eq!(
        fx_chosen.state, fx_base.state,
        "fixture: strategies diverged"
    );
    assert!(
        fx_chosen.work.physical_rows_touched < fx_base.work.physical_rows_touched,
        "fixture: the flip must strictly reduce measured physical rows"
    );
    println!(
        "  objective fixture: flip confirmed — measured physical {} (shared choice) < {} (MinWork), priced saving {:.0}",
        fx_chosen.work.physical_rows_touched,
        fx_base.work.physical_rows_touched,
        fx_outcome.cross_saving,
    );

    // -- JSON --------------------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {scale},");
    json.push_str("  \"fig4\": {\n");
    let _ = writeln!(
        json,
        "    \"physical_rows_uncached\": {},",
        uncached.work.physical_rows_touched
    );
    let _ = writeln!(
        json,
        "    \"physical_rows_per_comp\": {},",
        percomp.work.physical_rows_touched
    );
    let _ = writeln!(
        json,
        "    \"physical_rows_strategy\": {},",
        strat.work.physical_rows_touched
    );
    let _ = writeln!(json, "    \"physical_reduction_vs_per_comp\": {ratio:.4},");
    let _ = writeln!(
        json,
        "    \"hash_builds_per_comp\": {},",
        percomp.work.hash_tables_built
    );
    let _ = writeln!(
        json,
        "    \"hash_builds_strategy\": {},",
        strat.work.hash_tables_built
    );
    let _ = writeln!(
        json,
        "    \"hash_cross_reuses\": {},",
        strat.work.hash_tables_cross_reused
    );
    let _ = writeln!(
        json,
        "    \"operand_reads_cached\": {},",
        strat.work.operand_reads_cached
    );
    let _ = writeln!(
        json,
        "    \"predicted_cross_reuses\": {},",
        plan.cross_reuses()
    );
    let _ = writeln!(
        json,
        "    \"predicted_cached_reads\": {},",
        plan.cached_reads()
    );
    let _ = writeln!(
        json,
        "    \"cross_saved_rows\": {},",
        plan.cross_saved_rows()
    );
    let _ = writeln!(json, "    \"static_conformant\": true,");
    let _ = writeln!(json, "    \"logical_identical\": true,");
    let _ = writeln!(json, "    \"states_identical\": true,");
    let _ = writeln!(json, "    \"minwork_shared_differs\": {},", outcome.differs);
    let _ = writeln!(
        json,
        "    \"physical_rows_shared_choice\": {},",
        fig4_chosen.work.physical_rows_touched
    );
    let _ = writeln!(json, "    \"wall_us_uncached\": {},", uncached.wall_us);
    let _ = writeln!(json, "    \"wall_us_per_comp\": {},", percomp.wall_us);
    let _ = writeln!(json, "    \"wall_us_strategy\": {},", strat.wall_us);
    let _ = writeln!(json, "    \"wall_us_threaded\": {}", threaded.wall_us);
    json.push_str("  },\n");
    json.push_str("  \"objective_fixture\": {\n");
    let _ = writeln!(json, "    \"differs\": {},", fx_outcome.differs);
    let _ = writeln!(
        json,
        "    \"linear_cost_chosen\": {:.2},",
        fx_outcome.linear_cost
    );
    let _ = writeln!(
        json,
        "    \"linear_cost_baseline\": {:.2},",
        fx_outcome.baseline_cost
    );
    let _ = writeln!(
        json,
        "    \"cross_saving\": {:.2},",
        fx_outcome.cross_saving
    );
    let _ = writeln!(json, "    \"shared_cost\": {:.2},", fx_outcome.cost);
    let _ = writeln!(
        json,
        "    \"physical_rows_chosen\": {},",
        fx_chosen.work.physical_rows_touched
    );
    let _ = writeln!(
        json,
        "    \"physical_rows_baseline\": {},",
        fx_base.work.physical_rows_touched
    );
    let _ = writeln!(json, "    \"strictly_lower\": true");
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_cross_sharing.json", &json).expect("write BENCH_cross_sharing.json");
    println!("\nWrote BENCH_cross_sharing.json");
}
