//! Warehouse-design companion (Section 8: "our algorithms can be combined
//! with design algorithms"): greedy view selection over TPC-D candidate
//! summary tables, with maintenance cost computed by planning each design's
//! update window with MinWork.

use uww::core::{greedy_select, Candidate};
use uww::tpcd::{ChangeBatch, TpcdConfig, TpcdGenerator};
use uww_bench::bench_scale;

fn main() {
    let generator = TpcdGenerator::new(TpcdConfig::at_scale(bench_scale()));
    let data = generator.generate();
    let base_tables: Vec<_> = uww::tpcd::BASE_VIEWS
        .iter()
        .map(|n| data.get(n).unwrap().clone())
        .collect();

    let candidates = vec![
        Candidate {
            def: uww::tpcd::q1_def(),
            query_frequency: 8.0,
        },
        Candidate {
            def: uww::tpcd::q3_def(),
            query_frequency: 5.0,
        },
        Candidate {
            def: uww::tpcd::q5_def(),
            query_frequency: 2.0,
        },
        Candidate {
            def: uww::tpcd::q10_def(),
            query_frequency: 3.0,
        },
    ];

    let batch_gen = |w: &uww::core::Warehouse| {
        ChangeBatch::paper_default(0.10, 0x5757_1999).generate(w.state(), &generator)
    };

    println!("== Warehouse design: greedy selection under maintenance budgets ==");
    println!("candidates: Q1 (freq 8), Q3 (freq 5), Q5 (freq 2), Q10 (freq 3)\n");
    println!(
        "{:>14} {:<28} {:>16} {:>14}",
        "budget", "selected", "maintenance", "query benefit"
    );
    for budget in [5_000.0, 50_000.0, 150_000.0, 1e9] {
        let out = greedy_select(&base_tables, &candidates, budget, &batch_gen).expect("selection");
        println!(
            "{:>14.0} {:<28} {:>16.0} {:>14.0}",
            budget,
            if out.selected.is_empty() {
                "(none)".to_string()
            } else {
                out.selected.join(", ")
            },
            out.maintenance_work,
            out.query_benefit
        );
    }
    println!(
        "\nEach design's maintenance column is the MinWork-planned window for\n\
         the paper's 10% deletion batch — the design algorithm and the update\n\
         planner share one cost model, as Section 8 suggests."
    );
}
