//! Regenerates **Figure 12** (Experiment 1): all 13 strategy classes for
//! the Q3 view, run against identical warehouse state; 10% deletions on
//! CUSTOMER, ORDER, LINEITEM.

use uww::core::{CostModel, SizeCatalog};
use uww::vdag::view_strategies;
use uww_bench::{
    bench_scale, grouping_label, measure, minwork_single_strategy, print_rows, q3_with_changes,
    strategy_kind, ReportRow,
};

fn main() {
    let sc = q3_with_changes(0.10);
    println!(
        "scale={} (LINEITEM = {} rows)\n",
        bench_scale(),
        sc.warehouse.table("LINEITEM").unwrap().len()
    );
    let g = sc.warehouse.vdag();
    let q3 = g.id_of("Q3").unwrap();
    let n = g.sources(q3).len();
    let sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();
    let model = CostModel::new(g, &sizes);

    let mws = minwork_single_strategy(&sc);
    let mut rows: Vec<ReportRow> = Vec::new();
    for s in view_strategies(g, q3) {
        let full = sc.complete_strategy(&s);
        let mut label = grouping_label(&sc, &s);
        if full == mws {
            label.push_str("  <- MinWorkSingle");
        }
        rows.push(measure(&sc, &model, &label, strategy_kind(&s, n), &full));
    }
    print_rows(
        "Figure 12: Q3 view strategies (13 classes)",
        "1-way strategies cheapest; dual-stage 46.25s vs best 20.91s (2.2x); \
         MinWorkSingle very close to optimal",
        rows,
    );
}
