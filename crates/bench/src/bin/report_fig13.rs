//! Regenerates **Figure 13** (Experiment 2): the Q5 view (defined over all
//! six base views) under the MinWorkSingle strategy vs the dual-stage
//! strategy; 10% deletions on every base view but REGION.

use uww::core::{CostModel, SizeCatalog};
use uww_bench::{bench_scale, measure, minwork_single_strategy, print_rows, q5_with_changes};

fn main() {
    let sc = q5_with_changes(0.10);
    println!(
        "scale={} (LINEITEM = {} rows)\n",
        bench_scale(),
        sc.warehouse.table("LINEITEM").unwrap().len()
    );
    let g = sc.warehouse.vdag();
    let sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();
    let model = CostModel::new(g, &sizes);

    let mws = minwork_single_strategy(&sc);
    let dual = sc.dual_stage_strategy();

    let rows = vec![
        measure(&sc, &model, "MinWorkSingle", "1-way", &mws),
        measure(&sc, &model, "dual-stage", "dual-stage", &dual),
    ];
    print_rows(
        "Figure 13: Q5 view strategies",
        "dual-stage 422.25s vs MinWorkSingle 69.65s (6.1x) — the gap grows \
         with fan-in (2^6-1 = 63 maintenance terms vs 6)",
        rows,
    );
}
