//! Regenerates **Figure 14** (Experiment 3): Q3 update window for
//! MinWorkSingle, the best 2-way strategy, and the dual-stage strategy, as
//! the deletion percentage on CUSTOMER, ORDER and LINEITEM sweeps 2%..10%.

use uww::vdag::{view_strategies, UpdateExpr};
use uww_bench::{bench_scale, minwork_single_strategy, q3_with_changes, strategy_kind};

fn main() {
    println!("== Figure 14: Q3 strategies under different change percentages ==");
    println!("   paper: MinWorkSingle < Best2Way < dual-stage over the whole 2..10% sweep");
    println!("scale={}\n", bench_scale());
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>22}",
        "p%", "MinWorkSingle", "Best2Way", "dual-stage", "(measured work rows)"
    );

    let mut ok = true;
    for p in [2, 4, 6, 8, 10] {
        let sc = q3_with_changes(p as f64 / 100.0);
        let g = sc.warehouse.vdag();
        let q3 = g.id_of("Q3").unwrap();
        let n = g.sources(q3).len();

        let mws = sc.run(&minwork_single_strategy(&sc)).unwrap().linear_work();

        let mut best_2way = u64::MAX;
        let mut dual = 0u64;
        for s in view_strategies(g, q3) {
            let kind = strategy_kind(&s, n);
            let has_pair = s
                .exprs
                .iter()
                .any(|e| matches!(e, UpdateExpr::Comp { over, .. } if over.len() == 2));
            if kind == "dual-stage" {
                dual = sc.run(&sc.complete_strategy(&s)).unwrap().linear_work();
            } else if has_pair {
                let w = sc.run(&sc.complete_strategy(&s)).unwrap().linear_work();
                best_2way = best_2way.min(w);
            }
        }
        ok &= mws <= best_2way && best_2way <= dual;
        println!("{p:>4} {mws:>14} {best_2way:>14} {dual:>14}");
    }
    println!(
        "\nFigure 14 {}: MinWorkSingle <= Best2Way <= dual-stage at every p.",
        if ok { "REPRODUCED" } else { "MISMATCH" }
    );
    assert!(ok);
}
