//! Regenerates **Figure 15** (Experiment 4): VDAG strategies on the full
//! Figure 4 TPC-D warehouse (Q3 + Q5 + Q10 over six base views), plus the
//! Section 7 "Discussion" metric ablation: under the flawed
//! sum-each-operand-once metric the dual-stage strategy would wrongly win.

use uww::core::{min_work, prune, CostMetric, CostModel, SizeCatalog};
use uww_bench::{bench_scale, figure4_with_changes, measure, print_rows};

fn main() {
    let sc = figure4_with_changes(0.10);
    println!(
        "scale={} (LINEITEM = {} rows)\n",
        bench_scale(),
        sc.warehouse.table("LINEITEM").unwrap().len()
    );
    let g = sc.warehouse.vdag();
    let sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();
    let model = CostModel::new(g, &sizes);

    let plan = min_work(g, &sizes).unwrap();
    assert!(
        !plan.used_modified_ordering,
        "the TPC-D VDAG is uniform; the desired ordering must be usable"
    );
    println!("MinWork ordering: {}", plan.ordering.display(g));
    let pruned = prune(g, &model).unwrap();
    println!(
        "Prune: {} orderings examined, {} feasible, agrees with MinWork: {}\n",
        pruned.orderings_examined,
        pruned.orderings_feasible,
        (pruned.cost - model.strategy_work(&plan.strategy)).abs() < 1e-6
    );

    let rnscol = sc.rnscol_strategy().unwrap();
    let dual = sc.dual_stage_strategy();
    let rows = vec![
        measure(&sc, &model, "MinWork/Prune", "1-way", &plan.strategy),
        measure(&sc, &model, "RNSCOL", "1-way", &rnscol),
        measure(&sc, &model, "dual-stage", "dual-stage", &dual),
    ];
    print_rows(
        "Figure 15: VDAG strategies on the TPC-D warehouse",
        "MinWork 107.9s; RNSCOL 119.6s (+11%); dual-stage 577.53s (5-6x)",
        rows,
    );

    // Metric ablation (Section 7 Discussion).
    let flawed = CostModel::with_metric(g, &sizes, CostMetric::OperandsOnce);
    let mw_flawed = flawed.strategy_work(&plan.strategy);
    let dual_flawed = flawed.strategy_work(&dual);
    println!("Metric ablation (sum-each-operand-once variant):");
    println!("  MinWork predicted: {mw_flawed:.0}, dual-stage predicted: {dual_flawed:.0}");
    println!(
        "  -> the variant ranks dual-stage {} — {}",
        if dual_flawed < mw_flawed {
            "BEST"
        } else {
            "worse"
        },
        if dual_flawed < mw_flawed {
            "contradicting the measured outcome, exactly the paper's point"
        } else {
            "unexpected; the paper predicts the flawed metric favours dual-stage"
        }
    );
}
