//! Regenerates the **Section 7 Discussion** analysis: OLAP interference
//! during the update window, under strict locking and under low isolation,
//! for the MinWork 1-way strategy vs the dual-stage strategy.

use uww::core::{min_work, simulate_olap, CostModel, IsolationMode, OlapWorkload, SizeCatalog};
use uww_bench::{bench_scale, figure4_with_changes};

fn main() {
    let sc = figure4_with_changes(0.10);
    println!("== Section 7 Discussion: OLAP interference ==");
    println!(
        "   paper: dual-stage compresses the locking phase, but its longer\n\
         \x20         window competes with OLAP queries for resources; at lower\n\
         \x20         isolation levels the 1-way strategies win outright"
    );
    println!("scale={}\n", bench_scale());

    let g = sc.warehouse.vdag();
    let sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();
    let model = CostModel::new(g, &sizes);
    let plan = min_work(g, &sizes).unwrap();
    let dual = sc.dual_stage_strategy();

    for isolation in [IsolationMode::Strict, IsolationMode::LowIsolation] {
        let wl = OlapWorkload {
            interarrival: 2_000.0,
            scan_fraction: 0.25,
            update_contention: 2.0,
            isolation,
        };
        println!("--- isolation: {isolation:?} ---");
        println!(
            "{:<12} {:>10} {:>13} {:>12} {:>12} {:>12}",
            "strategy", "window", "install span", "lock waits", "mean lat", "max lat"
        );
        for (label, s) in [("MinWork", &plan.strategy), ("dual-stage", &dual)] {
            let rep = simulate_olap(g, &model, &sizes, s, &wl);
            println!(
                "{:<12} {:>10.0} {:>13.0} {:>12.0} {:>12.1} {:>12.1}",
                label,
                rep.window,
                rep.install_span,
                rep.total_lock_wait(),
                rep.mean_latency(),
                rep.max_latency()
            );
        }
        println!();
    }
}
