//! Regenerates the **Section 9** analysis (parallel strategies — the
//! paper's sketched future work): total work vs makespan for the MinWork
//! 1-way strategy and the dual-stage strategy on the Figure 4 warehouse.

use uww::core::{makespan, min_work, parallelize, total_work, CostModel, SizeCatalog};
use uww_bench::{bench_scale, figure4_with_changes};

fn main() {
    let sc = figure4_with_changes(0.10);
    println!("== Section 9: parallel strategies ==");
    println!(
        "   paper: dual-stage exposes parallelism but 'any benefit ... may be \
         offset by an increase in total work'"
    );
    println!("scale={}\n", bench_scale());

    let g = sc.warehouse.vdag();
    let sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();
    let model = CostModel::new(g, &sizes);

    let plan = min_work(g, &sizes).unwrap();
    let one_way = parallelize(g, &plan.strategy);
    let dual = parallelize(g, &sc.dual_stage_strategy());

    println!(
        "{:<12} {:>7} {:>7} {:>14} {:>14} {:>9}",
        "strategy", "exprs", "stages", "total work", "makespan", "speedup"
    );
    for (label, p) in [("MinWork", &one_way), ("dual-stage", &dual)] {
        let tw = total_work(&model, p);
        let ms = makespan(&model, p);
        println!(
            "{:<12} {:>7} {:>7} {:>14.0} {:>14.0} {:>8.2}x",
            label,
            p.expression_count(),
            p.depth(),
            tw,
            ms,
            tw / ms
        );
    }

    let tw1 = total_work(&model, &one_way);
    let msd = makespan(&model, &dual);
    println!(
        "\nCrossover: the dual-stage makespan ({msd:.0}) {} the 1-way total work \
         ({tw1:.0}) — with unlimited parallel workers dual-stage {}.",
        if msd < tw1 { "beats" } else { "still exceeds" },
        if msd < tw1 {
            "would win"
        } else {
            "still loses"
        },
    );

    // Execute both parallel schedules with REAL threads and verify.
    println!();
    for (label, p) in [("MinWork", &one_way), ("dual-stage", &dual)] {
        let mut seq = sc.warehouse.clone();
        let expected = seq.expected_final_state().unwrap();
        let seq_report = seq.execute_parallel(p).unwrap();
        assert!(seq.diff_state(&expected).is_empty());

        let mut par = sc.warehouse.clone();
        let par_report = par.execute_parallel_threaded(p).unwrap();
        assert!(par.diff_state(&expected).is_empty());

        println!(
            "{label}: {} stages | work {} rows | wall sequential {:>8.1?} vs threaded {:>8.1?}",
            p.depth(),
            par_report.linear_work(),
            seq_report.wall(),
            par_report.wall(),
        );
    }
    println!(
        "\n(The threaded executor overlaps each stage's Comp expressions on\n\
         real threads; installs land serially at stage boundaries.)"
    );
}
