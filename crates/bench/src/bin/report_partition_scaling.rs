//! Partition-parallel scaling report: the update window at 1/2/4/8 hash
//! partitions on the figure-4 warehouse.
//!
//! Every run executes the identical MinWork strategy; partitioning changes
//! *where* rows are probed, never *what* is computed, so the final state and
//! the full work meter must be byte-identical at every partition count —
//! violations abort the run, making this binary the CI smoke check for the
//! partition engine. Two window lengths are reported per partition count:
//!
//! * `wall_us` — measured wall clock. On a single-core container every
//!   partition chunk runs serially, so this barely moves with the count.
//! * `critical_path_us` — the window length an ideal `P`-worker machine
//!   would see, derived from the recorded trace via
//!   [`obs::critical::critical_path_us`]: for each partition fan-out
//!   (keyed by task identity — parent span plus base label — so work
//!   stealing cannot split a fan-out across lanes and sequential stages
//!   under one parent cannot merge) the serial chunk time (`Σ dur`)
//!   collapses to the longest chunk (`max dur`), and the saved time comes
//!   off the wall. This is what the partition count actually buys, and it
//!   is what CI gates (`critical_path(1) / critical_path(4) ≥ 1.5`).
//!
//! Output: a summary on stdout plus `BENCH_scaling.json` in the current
//! directory. Scale comes from `UWW_SCALE` (default 0.002, ~12k LINEITEM;
//! scale ≈ 1.67 targets the paper-motivated ~10M-row LINEITEM).

use std::fmt::Write as _;
use std::sync::Arc;

use uww::core::{min_work, ExecOptions, PartitionOptions, SizeCatalog};
use uww::obs;
use uww::relational::catalog_to_string;
use uww_bench::{bench_scale, figure4_with_changes};

const PARTITIONS: &[usize] = &[1, 2, 4, 8];

/// The gate CI enforces on `critical_path(1) / critical_path(4)`.
const GATE_SHRINK_AT_4: f64 = 1.5;

struct Run {
    partitions: usize,
    wall_us: u64,
    critical_path_us: u64,
    partitioned_ops: usize,
    work: uww::relational::WorkMeter,
    state: String,
}

fn run_at(partitions: usize) -> Run {
    let sc = figure4_with_changes(0.10);
    let sizes = SizeCatalog::estimate(&sc.warehouse).expect("sizes");
    let plan = min_work(sc.warehouse.vdag(), &sizes).expect("minwork plan");

    let buf = Arc::new(obs::TraceBuffer::new(obs::DEFAULT_CAPACITY));
    obs::install(buf.clone());
    let mut w = sc.warehouse.clone();
    let report = w
        .execute_with(
            &plan.strategy,
            ExecOptions {
                partition: PartitionOptions::with_partitions(partitions),
                strategy_sharing: true,
                ..ExecOptions::default()
            },
        )
        .expect("execution");
    obs::uninstall();
    let spans = buf.take_records();
    assert_eq!(buf.dropped(), 0, "trace ring overflowed; raise capacity");

    let wall_us = report.wall().as_micros() as u64;
    Run {
        partitions,
        wall_us,
        critical_path_us: obs::critical::critical_path_us(wall_us, &spans),
        partitioned_ops: obs::critical::fan_out_count(&spans),
        work: report.total_work(),
        state: catalog_to_string(w.state()),
    }
}

fn main() {
    let scale = bench_scale();
    println!("Partition scaling report (figure-4 warehouse, scale = {scale})");
    println!(
        "  {:>10} {:>12} {:>17} {:>9} {:>15}",
        "partitions", "wall_us", "critical_path_us", "shrink", "partitioned_ops"
    );

    let runs: Vec<Run> = PARTITIONS.iter().map(|&p| run_at(p)).collect();
    let base = &runs[0];

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"gate_shrink_at_4\": {GATE_SHRINK_AT_4},");
    json.push_str("  \"partitions\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let shrink = base.critical_path_us as f64 / r.critical_path_us.max(1) as f64;
        println!(
            "  {:>10} {:>12} {:>17} {:>8.2}x {:>15}",
            r.partitions, r.wall_us, r.critical_path_us, shrink, r.partitioned_ops
        );
        let _ = writeln!(
            json,
            "    {{ \"partitions\": {}, \"wall_us\": {}, \"critical_path_us\": {}, \
             \"shrink\": {:.4}, \"partitioned_ops\": {}, \"linear_work\": {} }}{}",
            r.partitions,
            r.wall_us,
            r.critical_path_us,
            shrink,
            r.partitioned_ops,
            r.work.linear_work(),
            if i + 1 == runs.len() { "" } else { "," }
        );

        // Identity gates: partitioning must never change what is computed.
        assert_eq!(
            r.state, base.state,
            "partitions={}: final state diverged from sequential",
            r.partitions
        );
        assert_eq!(
            r.work, base.work,
            "partitions={}: work meter diverged from sequential",
            r.partitions
        );
    }

    // The headline gate: on an ideal machine, 4 partitions shrink the
    // update window's critical path by at least 1.5x over sequential.
    let four = runs
        .iter()
        .find(|r| r.partitions == 4)
        .expect("4-partition run");
    let shrink4 = base.critical_path_us as f64 / four.critical_path_us.max(1) as f64;
    assert!(
        shrink4 >= GATE_SHRINK_AT_4,
        "critical-path shrink at 4 partitions is {shrink4:.2}x, gate is {GATE_SHRINK_AT_4}x"
    );

    // Every partitioned run must beat sequential on the critical path. (The
    // 2-vs-4 ordering is left ungated: tens-of-ms wall samples on a shared
    // box jitter enough to flip it without any real regression.)
    let two = runs.iter().find(|r| r.partitions == 2).expect("2-part run");
    assert!(
        two.critical_path_us <= base.critical_path_us
            && four.critical_path_us <= base.critical_path_us,
        "critical path regressed below sequential: {} -> {} (P=2) / {} (P=4)",
        base.critical_path_us,
        two.critical_path_us,
        four.critical_path_us
    );

    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"states_identical\": true,");
    let _ = writeln!(json, "  \"meters_identical\": true,");
    let _ = writeln!(json, "  \"shrink_at_4\": {shrink4:.4}");
    json.push_str("}\n");
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("\nWrote BENCH_scaling.json (shrink at 4 partitions: {shrink4:.2}x)");
}
