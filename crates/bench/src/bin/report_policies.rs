//! Maintenance-policy comparison (the \[CKL+97\] companion the paper's
//! Section 8 cites): immediate vs periodic vs deferred maintenance over a
//! stream of TPC-D refresh batches (RF1 inserts + RF2 deletes), all planned
//! per-window with MinWork.

use uww::core::{MaintenancePolicy, PlannerChoice, WarehouseDriver};
use uww::scenario::TpcdScenario;
use uww_bench::bench_scale;

fn driver(policy: MaintenancePolicy) -> (WarehouseDriver, TpcdScenario) {
    let sc = TpcdScenario::builder()
        .scale(bench_scale())
        .base_views(&["CUSTOMER", "ORDER", "LINEITEM"])
        .views([uww::tpcd::q3_def()])
        .build()
        .expect("scenario");
    let d = WarehouseDriver::new(sc.warehouse.clone(), policy, PlannerChoice::MinWork);
    (d, sc)
}

fn main() {
    println!("== Maintenance policies over a refresh stream ==");
    println!(
        "   related work [CKL+97]: when to maintain is orthogonal to the\n\
         \x20  paper's how; the driver runs MinWork per window either way.\n"
    );
    println!(
        "{:<14} {:>9} {:>16} {:>13} {:>16}",
        "policy", "windows", "total work", "max stale", "work/batch"
    );

    const BATCHES: usize = 6;
    for (label, policy) in [
        ("immediate", MaintenancePolicy::Immediate),
        ("periodic(3)", MaintenancePolicy::Periodic(3)),
        ("deferred", MaintenancePolicy::Deferred),
    ] {
        let (mut drv, sc) = driver(policy);
        let mut max_stale = 0usize;
        for i in 0..BATCHES {
            // Alternate RF1 (insert 2% orders) and RF2 (delete 2%).
            let state = drv.logical_state().expect("logical state");
            let orders = state.get("ORDER").unwrap().len();
            let k = (orders / 50).max(1);
            let batch = if i % 2 == 0 {
                uww::tpcd::rf1(&state, &sc.generator, k, 100 + i as u64)
            } else {
                uww::tpcd::rf2(&state, k, 200 + i as u64)
            };
            drv.deliver_batch(batch).expect("deliver");
            max_stale = max_stale.max(drv.pending_batches());
        }
        // Every stream ends with a query that forces freshness.
        let q = drv.query("Q3").expect("query");
        let windows = drv.history().len();
        let work = drv.total_maintenance_work();
        println!(
            "{:<14} {:>9} {:>16} {:>13} {:>16.0}",
            label,
            windows,
            work,
            max_stale.max(q.staleness),
            work as f64 / BATCHES as f64
        );
    }
    println!(
        "\nDeferred folds batches into fewer windows (RF1/RF2 churn partially\n\
         cancels), trading staleness for total work — the paper's planners\n\
         apply unchanged inside every policy."
    );
}
