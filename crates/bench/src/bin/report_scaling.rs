//! Scale sensitivity of the headline gaps.
//!
//! Under the linear work metric the measured-work ratios are *scale
//! invariant* — every term's operand sizes scale by the same factor when
//! the warehouse does (with proportional change batches), so who-wins and
//! by-what-factor are properties of the VDAG and change profile, not of the
//! data volume. Wall-clock ratios drift with scale as join costs leave the
//! strictly linear regime. The residual gap to the paper's absolute factors
//! (6.1x / 5-6x) comes from its substrate (disk-resident SQL Server), not
//! from scale.

use uww::core::{min_work, SizeCatalog};
use uww::scenario::{figure4_scenario, q5_scenario};

fn main() {
    println!("== Scale sensitivity of the headline gaps ==\n");
    println!(
        "{:>9} {:>10} {:>14} {:>14} {:>14} {:>14}",
        "scale", "LINEITEM", "fig13 work", "fig13 wall", "fig15 work", "fig15 wall"
    );
    for scale in [0.0005, 0.001, 0.002, 0.004] {
        // Figure 13 gap (Q5 warehouse).
        let mut q5 = q5_scenario(scale).expect("q5 scenario");
        q5.load_paper_changes(0.10).expect("changes");
        let g = q5.warehouse.vdag();
        let view = g.derived_views()[0];
        let sizes = SizeCatalog::estimate(&q5.warehouse).unwrap();
        let mws = q5.complete_strategy(&uww::core::min_work_single(g, view, &sizes));
        let q5_dual = q5.run(&q5.dual_stage_strategy()).unwrap();
        let q5_mws = q5.run(&mws).unwrap();
        let fig13 = q5_dual.linear_work() as f64 / q5_mws.linear_work() as f64;
        let fig13_wall = q5_dual.wall().as_secs_f64() / q5_mws.wall().as_secs_f64();

        // Figure 15 gap (full warehouse).
        let mut f4 = figure4_scenario(scale).expect("fig4 scenario");
        f4.load_paper_changes(0.10).expect("changes");
        let sizes = SizeCatalog::estimate(&f4.warehouse).unwrap();
        let plan = min_work(f4.warehouse.vdag(), &sizes).unwrap();
        let f4_dual = f4.run(&f4.dual_stage_strategy()).unwrap();
        let f4_mw = f4.run(&plan.strategy).unwrap();
        let fig15 = f4_dual.linear_work() as f64 / f4_mw.linear_work() as f64;
        let fig15_wall = f4_dual.wall().as_secs_f64() / f4_mw.wall().as_secs_f64();

        let lineitem = f4.warehouse.table("LINEITEM").unwrap().len();
        println!(
            "{scale:>9} {lineitem:>10} {fig13:>13.2}x {fig13_wall:>13.2}x {fig15:>13.2}x {fig15_wall:>13.2}x"
        );
    }
    println!(
        "\nWork ratios are constant across scale (the linear metric is\n\
         1-homogeneous); the paper's larger absolute factors (6.1x / 5-6x)\n\
         reflect its disk-resident substrate, not its data volume."
    );
}
