//! Validates the **Section 7 Discussion** OLAP-interference simulation
//! against a live server: replays the `report_olap` comparison — MinWork
//! 1-way vs dual-stage, strict locking vs multi-version reads — but with
//! real reader threads querying a TCP server while the update strategy
//! executes, instead of the discrete-time model.
//!
//! For each (strategy, isolation) cell it prints the measured latency
//! distribution next to the simulation's prediction. The headline check is
//! the *ordering*: the simulation predicts strict readers pay for the
//! update window and low-isolation readers do not; the measured mean
//! latency and lock-wait totals should agree.
//!
//! Environment knobs: `UWW_SCALE` (TPC-D scale, default 0.002),
//! `UWW_SERVE_READERS` (reader threads, default 4), `UWW_SERVE_HOLD_MS`
//! (artificial per-install hold, default 2).

use std::time::Duration;
use uww::core::{min_work, simulate_olap, CostModel, IsolationMode, OlapWorkload, SizeCatalog};
use uww::serve::Isolation;
use uww::serving::{run_live, LiveRunConfig};
use uww_bench::{bench_scale, figure4_with_changes};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let sc = figure4_with_changes(0.10);
    let readers = env_u64("UWW_SERVE_READERS", 4) as usize;
    let hold = Duration::from_millis(env_u64("UWW_SERVE_HOLD_MS", 2));
    println!("== Section 7 Discussion: measured OLAP interference ==");
    println!(
        "   live counterpart of report_olap: the same strategies run against\n\
         \x20         a real query server; strict takes per-view install locks,\n\
         \x20         mvcc serves pinned snapshots and never blocks"
    );
    println!(
        "scale={} readers={} hold={}ms\n",
        bench_scale(),
        readers,
        hold.as_millis()
    );

    let g = sc.warehouse.vdag();
    let sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();
    let model = CostModel::new(g, &sizes);
    let plan = min_work(g, &sizes).unwrap();
    let dual = sc.dual_stage_strategy();

    for (iso, sim_iso) in [
        (Isolation::Strict, IsolationMode::Strict),
        (Isolation::Mvcc, IsolationMode::LowIsolation),
    ] {
        let wl = OlapWorkload {
            interarrival: 2_000.0,
            scan_fraction: 0.25,
            update_contention: 2.0,
            isolation: sim_iso,
        };
        println!(
            "--- isolation: {} (simulated as {sim_iso:?}) ---",
            iso.label()
        );
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>9} {:>13} {:>11} {:>10}",
            "strategy",
            "queries",
            "mean_us",
            "p95_us",
            "p99_us",
            "max_us",
            "lock_wait_us",
            "window",
            "sim_mean"
        );
        for (label, s) in [("MinWork", &plan.strategy), ("dual-stage", &dual)] {
            let cfg = LiveRunConfig {
                isolation: iso,
                readers,
                hold,
                ..LiveRunConfig::default()
            };
            let out = run_live(&sc.warehouse, s, &cfg)
                .unwrap_or_else(|e| panic!("live {label} run under {} failed: {e}", iso.label()));
            let sim = simulate_olap(g, &model, &sizes, s, &wl);
            let m = &out.metrics;
            println!(
                "{:<12} {:>8} {:>8} {:>8} {:>8} {:>9} {:>13} {:>11?} {:>10.1}",
                label,
                m.queries,
                m.mean_us,
                m.p95_us,
                m.p99_us,
                m.max_us,
                m.lock_wait_us,
                out.window,
                sim.mean_latency()
            );
            assert_eq!(m.errors, 0, "{label}/{} readers saw errors", iso.label());
            if iso == Isolation::Mvcc {
                assert_eq!(
                    m.lock_wait_us, 0,
                    "mvcc readers must never wait on install locks"
                );
            }
        }
        println!();
    }
    println!(
        "prediction check: strict rows should show nonzero lock_wait_us and a\n\
         higher mean than their mvcc counterparts, matching the simulation's\n\
         Strict ≥ LowIsolation latency ordering."
    );
}
