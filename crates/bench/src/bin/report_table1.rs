//! Regenerates **Table 1**: the number of view strategies for a view
//! defined over n views, n = 1..6, three independent ways — the paper's
//! Equation (5), the Fubini recurrence, and explicit enumeration.

use uww_vdag::{fubini, ordered_set_partitions, paper_formula_strategies};

fn main() {
    println!("== Table 1: number of view strategies for a view over n views ==");
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12}",
        "n", "paper", "formula(5)", "recurrence", "enumerated"
    );
    let paper = [1u128, 3, 13, 75, 541, 4683];
    let mut all_match = true;
    for n in 1..=6u32 {
        let formula = paper_formula_strategies(n);
        let rec = fubini(n);
        let enumerated = if n <= 6 {
            ordered_set_partitions(n as usize).len() as u128
        } else {
            0
        };
        let expected = paper[(n - 1) as usize];
        all_match &= formula == expected && rec == expected && enumerated == expected;
        println!("{n:>3} {expected:>12} {formula:>12} {rec:>12} {enumerated:>12}");
    }
    println!(
        "\nTable 1 {}: all three derivations match the paper exactly.",
        if all_match { "REPRODUCED" } else { "MISMATCH" }
    );
    // Context lines from the paper's prose.
    println!(
        "Q3 (3 sources) has {} view strategies; Q5 (6) has {}; Q10 (4) has {}.",
        fubini(3),
        fubini(6),
        fubini(4)
    );
    assert!(all_match);
}
