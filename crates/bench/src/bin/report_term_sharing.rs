//! Shared-operand term engine sweep: for |Y| = 1..5, evaluate the
//! dual-stage `Comp(V, Y)` (2^|Y|−1 terms) with and without operand sharing
//! and report the logical (paper-metric) and physical row counts.
//!
//! The logical work and the produced deltas must be *identical* between the
//! engines — sharing is purely a physical optimisation — while the physical
//! rows touched must shrink, by ≥ 1.5× for |Y| ≥ 3 (the terms re-scan each
//! operand 2^(|Y|−1) times without sharing). The shared engine must also
//! *reuse* hash tables for |Y| ≥ 3 (a multi-term `Comp` repeats operand
//! builds by construction), and the static sharing predictor's build/reuse
//! counts must equal the measured counters exactly. Violations abort the
//! run, so this binary doubles as a CI smoke check at tiny scale.
//!
//! Output: a table on stdout plus `BENCH_term_sharing.json` in the current
//! directory. Row count per base view defaults to 2000 and can be lowered
//! with `UWW_TERM_ROWS` (CI uses 64).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use uww::core::{predict_strategy_sharing, ExecOptions, Warehouse};
use uww::relational::catalog_to_string;
use uww::relational::{
    DeltaRelation, EquiJoin, OutputColumn, Predicate, Schema, Table, Tuple, Value, ValueType,
    ViewDef, ViewOutput, ViewSource, WorkMeter,
};
use uww::vdag::{Strategy, UpdateExpr};

fn rows_per_base() -> usize {
    std::env::var("UWW_TERM_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000)
}

const COLS: &[(&str, ValueType)] = &[
    ("k", ValueType::Int),
    ("v", ValueType::Int),
    ("g", ValueType::Int),
];

/// A warehouse whose single derived view joins `y` base views on a shared
/// unique key, with a pushed-down single-source filter on the first source.
/// Deltas touch `rows/4` existing keys of every base, so all 2^y − 1 terms
/// survive the empty-delta skip.
fn sweep_warehouse(y: usize, rows: usize) -> (Warehouse, BTreeMap<String, DeltaRelation>) {
    let schema = Schema::of(COLS);
    let mut builder = Warehouse::builder();
    let mut sources = Vec::new();
    let mut joins = Vec::new();
    for i in 1..=y {
        let name = format!("A{i}");
        let mut t = Table::new(&name, schema.clone());
        for k in 0..rows {
            t.insert(Tuple::new(vec![
                Value::Int(k as i64),
                Value::Int(((k * 7 + i) % 100) as i64),
                Value::Int((k % 3) as i64),
            ]))
            .unwrap();
        }
        builder = builder.base_table(t);
        sources.push(ViewSource {
            view: name,
            alias: format!("S{i}"),
        });
        if i > 1 {
            joins.push(EquiJoin::new("S1.k", format!("S{i}.k")));
        }
    }
    builder = builder.view(ViewDef {
        name: "V".into(),
        sources,
        joins,
        filters: vec![Predicate::col_gt("S1.v", Value::Int(10))],
        output: ViewOutput::Project(vec![
            OutputColumn::col("k", "S1.k"),
            OutputColumn::col("v", format!("S{y}.v")),
            OutputColumn::col("g", "S1.g"),
        ]),
    });
    let w = builder.build().expect("sweep warehouse");

    let mut changes = BTreeMap::new();
    for i in 1..=y {
        let mut delta = DeltaRelation::new(schema.clone());
        for k in 0..rows / 4 {
            delta.add(
                Tuple::new(vec![
                    Value::Int(k as i64),
                    Value::Int(((k * 13 + i) % 100) as i64),
                    Value::Int(1),
                ]),
                1,
            );
        }
        changes.insert(format!("A{i}"), delta);
    }
    (w, changes)
}

fn dual_stage(w: &Warehouse) -> Strategy {
    let g = w.vdag();
    let mut exprs = Vec::new();
    for v in g.view_ids() {
        if !g.is_base(v) {
            exprs.push(UpdateExpr::comp(v, g.sources(v).iter().copied()));
        }
    }
    for v in g.view_ids() {
        exprs.push(UpdateExpr::inst(v));
    }
    Strategy::from_exprs(exprs)
}

struct Run {
    work: WorkMeter,
    state: String,
    wall_us: u128,
}

fn run(
    w: &Warehouse,
    changes: &BTreeMap<String, DeltaRelation>,
    strategy: &Strategy,
    share: bool,
    threads: usize,
) -> Run {
    let mut clone = w.clone();
    clone.load_changes(changes.clone()).expect("load changes");
    let opts = ExecOptions {
        term_sharing: share,
        term_threads: threads,
        ..ExecOptions::default()
    };
    let start = Instant::now();
    let report = clone.execute_with(strategy, opts).expect("execute");
    let wall_us = start.elapsed().as_micros();
    Run {
        work: report.total_work(),
        state: catalog_to_string(clone.state()),
        wall_us,
    }
}

fn main() {
    let rows = rows_per_base();
    println!("Shared-operand term engine sweep (rows per base = {rows})");
    println!(
        "{:>3} {:>6} {:>14} {:>16} {:>14} {:>9} {:>7} {:>7}",
        "|Y|", "terms", "logical rows", "phys unshared", "phys shared", "ratio", "builds", "reuses"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"rows_per_base\": {rows},");
    json.push_str("  \"sweep\": [\n");

    for y in 1..=5usize {
        let (w, changes) = sweep_warehouse(y, rows);
        let strategy = dual_stage(&w);

        let unshared = run(&w, &changes, &strategy, false, 0);
        let shared = run(&w, &changes, &strategy, true, 0);
        let threaded = run(&w, &changes, &strategy, true, 4);

        // Static sharing prediction over the same loaded warehouse.
        let predictions = {
            let mut clone = w.clone();
            clone.load_changes(changes.clone()).expect("load changes");
            predict_strategy_sharing(&clone, &strategy).expect("predict sharing")
        };
        let predicted_builds: u64 = predictions.iter().map(|p| p.plan.predicted_builds).sum();
        let predicted_reuses: u64 = predictions.iter().map(|p| p.plan.predicted_reuses).sum();

        // Correctness gates: identical deltas/state, identical logical work.
        assert_eq!(unshared.state, shared.state, "|Y|={y}: state diverged");
        assert_eq!(
            unshared.state, threaded.state,
            "|Y|={y}: state diverged (threaded)"
        );
        assert_eq!(
            unshared.work.logical(),
            shared.work.logical(),
            "|Y|={y}: logical work moved"
        );
        assert_eq!(
            unshared.work.logical(),
            threaded.work.logical(),
            "|Y|={y}: logical work moved (threaded)"
        );
        assert!(
            shared.work.physical_rows_touched <= unshared.work.physical_rows_touched,
            "|Y|={y}: sharing touched more rows"
        );
        let ratio =
            unshared.work.physical_rows_touched as f64 / shared.work.physical_rows_touched as f64;
        assert!(
            y < 3 || ratio >= 1.5,
            "|Y|={y}: physical reduction {ratio:.2}x < 1.5x"
        );
        // A multi-term Comp repeats operand builds by construction, so the
        // shared engine must actually reuse tables from |Y| = 3 up — and the
        // static predictor must agree with the meters exactly.
        assert!(
            y < 3 || shared.work.hash_tables_reused > 0,
            "|Y|={y}: shared engine reused no hash tables"
        );
        assert_eq!(
            predicted_builds, shared.work.hash_tables_built,
            "|Y|={y}: predicted builds diverged from measured"
        );
        assert_eq!(
            predicted_reuses, shared.work.hash_tables_reused,
            "|Y|={y}: predicted reuses diverged from measured"
        );

        let terms = shared.work.terms_evaluated;
        println!(
            "{:>3} {:>6} {:>14} {:>16} {:>14} {:>8.2}x {:>7} {:>7}",
            y,
            terms,
            shared.work.operand_rows_scanned,
            unshared.work.physical_rows_touched,
            shared.work.physical_rows_touched,
            ratio,
            shared.work.hash_tables_built,
            shared.work.hash_tables_reused,
        );

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"y\": {y},");
        let _ = writeln!(json, "      \"terms\": {terms},");
        let _ = writeln!(
            json,
            "      \"logical_rows_scanned\": {},",
            shared.work.operand_rows_scanned
        );
        let _ = writeln!(
            json,
            "      \"rows_installed\": {},",
            shared.work.rows_installed
        );
        let _ = writeln!(
            json,
            "      \"physical_rows_unshared\": {},",
            unshared.work.physical_rows_touched
        );
        let _ = writeln!(
            json,
            "      \"physical_rows_shared\": {},",
            shared.work.physical_rows_touched
        );
        let _ = writeln!(json, "      \"physical_reduction\": {ratio:.4},");
        let _ = writeln!(
            json,
            "      \"hash_builds_unshared\": {},",
            unshared.work.hash_tables_built
        );
        let _ = writeln!(
            json,
            "      \"hash_builds_shared\": {},",
            shared.work.hash_tables_built
        );
        let _ = writeln!(
            json,
            "      \"hash_reuses\": {},",
            shared.work.hash_tables_reused
        );
        let _ = writeln!(json, "      \"predicted_hash_builds\": {predicted_builds},");
        let _ = writeln!(json, "      \"predicted_hash_reuses\": {predicted_reuses},");
        let _ = writeln!(json, "      \"static_conformant\": true,");
        let _ = writeln!(json, "      \"wall_us_unshared\": {},", unshared.wall_us);
        let _ = writeln!(json, "      \"wall_us_shared\": {},", shared.wall_us);
        let _ = writeln!(json, "      \"wall_us_threaded\": {},", threaded.wall_us);
        let _ = writeln!(json, "      \"deltas_identical\": true,");
        let _ = writeln!(json, "      \"logical_identical\": true");
        let _ = writeln!(json, "    }}{}", if y < 5 { "," } else { "" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_term_sharing.json", &json).expect("write BENCH_term_sharing.json");
    println!("\nWrote BENCH_term_sharing.json");
}
