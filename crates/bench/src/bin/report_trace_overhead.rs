//! Tracing-overhead report: run the same dual-stage strategy with tracing
//! disabled and enabled (default sampling), interleaved, and compare
//! min-of-K wall times. The span engine's budget is < 5% overhead when
//! enabled; when *disabled* it is a single relaxed atomic load per
//! instrumentation point, which this binary demonstrates by construction
//! (the disabled runs ARE the baseline).
//!
//! The same protocol gates the window-health flight recorder: an
//! interleaved continuous-ingest schedule with the ledger off vs on must
//! also stay under the 5% budget — journaling one JSON line per window
//! may not meaningfully widen the window it records.
//!
//! Interleaving the two modes and taking the minimum per mode cancels page
//! cache, allocator and frequency-scaling drift — the standard min-of-K
//! protocol for sub-millisecond comparisons.
//!
//! Output: a summary on stdout plus `BENCH_trace_overhead.json` in the
//! current directory. Row count per base view defaults to 2000
//! (`UWW_TRACE_ROWS` overrides; CI uses a smaller value), iteration count
//! defaults to 7 (`UWW_TRACE_ITERS`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use uww::core::{ExecOptions, Warehouse};
use uww::obs::TraceBuffer;
use uww::relational::{
    DeltaRelation, EquiJoin, OutputColumn, Predicate, Schema, Table, Tuple, Value, ValueType,
    ViewDef, ViewOutput, ViewSource,
};
use uww::vdag::{Strategy, UpdateExpr};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

const COLS: &[(&str, ValueType)] = &[
    ("k", ValueType::Int),
    ("v", ValueType::Int),
    ("g", ValueType::Int),
];

/// Three bases joined into one view: the dual-stage `Comp` expands to seven
/// terms, so the run produces a realistic mix of expression, term, and
/// operator spans.
fn workload(rows: usize) -> (Warehouse, BTreeMap<String, DeltaRelation>) {
    let schema = Schema::of(COLS);
    let mut builder = Warehouse::builder();
    let mut sources = Vec::new();
    let mut joins = Vec::new();
    for i in 1..=3usize {
        let name = format!("A{i}");
        let mut t = Table::new(&name, schema.clone());
        for k in 0..rows {
            t.insert(Tuple::new(vec![
                Value::Int(k as i64),
                Value::Int(((k * 7 + i) % 100) as i64),
                Value::Int((k % 3) as i64),
            ]))
            .unwrap();
        }
        builder = builder.base_table(t);
        sources.push(ViewSource {
            view: name,
            alias: format!("S{i}"),
        });
        if i > 1 {
            joins.push(EquiJoin::new("S1.k", format!("S{i}.k")));
        }
    }
    builder = builder.view(ViewDef {
        name: "V".into(),
        sources,
        joins,
        filters: vec![Predicate::col_gt("S1.v", Value::Int(10))],
        output: ViewOutput::Project(vec![
            OutputColumn::col("k", "S1.k"),
            OutputColumn::col("v", "S3.v"),
            OutputColumn::col("g", "S1.g"),
        ]),
    });
    let w = builder.build().expect("workload warehouse");

    let mut changes = BTreeMap::new();
    for i in 1..=3usize {
        let mut delta = DeltaRelation::new(schema.clone());
        for k in 0..rows / 4 {
            delta.add(
                Tuple::new(vec![
                    Value::Int(k as i64),
                    Value::Int(((k * 13 + i) % 100) as i64),
                    Value::Int(1),
                ]),
                1,
            );
        }
        changes.insert(format!("A{i}"), delta);
    }
    (w, changes)
}

fn dual_stage(w: &Warehouse) -> Strategy {
    let g = w.vdag();
    let mut exprs = Vec::new();
    for v in g.view_ids() {
        if !g.is_base(v) {
            exprs.push(UpdateExpr::comp(v, g.sources(v).iter().copied()));
        }
    }
    for v in g.view_ids() {
        exprs.push(UpdateExpr::inst(v));
    }
    Strategy::from_exprs(exprs)
}

fn one_run(w: &Warehouse, changes: &BTreeMap<String, DeltaRelation>, strategy: &Strategy) -> u128 {
    let mut clone = w.clone();
    clone.load_changes(changes.clone()).expect("load changes");
    let start = Instant::now();
    clone
        .execute_with(strategy, ExecOptions::default())
        .expect("execute");
    start.elapsed().as_micros()
}

/// One continuous-ingest schedule on the tiny Q3 scenario, optionally
/// journaling the window-health ledger; returns wall micros.
fn one_ingest(ledger: Option<&std::path::Path>) -> u128 {
    use uww::sched::{
        IngestScheduler, Policy, SchedConfig, SeededSource, SeededSourceConfig, SlaConfig,
        WindowPlanner,
    };
    let mut w = uww::scenario::q3_scenario(0.0005)
        .expect("q3 scenario")
        .warehouse;
    let source = SeededSource::new(
        &w,
        SeededSourceConfig {
            seed: 0x5757_1999,
            rate_milli: 1500,
            horizon: 24,
            ..SeededSourceConfig::default()
        },
    );
    let cfg = SchedConfig {
        policy: Policy::Adaptive,
        sla: SlaConfig {
            target_staleness: 24.0,
            service_rate: 400.0,
            ..SlaConfig::default()
        },
        window: 12,
        horizon: 24,
        carry: true,
        planner: WindowPlanner::Shared,
        ledger: ledger.map(|p| p.to_path_buf()),
        ..SchedConfig::default()
    };
    let start = Instant::now();
    IngestScheduler::new(cfg, source)
        .run(&mut w)
        .expect("ingest schedule");
    start.elapsed().as_micros()
}

fn main() {
    let rows = env_usize("UWW_TRACE_ROWS", 2000);
    let iters = env_usize("UWW_TRACE_ITERS", 7).max(1);
    let (w, changes) = workload(rows);
    let strategy = dual_stage(&w);

    // Warm-up, untimed: fault in the page cache and the allocator.
    one_run(&w, &changes, &strategy);

    let mut disabled_min = u128::MAX;
    let mut enabled_min = u128::MAX;
    let mut spans_recorded: u64 = 0;
    let mut dropped: u64 = 0;
    for _ in 0..iters {
        disabled_min = disabled_min.min(one_run(&w, &changes, &strategy));

        let buf = Arc::new(TraceBuffer::new(uww::obs::DEFAULT_CAPACITY));
        uww::obs::install(Arc::clone(&buf));
        let us = one_run(&w, &changes, &strategy);
        uww::obs::uninstall();
        enabled_min = enabled_min.min(us);
        spans_recorded = buf.span_count();
        dropped = buf.dropped();
    }
    assert!(spans_recorded > 0, "enabled runs must record spans");

    let overhead_pct = (enabled_min as f64 - disabled_min as f64) / disabled_min as f64 * 100.0;
    println!(
        "trace overhead: rows={rows} iters={iters} disabled_min={disabled_min}µs \
         enabled_min={enabled_min}µs overhead={overhead_pct:.2}% \
         spans={spans_recorded} dropped={dropped}"
    );

    // The flight recorder rides the same budget: interleaved min-of-K over
    // a continuous-ingest schedule, ledger off vs on.
    let ledger_path =
        std::env::temp_dir().join(format!("uww-overhead-ledger-{}.jsonl", std::process::id()));
    one_ingest(None); // warm-up, untimed
    let mut ingest_min = u128::MAX;
    let mut ledger_min = u128::MAX;
    for _ in 0..iters {
        ingest_min = ingest_min.min(one_ingest(None));
        let _ = std::fs::remove_file(&ledger_path);
        ledger_min = ledger_min.min(one_ingest(Some(&ledger_path)));
    }
    let ledger_text = std::fs::read_to_string(&ledger_path).expect("read ledger");
    let ledger_windows = uww::obs::ledger::validate_ledger(&ledger_text)
        .expect("overhead-run ledger must validate")
        .records;
    let _ = std::fs::remove_file(&ledger_path);
    let ledger_pct = (ledger_min as f64 - ingest_min as f64) / ingest_min as f64 * 100.0;
    println!(
        "ledger overhead: ingest_min={ingest_min}µs ledger_min={ledger_min}µs \
         overhead={ledger_pct:.2}% windows={ledger_windows}"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"rows_per_base\": {rows},");
    let _ = writeln!(json, "  \"iterations\": {iters},");
    let _ = writeln!(json, "  \"disabled_us_min\": {disabled_min},");
    let _ = writeln!(json, "  \"enabled_us_min\": {enabled_min},");
    let _ = writeln!(json, "  \"overhead_pct\": {overhead_pct:.4},");
    let _ = writeln!(json, "  \"spans_recorded\": {spans_recorded},");
    let _ = writeln!(json, "  \"dropped\": {dropped},");
    let _ = writeln!(json, "  \"ingest_us_min\": {ingest_min},");
    let _ = writeln!(json, "  \"ledger_us_min\": {ledger_min},");
    let _ = writeln!(json, "  \"ledger_overhead_pct\": {ledger_pct:.4},");
    let _ = writeln!(json, "  \"ledger_windows\": {ledger_windows}");
    json.push_str("}\n");
    std::fs::write("BENCH_trace_overhead.json", &json).expect("write BENCH_trace_overhead.json");
    println!("Wrote BENCH_trace_overhead.json");

    // The budget: < 5% at default sampling. Below ~2ms of window the 5%
    // bound dips under scheduler/timer noise, so tiny CI workloads get an
    // absolute 100µs allowance instead.
    let delta_us = enabled_min.saturating_sub(disabled_min);
    assert!(
        overhead_pct < 5.0 || (disabled_min < 2_000 && delta_us < 100),
        "tracing overhead {overhead_pct:.2}% exceeds the 5% budget \
         (disabled {disabled_min}µs, enabled {enabled_min}µs)"
    );

    // Same budget for the ledger, same small-window allowance.
    let ledger_delta_us = ledger_min.saturating_sub(ingest_min);
    assert!(ledger_windows > 0, "ledger runs must record windows");
    assert!(
        ledger_pct < 5.0 || (ingest_min < 2_000 && ledger_delta_us < 100),
        "ledger overhead {ledger_pct:.2}% exceeds the 5% budget \
         (off {ingest_min}µs, on {ledger_min}µs)"
    );
}
