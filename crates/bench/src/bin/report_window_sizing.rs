//! Window-sizing report: fixed vs adaptive micro-batch scheduling on the
//! figure-4 warehouse under a seeded continuous event stream.
//!
//! For each arrival rate the same seeded timeline is ingested three times —
//! `fixed` (the paper's nightly-window stand-in: cut every 16 ticks),
//! `greedy` (cut every tick), and `adaptive` (EWMA-driven window sizing
//! against the staleness SLA). All three must process the identical event
//! set, land in a byte-identical final state, and report exact carry-over
//! conformance; `adaptive` must then dominate `fixed` on mean staleness at
//! equal throughput (same offered load, delivered rows within tolerance).
//!
//! Violations abort the run, so this binary doubles as a CI smoke check.
//! Output: a summary on stdout plus `BENCH_window_sizing.json` in the
//! current directory. Scale comes from `UWW_SCALE` (default 0.002); the
//! stream seed from `UWW_INGEST_SEED` (default 0x57571999).

use std::fmt::Write as _;

use uww::relational::catalog_to_string;
use uww::sched::{
    IngestOutcome, IngestScheduler, Policy, SchedConfig, SeededSource, SeededSourceConfig,
    SlaConfig, WindowPlanner,
};
use uww_bench::bench_scale;

const RATES_MILLI: &[u64] = &[1000, 2000, 4000];
const HORIZON: u64 = 120;
const FIXED_WINDOW: u64 = 16;

struct Run {
    out: IngestOutcome,
    state: String,
}

fn ingest(scale: f64, policy: Policy, rate_milli: u64, seed: u64) -> Run {
    let sc = uww::scenario::figure4_scenario(scale).expect("figure4 scenario");
    let mut w = sc.warehouse.clone();
    let sla = SlaConfig {
        target_staleness: 24.0,
        service_rate: 2000.0,
        ..SlaConfig::default()
    };
    let cfg = SchedConfig {
        policy,
        sla,
        window: FIXED_WINDOW,
        horizon: HORIZON,
        carry: true,
        planner: WindowPlanner::Shared,
        ..SchedConfig::default()
    };
    let source = SeededSource::new(
        &w,
        SeededSourceConfig {
            seed,
            rate_milli,
            horizon: HORIZON,
            ..SeededSourceConfig::default()
        },
    );
    let out = IngestScheduler::new(cfg, source)
        .run(&mut w)
        .expect("ingest run");
    assert!(
        out.crashed.is_none(),
        "{}@{rate_milli}: unexpected crash",
        policy.as_str()
    );
    assert!(
        out.conformant(),
        "{}@{rate_milli}: carry-over conformance violated",
        policy.as_str()
    );
    Run {
        out,
        state: catalog_to_string(w.state()),
    }
}

fn emit_policy(json: &mut String, name: &str, run: &Run, last: bool) {
    let o = &run.out;
    let _ = writeln!(
        json,
        "      \"{name}\": {{ \"windows\": {}, \"events\": {}, \"mean_staleness\": {:.4}, \"throughput\": {:.4}, \"clock\": {}, \"conformant\": true }}{}",
        o.windows.len(),
        o.events(),
        o.mean_staleness(),
        o.throughput(),
        o.clock,
        if last { "" } else { "," }
    );
}

fn main() {
    let scale = bench_scale();
    let seed = std::env::var("UWW_INGEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5757_1999u64);
    println!(
        "Window-sizing report (figure-4 warehouse, scale = {scale}, seed = {seed:#x}, horizon = {HORIZON})"
    );
    println!(
        "  {:>10} {:>9} {:>7} {:>8} {:>11} {:>11} {:>8}",
        "rate_milli", "policy", "windows", "events", "staleness", "throughput", "clock"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"horizon\": {HORIZON},");
    let _ = writeln!(json, "  \"fixed_window\": {FIXED_WINDOW},");
    json.push_str("  \"rates\": [\n");

    for (ri, &rate) in RATES_MILLI.iter().enumerate() {
        let fixed = ingest(scale, Policy::Fixed, rate, seed);
        let greedy = ingest(scale, Policy::Greedy, rate, seed);
        let adaptive = ingest(scale, Policy::Adaptive, rate, seed);

        for (name, run) in [
            ("fixed", &fixed),
            ("greedy", &greedy),
            ("adaptive", &adaptive),
        ] {
            let o = &run.out;
            println!(
                "  {rate:>10} {name:>9} {:>7} {:>8} {:>11.2} {:>11.2} {:>8}",
                o.windows.len(),
                o.events(),
                o.mean_staleness(),
                o.throughput(),
                o.clock,
            );
        }

        // Same timeline, every event processed: the event sets and the final
        // warehouse states must agree byte for byte across policies.
        for (name, run) in [("greedy", &greedy), ("adaptive", &adaptive)] {
            assert_eq!(
                fixed.out.events(),
                run.out.events(),
                "rate {rate}: {name} processed a different event set"
            );
            assert_eq!(
                fixed.state, run.state,
                "rate {rate}: {name} final state diverged from fixed"
            );
        }

        // The headline gate: adaptive dominates fixed on mean staleness at
        // equal offered load, without giving up delivered throughput.
        assert!(
            adaptive.out.mean_staleness() <= fixed.out.mean_staleness(),
            "rate {rate}: adaptive staleness {:.2} exceeds fixed {:.2}",
            adaptive.out.mean_staleness(),
            fixed.out.mean_staleness()
        );
        assert!(
            adaptive.out.throughput() >= 0.85 * fixed.out.throughput(),
            "rate {rate}: adaptive throughput {:.2} fell below 85% of fixed {:.2}",
            adaptive.out.throughput(),
            fixed.out.throughput()
        );

        let improvement = if adaptive.out.mean_staleness() > 0.0 {
            fixed.out.mean_staleness() / adaptive.out.mean_staleness()
        } else {
            1.0
        };
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"rate_milli\": {rate},");
        emit_policy(&mut json, "fixed", &fixed, false);
        emit_policy(&mut json, "greedy", &greedy, false);
        emit_policy(&mut json, "adaptive", &adaptive, false);
        let _ = writeln!(json, "      \"staleness_improvement\": {improvement:.4},");
        let _ = writeln!(json, "      \"states_identical\": true");
        json.push_str(if ri + 1 == RATES_MILLI.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }

    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_window_sizing.json", &json).expect("write BENCH_window_sizing.json");
    println!("\nWrote BENCH_window_sizing.json");
}
