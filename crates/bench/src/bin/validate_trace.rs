//! CI helper: validate a Chrome trace-event JSON file produced by
//! `uww run --trace-out` (or any trace-format producer) against the shape
//! contract in [`uww::obs::chrome::validate_chrome_trace`], and print a
//! one-line summary. Exits nonzero on any violation, so the bench-smoke job
//! can gate on it.
//!
//! Usage: `validate_trace TRACE.json [TRACE2.json ...]`

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_trace TRACE.json [TRACE2.json ...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
                continue;
            }
        };
        match uww::obs::chrome::validate_chrome_trace(&text) {
            Ok(stats) => {
                let cats: Vec<String> = stats
                    .by_category
                    .iter()
                    .map(|(c, n)| format!("{c}={n}"))
                    .collect();
                println!(
                    "{path}: OK — {} event(s), {} span(s) on {} lane(s), \
                     window {} µs [{}]",
                    stats.events,
                    stats.complete_events,
                    stats.lanes,
                    stats.span_end_us,
                    cats.join(", ")
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
