//! Shared workload setup and reporting helpers for the UWW benchmark
//! harness.
//!
//! Every report binary regenerates one artifact of the paper's evaluation
//! (Table 1, Figures 12–15) against the from-scratch engine; every Criterion
//! bench times the same workload. The scale factor defaults to `0.002`
//! (~12k LINEITEM rows) and can be overridden with the `UWW_SCALE`
//! environment variable.

use uww::core::{min_work_single, CostModel, SizeCatalog};
use uww::scenario::{q3_scenario, TpcdScenario};
use uww::vdag::{Strategy, UpdateExpr};

/// Benchmark scale factor: `UWW_SCALE` env var, default 0.002.
pub fn bench_scale() -> f64 {
    std::env::var("UWW_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002)
}

/// The Experiment 1–3 scenario (C, O, L + Q3) at bench scale with the given
/// deletion fraction already loaded.
pub fn q3_with_changes(frac: f64) -> TpcdScenario {
    let mut sc = q3_scenario(bench_scale()).expect("q3 scenario");
    sc.load_col_changes(frac).expect("changes");
    sc
}

/// The Experiment 2 scenario (all bases + Q5) at bench scale, 10% deletions.
pub fn q5_with_changes(frac: f64) -> TpcdScenario {
    let mut sc = uww::scenario::q5_scenario(bench_scale()).expect("q5 scenario");
    sc.load_paper_changes(frac).expect("changes");
    sc
}

/// The Experiment 4 scenario (Figure 4 warehouse) at bench scale.
pub fn figure4_with_changes(frac: f64) -> TpcdScenario {
    let mut sc = uww::scenario::figure4_scenario(bench_scale()).expect("figure4 scenario");
    sc.load_paper_changes(frac).expect("changes");
    sc
}

/// MinWorkSingle for the scenario's single summary view, completed into a
/// VDAG strategy.
pub fn minwork_single_strategy(sc: &TpcdScenario) -> Strategy {
    let g = sc.warehouse.vdag();
    let view = g
        .derived_views()
        .into_iter()
        .next()
        .expect("a summary view");
    let sizes = SizeCatalog::estimate(&sc.warehouse).expect("sizes");
    sc.complete_strategy(&min_work_single(g, view, &sizes))
}

/// A short human label for a view strategy's comp grouping, e.g.
/// `"{L} {O} {C}"`.
pub fn grouping_label(sc: &TpcdScenario, s: &Strategy) -> String {
    let g = sc.warehouse.vdag();
    s.exprs
        .iter()
        .filter_map(|e| match e {
            UpdateExpr::Comp { over, .. } => Some(format!(
                "{{{}}}",
                over.iter()
                    .map(|v| g.name(*v).chars().next().unwrap_or('?').to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )),
            _ => None,
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Classification of a strategy by its comp grouping.
pub fn strategy_kind(s: &Strategy, n_sources: usize) -> &'static str {
    let sizes: Vec<usize> = s
        .exprs
        .iter()
        .filter_map(|e| match e {
            UpdateExpr::Comp { over, .. } => Some(over.len()),
            _ => None,
        })
        .collect();
    if sizes.len() == 1 && sizes[0] == n_sources {
        "dual-stage"
    } else if sizes.iter().all(|&k| k == 1) {
        "1-way"
    } else if sizes.contains(&2) && sizes.iter().all(|&k| k <= 2) {
        "2-way"
    } else {
        "mixed"
    }
}

/// One measured row of a report.
#[derive(Clone, Debug)]
pub struct ReportRow {
    /// Strategy label.
    pub label: String,
    /// Strategy kind.
    pub kind: String,
    /// Predicted work under the linear metric.
    pub predicted: f64,
    /// Measured rows scanned + installed.
    pub measured: u64,
    /// Wall-clock update window.
    pub wall_ms: f64,
}

/// Measures a labelled strategy (verifying the final state) into a row.
pub fn measure(
    sc: &TpcdScenario,
    model: &CostModel<'_>,
    label: &str,
    kind: &str,
    s: &Strategy,
) -> ReportRow {
    let report = sc.run(s).expect("strategy execution");
    ReportRow {
        label: label.to_string(),
        kind: kind.to_string(),
        predicted: model.strategy_work(s),
        measured: report.linear_work(),
        wall_ms: report.wall().as_secs_f64() * 1e3,
    }
}

/// Prints a report table with a trailing best/worst summary.
pub fn print_rows(title: &str, paper_note: &str, mut rows: Vec<ReportRow>) {
    println!("== {title} ==");
    println!("   paper: {paper_note}");
    rows.sort_by_key(|r| r.measured);
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>10}",
        "strategy", "kind", "predicted", "measured", "wall(ms)"
    );
    for r in &rows {
        println!(
            "{:<28} {:>10} {:>12.0} {:>12} {:>10.2}",
            r.label, r.kind, r.predicted, r.measured, r.wall_ms
        );
    }
    if let (Some(best), Some(worst)) = (rows.first(), rows.last()) {
        println!(
            "-> worst/best measured ratio: {:.2}x ({} vs {})\n",
            worst.measured as f64 / best.measured as f64,
            worst.label,
            best.label
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_positive() {
        assert!(bench_scale() > 0.0);
    }

    #[test]
    fn kind_classification() {
        let sc = q3_with_changes(0.05);
        let g = sc.warehouse.vdag();
        let q3 = g.id_of("Q3").unwrap();
        let all = uww::vdag::view_strategies(g, q3);
        let kinds: Vec<&str> = all.iter().map(|s| strategy_kind(s, 3)).collect();
        assert_eq!(kinds.iter().filter(|k| **k == "1-way").count(), 6);
        assert_eq!(kinds.iter().filter(|k| **k == "dual-stage").count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == "2-way").count(), 6);
    }

    #[test]
    fn grouping_labels_readable() {
        let sc = q3_with_changes(0.05);
        let s = minwork_single_strategy(&sc);
        let label = grouping_label(&sc, &s);
        assert!(label.contains('{') && label.contains('}'));
    }

    #[test]
    fn measure_round_trip() {
        let sc = q3_with_changes(0.05);
        let sizes = SizeCatalog::estimate(&sc.warehouse).unwrap();
        let model = CostModel::new(sc.warehouse.vdag(), &sizes);
        let s = minwork_single_strategy(&sc);
        let row = measure(&sc, &model, "mws", "1-way", &s);
        assert!(row.measured > 0);
        assert!(row.predicted > 0.0);
    }
}
