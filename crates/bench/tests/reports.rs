//! The report binaries must run green end-to-end (each asserts its own
//! reproduction claims internally). Scale is pinned tiny via `UWW_SCALE` so
//! the whole sweep stays fast.

use std::process::Command;

fn run(bin: &str) -> (bool, String) {
    let out = Command::new(bin)
        .env("UWW_SCALE", "0.0004")
        .output()
        .unwrap_or_else(|e| panic!("launch {bin}: {e}"));
    (
        out.status.success(),
        format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        ),
    )
}

#[test]
fn table1_reproduces_exactly() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_report_table1"));
    assert!(ok, "{out}");
    assert!(out.contains("Table 1 REPRODUCED"), "{out}");
    assert!(out.contains("4683"));
}

#[test]
fn fig12_reports_thirteen_classes() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_report_fig12"));
    assert!(ok, "{out}");
    assert!(out.contains("MinWorkSingle"), "{out}");
    assert!(out.contains("dual-stage"), "{out}");
    // 13 strategy rows below the header (the trailing summary line also
    // mentions groupings; exclude it).
    let rows = out
        .lines()
        .filter(|l| l.contains('{') && l.contains('}') && !l.starts_with("->"))
        .count();
    assert_eq!(rows, 13, "{out}");
}

#[test]
fn fig13_shows_the_fanin_gap() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_report_fig13"));
    assert!(ok, "{out}");
    assert!(out.contains("worst/best measured ratio"), "{out}");
}

#[test]
fn fig14_asserts_the_sweep_ordering() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_report_fig14"));
    assert!(ok, "{out}");
    assert!(out.contains("Figure 14 REPRODUCED"), "{out}");
}

#[test]
fn fig15_includes_the_metric_ablation() {
    let (ok, out) = run(env!("CARGO_BIN_EXE_report_fig15"));
    assert!(ok, "{out}");
    assert!(out.contains("RNSCOL"), "{out}");
    assert!(out.contains("the variant ranks dual-stage BEST"), "{out}");
}

#[test]
fn discussion_and_extension_reports_run() {
    for bin in [
        env!("CARGO_BIN_EXE_report_olap"),
        env!("CARGO_BIN_EXE_report_parallel"),
        env!("CARGO_BIN_EXE_report_policies"),
        env!("CARGO_BIN_EXE_report_design"),
    ] {
        let (ok, out) = run(bin);
        assert!(ok, "{bin}: {out}");
    }
}
