//! Cost-model calibration: from work units to wall-clock seconds.
//!
//! The linear work metric predicts *rows touched*; real planners want
//! seconds. The proportionality constants `c` (per scanned row) and `i`
//! (per installed row) of Definition 3.5 are hardware- and engine-specific,
//! so we measure them the way commercial optimizers do: micro-probes against
//! the live warehouse. A calibrated [`CostModel`] then predicts update
//! windows in seconds.

use crate::cost::CostModel;
use crate::engine::Warehouse;
use crate::error::{CoreError, CoreResult};
use crate::sizes::SizeCatalog;
use std::time::Instant;
use uww_relational::ops;
use uww_relational::{DeltaRelation, WorkMeter};
use uww_vdag::Vdag;

/// Measured per-row costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// Seconds per operand row scanned (the metric's `c`).
    pub scan_secs_per_row: f64,
    /// Seconds per row installed (the metric's `i`).
    pub install_secs_per_row: f64,
}

impl Calibration {
    /// Builds a [`CostModel`] whose work estimates are in seconds.
    pub fn model<'a>(&self, g: &'a Vdag, sizes: &'a SizeCatalog) -> CostModel<'a> {
        let mut m = CostModel::new(g, sizes);
        m.comp_coeff = self.scan_secs_per_row;
        m.inst_coeff = self.install_secs_per_row;
        m
    }
}

/// Probes the warehouse: times repeated scans of its largest table and
/// repeated installs of a cancelling delta, and derives per-row costs.
///
/// The probes are side-effect free: the install probe applies a delta and
/// immediately applies its inverse, leaving the table unchanged.
pub fn calibrate(warehouse: &Warehouse) -> CoreResult<Calibration> {
    // Largest table: the most stable per-row signal.
    let table = warehouse
        .state()
        .iter()
        .max_by_key(|t| t.len())
        .ok_or_else(|| CoreError::Warehouse("empty warehouse".to_string()))?;
    if table.is_empty() {
        return Err(CoreError::Warehouse(
            "cannot calibrate against empty tables".to_string(),
        ));
    }

    // Scan probe.
    const SCAN_REPS: u32 = 5;
    let mut meter = WorkMeter::new();
    let t0 = Instant::now();
    for _ in 0..SCAN_REPS {
        let rows = ops::scan_table(table, &mut meter);
        std::hint::black_box(&rows);
    }
    let scan_secs = t0.elapsed().as_secs_f64();
    let scan_rows = (table.len() * SCAN_REPS as u64).max(1);

    // Install probe: delete up to 1000 rows, then re-insert them.
    let mut forward = DeltaRelation::new(table.schema().clone());
    let mut backward = DeltaRelation::new(table.schema().clone());
    for (row, m) in table.sorted_rows().into_iter().take(1000) {
        forward.add(row.clone(), -(m as i64));
        backward.add(row, m as i64);
    }
    let mut scratch = table.clone();
    let t0 = Instant::now();
    scratch.install(&forward).map_err(CoreError::Rel)?;
    scratch.install(&backward).map_err(CoreError::Rel)?;
    let install_secs = t0.elapsed().as_secs_f64();
    let install_rows = (forward.len() + backward.len()).max(1);
    debug_assert!(scratch.same_contents(table));

    Ok(Calibration {
        scan_secs_per_row: (scan_secs / scan_rows as f64).max(1e-12),
        install_secs_per_row: (install_secs / install_rows as f64).max(1e-12),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::min_work;
    use std::collections::BTreeMap;
    use uww_relational::{tup, Schema, Table, Value, ValueType};

    fn warehouse() -> Warehouse {
        let mut r = Table::new("R", Schema::of(&[("k", ValueType::Int)]));
        for i in 0..5000 {
            r.insert(tup![Value::Int(i)]).unwrap();
        }
        let mut s = Table::new("S", Schema::of(&[("k", ValueType::Int)]));
        for i in 0..500 {
            s.insert(tup![Value::Int(i)]).unwrap();
        }
        let def = uww_relational::ViewDef {
            name: "V".into(),
            sources: vec![
                uww_relational::ViewSource::named("R"),
                uww_relational::ViewSource::named("S"),
            ],
            joins: vec![uww_relational::EquiJoin::new("R.k", "S.k")],
            filters: vec![],
            output: uww_relational::ViewOutput::Project(vec![uww_relational::OutputColumn::col(
                "k", "R.k",
            )]),
        };
        Warehouse::builder()
            .base_table(r)
            .base_table(s)
            .view(def)
            .build()
            .unwrap()
    }

    #[test]
    fn calibration_yields_positive_rates() {
        let w = warehouse();
        let cal = calibrate(&w).unwrap();
        assert!(cal.scan_secs_per_row > 0.0);
        assert!(cal.install_secs_per_row > 0.0);
        // Both should be sub-millisecond per row on any machine.
        assert!(cal.scan_secs_per_row < 1e-3);
        assert!(cal.install_secs_per_row < 1e-3);
    }

    #[test]
    fn calibrated_model_predicts_seconds_and_preserves_ranking() {
        let mut w = warehouse();
        let mut d = DeltaRelation::new(w.table("R").unwrap().schema().clone());
        for i in 0..500 {
            d.add(tup![Value::Int(i)], -1);
        }
        let mut changes = BTreeMap::new();
        changes.insert("R".to_string(), d);
        w.load_changes(changes).unwrap();

        let cal = calibrate(&w).unwrap();
        let sizes = SizeCatalog::estimate(&w).unwrap();
        let model = cal.model(w.vdag(), &sizes);
        let plan = min_work(w.vdag(), &sizes).unwrap();
        let dual = uww_vdag::dual_stage_strategy(w.vdag());

        let p_minwork = model.strategy_work(&plan.strategy);
        let p_dual = model.strategy_work(&dual);
        assert!(p_minwork > 0.0);
        // Seconds-scale sanity: far below an hour for thousands of rows.
        assert!(p_minwork < 3600.0);
        // Calibration rescales but never reorders (both coefficients > 0).
        assert!(p_minwork <= p_dual);
    }

    #[test]
    fn probes_leave_warehouse_unchanged() {
        let w = warehouse();
        let before = w.table("R").unwrap().clone();
        let _ = calibrate(&w).unwrap();
        assert!(w.table("R").unwrap().same_contents(&before));
    }

    #[test]
    fn empty_warehouse_rejected() {
        let w = Warehouse::builder()
            .base_table(Table::new("E", Schema::of(&[("k", ValueType::Int)])))
            .build()
            .unwrap();
        assert!(calibrate(&w).is_err());
    }
}
