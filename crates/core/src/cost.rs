//! The linear work metric (Definition 3.5) as a predictive cost model.
//!
//! `Work(Inst(V)) = i · |ΔV|`. `Work(Comp(W, Y))` sums, over the
//! `2^|Y| − 1` terms, `c ·` (sizes of the term's operands): the delta forms
//! of the term's subset plus the *current stored* forms of every other
//! source of `W` — pre-install or post-install sizes depending on which
//! `Inst` expressions precede the term in the strategy. The model therefore
//! simulates installed-state as it walks a strategy, which is exactly why
//! `Work(Ei)` "depends on the expressions that precede `Ei`" (Section 3.3).
//!
//! [`CostMetric::OperandsOnce`] is the deliberately broken variant the
//! paper's Experiment-4 discussion dismantles: it counts each operand once
//! instead of once per term, which wrongly crowns the dual-stage strategy.

use crate::sizes::SizeCatalog;
use std::collections::HashSet;
use uww_vdag::{Strategy, UpdateExpr, Vdag, ViewId};

/// Which work metric to apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CostMetric {
    /// The paper's linear work metric (per-term operand sums).
    #[default]
    Linear,
    /// The flawed "sum each operand once" variant from the Section 7
    /// discussion.
    OperandsOnce,
}

/// A cost model over one VDAG and one set of size estimates.
#[derive(Clone, Debug)]
pub struct CostModel<'a> {
    g: &'a Vdag,
    sizes: &'a SizeCatalog,
    /// Proportionality constant for `Comp` terms (the paper's `c`).
    pub comp_coeff: f64,
    /// Proportionality constant for `Inst` (the paper's `i`).
    pub inst_coeff: f64,
    /// Metric variant.
    pub metric: CostMetric,
}

impl<'a> CostModel<'a> {
    /// Linear metric with `c = i = 1`.
    pub fn new(g: &'a Vdag, sizes: &'a SizeCatalog) -> Self {
        CostModel {
            g,
            sizes,
            comp_coeff: 1.0,
            inst_coeff: 1.0,
            metric: CostMetric::Linear,
        }
    }

    /// Same, with the flawed metric variant.
    pub fn with_metric(g: &'a Vdag, sizes: &'a SizeCatalog, metric: CostMetric) -> Self {
        CostModel {
            metric,
            ..CostModel::new(g, sizes)
        }
    }

    /// The sizes in use.
    pub fn sizes(&self) -> &SizeCatalog {
        self.sizes
    }

    /// Prices an intra-`Comp` sharing opportunity under the linear metric
    /// (Definition 3.5): an operand of `rows` filtered rows that `occurrences`
    /// keyed join steps build a hash table over costs `c · rows` per build, so
    /// interning the table saves `c · rows · (occurrences − 1)` work units —
    /// the builds avoided by reuse.
    pub fn share_saving(&self, rows: u64, occurrences: u64) -> f64 {
        self.comp_coeff * rows as f64 * occurrences.saturating_sub(1) as f64
    }

    /// Prices a *cross*-expression sharing opportunity (strategy-scope
    /// cache): a `Comp` that probes a table published by an earlier
    /// expression avoids one `c · rows` hash build per consumed key. The
    /// publisher pays nothing extra under the linear metric — a keyed join
    /// charges build + probe over both sides whichever side is built — so
    /// the saving is the whole of it. `rows` is the total filtered rows of
    /// the consumed keys
    /// ([`StrategySharingPlan::cross_saved_rows`](crate::engine::StrategySharingPlan::cross_saved_rows)).
    pub fn cross_share_saving(&self, rows: u64) -> f64 {
        self.comp_coeff * rows as f64
    }

    /// Total predicted work of a strategy.
    pub fn strategy_work(&self, s: &Strategy) -> f64 {
        self.per_expression_work(s).into_iter().sum()
    }

    /// Predicted work per expression, in strategy order.
    pub fn per_expression_work(&self, s: &Strategy) -> Vec<f64> {
        let mut installed: HashSet<ViewId> = HashSet::new();
        let mut out = Vec::with_capacity(s.len());
        for e in &s.exprs {
            out.push(self.expression_work(e, &installed));
            if let UpdateExpr::Inst(v) = e {
                installed.insert(*v);
            }
        }
        out
    }

    /// Predicted work of one expression given the set of already-installed
    /// views.
    pub fn expression_work(&self, e: &UpdateExpr, installed: &HashSet<ViewId>) -> f64 {
        match e {
            UpdateExpr::Inst(v) => self.inst_coeff * self.sizes.delta(*v),
            UpdateExpr::Comp { view, over } => {
                let over: Vec<ViewId> = over.iter().copied().collect();
                match self.metric {
                    CostMetric::Linear => self.comp_linear(*view, &over, installed),
                    CostMetric::OperandsOnce => self.comp_once(*view, &over, installed),
                }
            }
        }
    }

    fn state_size(&self, v: ViewId, installed: &HashSet<ViewId>) -> f64 {
        self.sizes.state_size(v, installed.contains(&v))
    }

    /// Linear metric: one term per non-empty subset `D` of `over`, each
    /// charging `Σ_{v∈D} |Δv| + Σ_{u∈sources∖D} |u|`. Subsets containing a
    /// view with an empty delta are skipped — mirroring the engine (and the
    /// paper's footnote 5): such terms produce nothing and cost nothing.
    fn comp_linear(&self, view: ViewId, over: &[ViewId], installed: &HashSet<ViewId>) -> f64 {
        let sources = self.g.sources(view);
        let changed: Vec<ViewId> = over
            .iter()
            .copied()
            .filter(|v| self.sizes.delta(*v) > 0.0)
            .collect();
        let k = changed.len();
        if k == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for mask in 1u32..(1u32 << k) {
            let mut term = 0.0;
            for (i, v) in changed.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    term += self.sizes.delta(*v);
                }
            }
            for u in sources {
                let in_delta_role = changed
                    .iter()
                    .enumerate()
                    .any(|(i, v)| v == u && mask & (1 << i) != 0);
                if !in_delta_role {
                    term += self.state_size(*u, installed);
                }
            }
            total += self.comp_coeff * term;
        }
        total
    }

    /// Flawed variant: each operand counted once across the whole `Comp`.
    /// Deltas of the (changed) propagated views, plus the current size of
    /// every source that appears in *some* term in non-delta form.
    fn comp_once(&self, view: ViewId, over: &[ViewId], installed: &HashSet<ViewId>) -> f64 {
        let sources = self.g.sources(view);
        let changed: Vec<ViewId> = over
            .iter()
            .copied()
            .filter(|v| self.sizes.delta(*v) > 0.0)
            .collect();
        if changed.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for v in &changed {
            total += self.sizes.delta(*v);
        }
        for u in sources {
            let only_ever_delta = changed.len() == 1 && changed[0] == *u;
            if !only_ever_delta {
                total += self.state_size(*u, installed);
            }
        }
        self.comp_coeff * total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::SizeInfo;
    use uww_vdag::{Strategy, Vdag};

    /// Example 3.2's setting: V4 = Π(V2 ⋈ V3).
    fn setup() -> (Vdag, SizeCatalog) {
        let mut g = Vdag::new();
        let v2 = g.add_base("V2").unwrap();
        let v3 = g.add_base("V3").unwrap();
        g.add_derived("V4", &[v2, v3]).unwrap();
        let mut sizes = SizeCatalog::default();
        sizes.set(
            v2,
            SizeInfo {
                pre: 100.0,
                post: 90.0,
                delta: 10.0,
            },
        );
        sizes.set(
            v3,
            SizeInfo {
                pre: 200.0,
                post: 180.0,
                delta: 20.0,
            },
        );
        sizes.set(
            ViewId(2),
            SizeInfo {
                pre: 50.0,
                post: 45.0,
                delta: 5.0,
            },
        );
        (g, sizes)
    }

    #[test]
    fn example_3_2_work_estimates() {
        let (g, sizes) = setup();
        let model = CostModel::new(&g, &sizes);
        let v4 = g.id_of("V4").unwrap();
        let v2 = g.id_of("V2").unwrap();
        let v3 = g.id_of("V3").unwrap();
        let installed = HashSet::new();

        // Comp(V4, {V2}) has one term: c·(|ΔV2| + |V3|) = 10 + 200.
        let w = model.expression_work(&UpdateExpr::comp1(v4, v2), &installed);
        assert_eq!(w, 210.0);

        // Comp(V4, {V2,V3}): (|ΔV2|+|V3|) + (|ΔV3|+|V2|) + (|ΔV2|+|ΔV3|)
        //                  = (10+200) + (20+100) + (10+20) = 360.
        let w = model.expression_work(&UpdateExpr::comp(v4, [v2, v3]), &installed);
        assert_eq!(w, 360.0);

        // Inst(V4) = i·|ΔV4| = 5.
        let w = model.expression_work(&UpdateExpr::inst(v4), &installed);
        assert_eq!(w, 5.0);
    }

    #[test]
    fn install_state_changes_later_comp_costs() {
        let (g, sizes) = setup();
        let model = CostModel::new(&g, &sizes);
        let v4 = g.id_of("V4").unwrap();
        let v2 = g.id_of("V2").unwrap();
        let v3 = g.id_of("V3").unwrap();

        // Propagate V3 first, install it, then propagate V2: the second comp
        // sees V3' (180) instead of V3 (200).
        let s = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v4, v3),
            UpdateExpr::inst(v3),
            UpdateExpr::comp1(v4, v2),
            UpdateExpr::inst(v2),
            UpdateExpr::inst(v4),
        ]);
        let per = model.per_expression_work(&s);
        assert_eq!(per[0], 20.0 + 100.0); // ΔV3 + V2
        assert_eq!(per[1], 20.0);
        assert_eq!(per[2], 10.0 + 180.0); // ΔV2 + V3'
        assert_eq!(model.strategy_work(&s), 120.0 + 20.0 + 190.0 + 10.0 + 5.0);

        // The reverse order sees V2' (90) for the V3 comp: shrinking views
        // favour installing the biggest shrinker first.
        let s2 = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v4, v2),
            UpdateExpr::inst(v2),
            UpdateExpr::comp1(v4, v3),
            UpdateExpr::inst(v3),
            UpdateExpr::inst(v4),
        ]);
        // V3 shrinks more in absolute terms (-20 < -10), so propagating V3
        // first (s) must win under the metric.
        assert!(model.strategy_work(&s) < model.strategy_work(&s2));
    }

    #[test]
    fn empty_delta_subsets_cost_nothing() {
        let (g, mut sizes) = setup();
        let v2 = g.id_of("V2").unwrap();
        sizes.set(
            v2,
            SizeInfo {
                pre: 100.0,
                post: 100.0,
                delta: 0.0,
            },
        );
        let model = CostModel::new(&g, &sizes);
        let v4 = g.id_of("V4").unwrap();
        let v3 = g.id_of("V3").unwrap();
        let installed = HashSet::new();
        // Only the {V3} term survives: ΔV3 + V2 = 20 + 100.
        let w = model.expression_work(&UpdateExpr::comp(v4, [v2, v3]), &installed);
        assert_eq!(w, 120.0);
        // Comp over just the unchanged view costs nothing.
        let w = model.expression_work(&UpdateExpr::comp1(v4, v2), &installed);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn operands_once_matches_paper_example() {
        // Section 7 discussion: under the variant metric the estimate for
        // Comp(V4, {V2,V3}) is c·(|ΔV2|+|V2|+|ΔV3|+|V3|).
        let (g, sizes) = setup();
        let model = CostModel::with_metric(&g, &sizes, CostMetric::OperandsOnce);
        let v4 = g.id_of("V4").unwrap();
        let v2 = g.id_of("V2").unwrap();
        let v3 = g.id_of("V3").unwrap();
        let installed = HashSet::new();
        let w = model.expression_work(&UpdateExpr::comp(v4, [v2, v3]), &installed);
        assert_eq!(w, 10.0 + 100.0 + 20.0 + 200.0);
        // For a 1-way comp the non-delta form of the propagated view never
        // appears: c·(|ΔV2| + |V3|).
        let w = model.expression_work(&UpdateExpr::comp1(v4, v2), &installed);
        assert_eq!(w, 10.0 + 200.0);
    }

    #[test]
    fn variant_metric_prefers_dual_stage() {
        // The paper: "Under this work metric, the dual-stage VDAG strategy
        // would be best" — with ≥3 sources, a 1-way strategy rescans each
        // other source in every Comp, while the variant charges the
        // dual-stage Comp for each operand only once. (With exactly 2
        // sources the two coincide, which is why the paper's point shows on
        // the 3-way Q3 and 6-way Q5.)
        let mut g = Vdag::new();
        let b: Vec<ViewId> = (0..3)
            .map(|i| g.add_base(format!("B{i}")).unwrap())
            .collect();
        let v = g.add_derived("V", &b).unwrap();
        let mut sizes = SizeCatalog::default();
        for (i, id) in b.iter().enumerate() {
            let pre = 100.0 * (i + 1) as f64;
            sizes.set(
                *id,
                SizeInfo {
                    pre,
                    post: pre * 0.9,
                    delta: pre * 0.1,
                },
            );
        }
        sizes.set(
            v,
            SizeInfo {
                pre: 50.0,
                post: 45.0,
                delta: 5.0,
            },
        );

        let model = CostModel::with_metric(&g, &sizes, CostMetric::OperandsOnce);
        let dual = Strategy::from_exprs(vec![
            UpdateExpr::comp(v, b.iter().copied()),
            UpdateExpr::inst(b[0]),
            UpdateExpr::inst(b[1]),
            UpdateExpr::inst(b[2]),
            UpdateExpr::inst(v),
        ]);
        let one_way = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v, b[2]),
            UpdateExpr::inst(b[2]),
            UpdateExpr::comp1(v, b[1]),
            UpdateExpr::inst(b[1]),
            UpdateExpr::comp1(v, b[0]),
            UpdateExpr::inst(b[0]),
            UpdateExpr::inst(v),
        ]);
        assert!(model.strategy_work(&dual) < model.strategy_work(&one_way));
        // Under the real metric the ranking flips: 1-way wins.
        let linear = CostModel::new(&g, &sizes);
        assert!(linear.strategy_work(&one_way) < linear.strategy_work(&dual));
    }

    #[test]
    fn coefficients_scale() {
        let (g, sizes) = setup();
        let mut model = CostModel::new(&g, &sizes);
        model.inst_coeff = 2.0;
        let v2 = g.id_of("V2").unwrap();
        let w = model.expression_work(&UpdateExpr::inst(v2), &HashSet::new());
        assert_eq!(w, 20.0);
    }
}
