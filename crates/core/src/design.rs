//! Warehouse design: choosing which summary tables to materialize.
//!
//! The paper's Section 8 positions its planners as *complementary* to the
//! view-selection literature (\[HRU96\], \[Gup97\]): "a design algorithm picks
//! the set of views to materialize; the algorithms we present are then used
//! to update the views." This module closes that loop with an HRU-style
//! greedy selector whose **maintenance cost is computed by actually planning
//! the update with MinWork** — so the design decision sees the same cost
//! model the update windows will.
//!
//! Benefit model (classic): answering a query from a materialized view
//! scans `|V|` rows; answering it from the base tables scans the view's
//! source extents. `benefit(V) = frequency × (Σ|sources| − |V|)`, clamped
//! at zero.

use crate::engine::Warehouse;
use crate::error::{CoreError, CoreResult};
use crate::planner::min_work;
use crate::sizes::SizeCatalog;
use std::collections::BTreeMap;
use uww_relational::{DeltaRelation, Table, ViewDef};

/// A candidate summary table.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The view definition.
    pub def: ViewDef,
    /// Relative query frequency (queries per update window).
    pub query_frequency: f64,
}

/// The selected design.
#[derive(Clone, Debug)]
pub struct DesignOutcome {
    /// Names of the selected views, in selection order.
    pub selected: Vec<String>,
    /// Predicted per-window maintenance work of the final design.
    pub maintenance_work: f64,
    /// Total per-window query benefit of the final design.
    pub query_benefit: f64,
    /// Per-step log: `(view, benefit gained, maintenance work after)`.
    pub steps: Vec<(String, f64, f64)>,
}

/// A function producing the representative change batch for a given
/// warehouse state (e.g. the paper's 10% deletions).
pub type BatchGenerator<'a> = dyn Fn(&Warehouse) -> BTreeMap<String, DeltaRelation> + 'a;

/// Greedy view selection under a maintenance-work budget.
///
/// Starting from no summary tables, repeatedly materializes the candidate
/// with the highest `benefit / Δmaintenance` ratio whose addition keeps the
/// MinWork-planned window within `maintenance_budget`. Stops when no
/// candidate fits or none has positive benefit.
pub fn greedy_select(
    base_tables: &[Table],
    candidates: &[Candidate],
    maintenance_budget: f64,
    batch_gen: &BatchGenerator<'_>,
) -> CoreResult<DesignOutcome> {
    let mut selected: Vec<ViewDef> = Vec::new();
    let mut selected_names: Vec<String> = Vec::new();
    let mut steps = Vec::new();

    let mut current_cost = maintenance_cost(base_tables, &selected, batch_gen)?;
    let mut total_benefit = 0.0;

    loop {
        let mut best: Option<(usize, f64, f64, f64)> = None; // (idx, benefit, new_cost, ratio)
        for (i, cand) in candidates.iter().enumerate() {
            if selected_names.contains(&cand.def.name) {
                continue;
            }
            let benefit = candidate_benefit(base_tables, &selected, cand)?;
            if benefit <= 0.0 {
                continue;
            }
            let mut trial = selected.clone();
            trial.push(cand.def.clone());
            let new_cost = maintenance_cost(base_tables, &trial, batch_gen)?;
            if new_cost > maintenance_budget {
                continue;
            }
            let delta_cost = (new_cost - current_cost).max(1e-9);
            let ratio = benefit / delta_cost;
            if best.is_none_or(|(_, _, _, r)| ratio > r) {
                best = Some((i, benefit, new_cost, ratio));
            }
        }
        let Some((idx, benefit, new_cost, _)) = best else {
            break;
        };
        let name = candidates[idx].def.name.clone();
        selected.push(candidates[idx].def.clone());
        selected_names.push(name.clone());
        total_benefit += benefit;
        current_cost = new_cost;
        steps.push((name, benefit, new_cost));
    }

    Ok(DesignOutcome {
        selected: selected_names,
        maintenance_work: current_cost,
        query_benefit: total_benefit,
        steps,
    })
}

/// Per-window maintenance work of a design: build the warehouse, load the
/// representative batch, plan with MinWork, and cost the plan.
fn maintenance_cost(
    base_tables: &[Table],
    views: &[ViewDef],
    batch_gen: &BatchGenerator<'_>,
) -> CoreResult<f64> {
    let mut w = build(base_tables, views)?;
    let changes = batch_gen(&w);
    w.load_changes(changes)?;
    let sizes = SizeCatalog::estimate(&w)?;
    if views.is_empty() {
        // No summary tables: only the base installs happen.
        let g = w.vdag();
        return Ok(g.view_ids().map(|v| sizes.delta(v)).sum());
    }
    let plan = min_work(w.vdag(), &sizes)?;
    let model = crate::cost::CostModel::new(w.vdag(), &sizes);
    Ok(model.strategy_work(&plan.strategy))
}

/// `frequency × max(0, Σ|sources| − |V|)` against the current design.
fn candidate_benefit(
    base_tables: &[Table],
    views: &[ViewDef],
    cand: &Candidate,
) -> CoreResult<f64> {
    let mut trial = views.to_vec();
    trial.push(cand.def.clone());
    let w = build(base_tables, &trial)?;
    let from_scratch: f64 = cand
        .def
        .source_views()
        .iter()
        .map(|s| w.table(s).map(|t| t.len() as f64).unwrap_or(0.0))
        .sum();
    let materialized = w
        .table(&cand.def.name)
        .map(|t| t.len() as f64)
        .map_err(|e| CoreError::Warehouse(format!("candidate failed to build: {e}")))?;
    Ok(cand.query_frequency * (from_scratch - materialized).max(0.0))
}

fn build(base_tables: &[Table], views: &[ViewDef]) -> CoreResult<Warehouse> {
    let mut b = Warehouse::builder();
    for t in base_tables {
        b = b.base_table(t.clone());
    }
    for v in views {
        b = b.view(v.clone());
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_relational::{
        tup, AggFunc, AggregateColumn, OutputColumn, Predicate, ScalarExpr, Schema, Value,
        ValueType, ViewOutput, ViewSource,
    };

    fn base() -> Vec<Table> {
        let mut r = Table::new(
            "R",
            Schema::of(&[("k", ValueType::Int), ("g", ValueType::Int)]),
        );
        for i in 0..1000 {
            r.insert(tup![Value::Int(i), Value::Int(i % 10)]).unwrap();
        }
        vec![r]
    }

    fn agg_candidate(name: &str, freq: f64) -> Candidate {
        Candidate {
            def: ViewDef {
                name: name.into(),
                sources: vec![ViewSource::named("R")],
                joins: vec![],
                filters: vec![],
                output: ViewOutput::Aggregate {
                    group_by: vec![OutputColumn::col("g", "R.g")],
                    aggregates: vec![AggregateColumn {
                        name: "n".into(),
                        func: AggFunc::Count,
                        input: ScalarExpr::col("R.k"),
                    }],
                },
            },
            query_frequency: freq,
        }
    }

    fn wide_candidate(freq: f64) -> Candidate {
        // A barely-reducing projection: low benefit, high maintenance.
        Candidate {
            def: ViewDef {
                name: "WIDE".into(),
                sources: vec![ViewSource::named("R")],
                joins: vec![],
                filters: vec![Predicate::col_ge("R.k", Value::Int(1))],
                output: ViewOutput::Project(vec![
                    OutputColumn::col("k", "R.k"),
                    OutputColumn::col("g", "R.g"),
                ]),
            },
            query_frequency: freq,
        }
    }

    fn deletion_batch(w: &Warehouse) -> BTreeMap<String, DeltaRelation> {
        let t = w.table("R").unwrap();
        let mut d = DeltaRelation::new(t.schema().clone());
        for (i, (row, m)) in t.sorted_rows().into_iter().enumerate() {
            if i % 10 == 0 {
                d.add(row, -(m as i64));
            }
        }
        let mut out = BTreeMap::new();
        out.insert("R".to_string(), d);
        out
    }

    #[test]
    fn selects_high_benefit_views_within_budget() {
        let candidates = vec![agg_candidate("SUMMARY", 10.0), wide_candidate(0.1)];
        let out = greedy_select(&base(), &candidates, 1e7, &deletion_batch).unwrap();
        // The tight aggregate (1000 -> 10 rows, frequency 10) is picked first.
        assert_eq!(out.selected[0], "SUMMARY");
        assert!(out.query_benefit > 0.0);
        assert!(out.maintenance_work > 0.0);
        assert_eq!(out.steps.len(), out.selected.len());
    }

    #[test]
    fn tight_budget_selects_nothing_or_cheapest() {
        let candidates = vec![agg_candidate("SUMMARY", 10.0)];
        // A budget below even the base installs: nothing fits.
        let out = greedy_select(&base(), &candidates, 0.0, &deletion_batch).unwrap();
        assert!(out.selected.is_empty());
        assert_eq!(out.query_benefit, 0.0);
    }

    #[test]
    fn budget_monotonicity() {
        let candidates = vec![
            agg_candidate("S1", 5.0),
            agg_candidate("S2", 4.0),
            wide_candidate(2.0),
        ];
        let small = greedy_select(&base(), &candidates, 3000.0, &deletion_batch).unwrap();
        let large = greedy_select(&base(), &candidates, 1e9, &deletion_batch).unwrap();
        assert!(small.selected.len() <= large.selected.len());
        assert!(small.query_benefit <= large.query_benefit + 1e-9);
        // With an unbounded budget every positive-benefit candidate is in.
        assert_eq!(large.selected.len(), 3);
    }

    #[test]
    fn zero_frequency_views_never_selected() {
        let candidates = vec![agg_candidate("S1", 0.0)];
        let out = greedy_select(&base(), &candidates, 1e9, &deletion_batch).unwrap();
        assert!(out.selected.is_empty());
    }
}
