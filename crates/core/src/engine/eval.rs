//! Maintenance-term evaluation (the paper's term-execution model).
//!
//! `Comp(W, Y)` expands into `2^|Y| − 1` terms; each term is a standalone
//! select-project-join evaluation whose operands are the *delta* forms of a
//! non-empty subset of `Y` and the *current stored* forms of every other
//! source of `W` (Section 3.3). This module evaluates one term: it pulls
//! each operand exactly once (charging the work meter for the full scan),
//! pushes single-source filters below the joins, greedily hash-joins
//! starting from the smallest operand (deltas are small, so they anchor the
//! join order), and applies residual filters at the end.

use std::collections::BTreeSet;
use uww_relational::ops::{self, SignedRows};
use uww_relational::{
    AggFunc, BoundExpr, Predicate, RelError, RelResult, Schema, ValueType, ViewDef, ViewOutput,
    WorkMeter,
};

/// Evaluates one maintenance term of `def`.
///
/// * `schema_of(view)` returns the stored schema of a source view.
/// * `operand(view)` returns the term operand for that source — the caller
///   decides per source whether that is the stored extent or the delta, and
///   charges the meter for the scan.
///
/// Returns the joined rows together with their qualified schema (column
/// order depends on the chosen join order; downstream expressions bind by
/// name, so the order is irrelevant).
pub fn eval_term(
    def: &ViewDef,
    mut schema_of: impl FnMut(&str) -> RelResult<Schema>,
    mut operand: impl FnMut(&str) -> RelResult<SignedRows>,
    meter: &mut WorkMeter,
) -> RelResult<(Schema, SignedRows)> {
    meter.term();
    let n = def.sources.len();

    // Qualified per-source schemas.
    let mut qschemas = Vec::with_capacity(n);
    for s in &def.sources {
        qschemas.push(schema_of(&s.view)?.qualified(&s.alias));
    }

    // Split filters into single-source (pushed down) and residual.
    let mut local: Vec<Vec<&Predicate>> = vec![Vec::new(); n];
    let mut residual: Vec<&Predicate> = Vec::new();
    for f in &def.filters {
        match single_source_of(def, f) {
            Some(i) => local[i].push(f),
            None => residual.push(f),
        }
    }

    // Load and pre-filter each operand.
    let mut rows: Vec<Option<SignedRows>> = Vec::with_capacity(n);
    for (i, s) in def.sources.iter().enumerate() {
        let mut r = operand(&s.view)?;
        for f in &local[i] {
            let bound = f.bind(&qschemas[i])?;
            r = ops::filter(r, &bound)?;
        }
        rows.push(Some(r));
    }

    // Greedy join order: start from the smallest operand, then repeatedly
    // join the smallest source connected by an equi-join edge.
    let start = (0..n)
        .min_by_key(|&i| rows[i].as_ref().map_or(usize::MAX, Vec::len))
        .expect("at least one source");
    let mut joined_schema = qschemas[start].clone();
    let mut joined_rows = rows[start].take().expect("start operand");
    let mut in_set = vec![false; n];
    in_set[start] = true;

    for _ in 1..n {
        let next = pick_next(def, &in_set, |i| {
            rows[i].as_ref().map_or(usize::MAX, Vec::len)
        });
        let (lk, rk) = join_keys(def, &in_set, next, &joined_schema, &qschemas[next])?;
        let right = rows[next].take().expect("operand joined twice");
        joined_rows = if lk.is_empty() {
            ops::cross_join(&joined_rows, &right, meter)
        } else {
            ops::hash_join(&joined_rows, &lk, &right, &rk, meter)
        };
        joined_schema = joined_schema.concat(&qschemas[next])?;
        in_set[next] = true;
        if joined_rows.is_empty() {
            // Remaining joins cannot resurrect an empty intermediate, but the
            // term-execution model still scans the remaining operands.
            for (j, slot) in rows.iter_mut().enumerate() {
                if !in_set[j] {
                    if let Some(r) = slot.take() {
                        drop(r);
                        joined_schema = joined_schema.concat(&qschemas[j])?;
                        in_set[j] = true;
                    }
                }
            }
            break;
        }
    }

    for f in residual {
        let bound = f.bind(&joined_schema)?;
        joined_rows = ops::filter(joined_rows, &bound)?;
    }
    Ok((joined_schema, joined_rows))
}

/// Picks the next source to join: the smallest operand connected to the
/// current set, falling back to the smallest remaining (cross join) when the
/// join graph is disconnected. `size(i)` reports the (filtered) operand size
/// of source `i`, `usize::MAX` once joined — shared by the per-term and
/// cached-operand evaluators so both pick byte-identical join orders.
pub(crate) fn pick_next(def: &ViewDef, in_set: &[bool], size: impl Fn(usize) -> usize) -> usize {
    let connected: Vec<usize> = (0..in_set.len())
        .filter(|&i| !in_set[i] && is_connected(def, in_set, i))
        .collect();
    if let Some(&best) = connected.iter().min_by_key(|&&i| size(i)) {
        return best;
    }
    (0..in_set.len())
        .filter(|&i| !in_set[i])
        .min_by_key(|&i| size(i))
        .expect("some source remains")
}

pub(crate) fn is_connected(def: &ViewDef, in_set: &[bool], candidate: usize) -> bool {
    def.joins.iter().any(|j| {
        let a = def.source_of_column(&j.left);
        let b = def.source_of_column(&j.right);
        match (a, b) {
            (Some(a), Some(b)) => (a == candidate && in_set[b]) || (b == candidate && in_set[a]),
            _ => false,
        }
    })
}

/// Join-key column indices between the current joined schema and the next
/// source's qualified schema, from every applicable equi-join condition.
pub(crate) fn join_keys(
    def: &ViewDef,
    in_set: &[bool],
    next: usize,
    joined_schema: &Schema,
    next_schema: &Schema,
) -> RelResult<(Vec<usize>, Vec<usize>)> {
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    for j in &def.joins {
        let a = def.source_of_column(&j.left);
        let b = def.source_of_column(&j.right);
        let (joined_col, next_col) = match (a, b) {
            (Some(a), Some(b)) if a == next && in_set[b] => (&j.right, &j.left),
            (Some(a), Some(b)) if b == next && in_set[a] => (&j.left, &j.right),
            _ => continue,
        };
        lk.push(joined_schema.index_of(joined_col)?);
        rk.push(next_schema.index_of(next_col)?);
    }
    Ok((lk, rk))
}

pub(crate) fn single_source_of(def: &ViewDef, f: &Predicate) -> Option<usize> {
    let cols = f.referenced_columns();
    let mut source = None;
    for c in cols {
        let s = def.source_of_column(c)?;
        match source {
            None => source = Some(s),
            Some(prev) if prev == s => {}
            Some(_) => return None,
        }
    }
    source
}

/// Projects term output rows into the view's visible output rows
/// (non-aggregate views).
pub fn project_output(
    def: &ViewDef,
    term_schema: &Schema,
    rows: &SignedRows,
    meter: &mut WorkMeter,
) -> RelResult<SignedRows> {
    let outs = match &def.output {
        ViewOutput::Project(outs) => outs,
        ViewOutput::Aggregate { .. } => {
            return Err(RelError::SchemaMismatch {
                detail: format!("{} is an aggregate view", def.name),
            })
        }
    };
    let exprs: Vec<BoundExpr> = outs
        .iter()
        .map(|o| o.expr.bind(term_schema))
        .collect::<RelResult<_>>()?;
    ops::project(rows, &exprs, meter)
}

/// Groups term output rows into per-group accumulator deltas
/// (aggregate views).
pub fn group_output(
    def: &ViewDef,
    term_schema: &Schema,
    rows: &SignedRows,
) -> RelResult<std::collections::HashMap<uww_relational::Tuple, ops::GroupAcc>> {
    let spec = agg_spec(def, term_schema)?;
    ops::group_rows(rows, &spec)
}

/// The `(function, output type)` pairs of an aggregate view's aggregates.
pub fn agg_types(def: &ViewDef, joined_schema: &Schema) -> RelResult<Vec<(AggFunc, ValueType)>> {
    match &def.output {
        ViewOutput::Aggregate { aggregates, .. } => aggregates
            .iter()
            .map(|a| {
                let ty = match a.func {
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                        a.input.output_type(joined_schema)?
                    }
                    AggFunc::Count => ValueType::Int,
                };
                Ok((a.func, ty))
            })
            .collect(),
        ViewOutput::Project(_) => Err(RelError::SchemaMismatch {
            detail: format!("{} is not an aggregate view", def.name),
        }),
    }
}

pub(crate) fn agg_spec(def: &ViewDef, term_schema: &Schema) -> RelResult<ops::AggSpec> {
    match &def.output {
        ViewOutput::Aggregate {
            group_by,
            aggregates,
        } => {
            let group_by = group_by
                .iter()
                .map(|g| g.expr.bind(term_schema))
                .collect::<RelResult<_>>()?;
            let aggs = aggregates
                .iter()
                .map(|a| {
                    let ty = match a.func {
                        AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                            a.input.output_type(term_schema)?
                        }
                        AggFunc::Count => ValueType::Int,
                    };
                    Ok((a.func, a.input.bind(term_schema)?, ty))
                })
                .collect::<RelResult<_>>()?;
            Ok(ops::AggSpec { group_by, aggs })
        }
        ViewOutput::Project(_) => Err(RelError::SchemaMismatch {
            detail: format!("{} is not an aggregate view", def.name),
        }),
    }
}

/// All non-empty subsets of `set`, ordered by size then lexicographically —
/// the `2^|Y| − 1` delta combinations of a `Comp(W, Y)` expression.
pub fn nonempty_subsets<T: Clone + Ord>(set: &BTreeSet<T>) -> Vec<BTreeSet<T>> {
    let items: Vec<T> = set.iter().cloned().collect();
    let n = items.len();
    let mut out: Vec<BTreeSet<T>> = Vec::with_capacity((1usize << n) - 1);
    for mask in 1u32..(1u32 << n) {
        let subset: BTreeSet<T> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| items[i].clone())
            .collect();
        out.push(subset);
    }
    out.sort_by_key(|s| s.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_relational::{tup, EquiJoin, OutputColumn, Table, Value, ViewSource};

    fn r_table() -> Table {
        let mut t = Table::new(
            "R",
            Schema::of(&[("rk", ValueType::Int), ("rv", ValueType::Int)]),
        );
        for i in 0..5 {
            t.insert(tup![Value::Int(i), Value::Int(10 * i)]).unwrap();
        }
        t
    }

    fn s_table() -> Table {
        let mut t = Table::new(
            "S",
            Schema::of(&[("sk", ValueType::Int), ("tag", ValueType::Str)]),
        );
        for i in 0..5 {
            let tag = if i % 2 == 0 { "even" } else { "odd" };
            t.insert(tup![Value::Int(i), Value::str(tag)]).unwrap();
        }
        t
    }

    fn def() -> ViewDef {
        ViewDef {
            name: "V".into(),
            sources: vec![ViewSource::named("R"), ViewSource::named("S")],
            joins: vec![EquiJoin::new("R.rk", "S.sk")],
            filters: vec![Predicate::col_eq("S.tag", Value::str("even"))],
            output: ViewOutput::Project(vec![
                OutputColumn::col("k", "R.rk"),
                OutputColumn::col("v", "R.rv"),
            ]),
        }
    }

    fn schema_lookup(name: &str) -> RelResult<Schema> {
        match name {
            "R" => Ok(r_table().schema().clone()),
            "S" => Ok(s_table().schema().clone()),
            _ => Err(RelError::UnknownRelation(name.into())),
        }
    }

    #[test]
    fn full_term_evaluates_join_and_filter() {
        let (r, s) = (r_table(), s_table());
        let mut meter = WorkMeter::new();
        let (schema, rows) = eval_term(
            &def(),
            schema_lookup,
            |name| {
                Ok(match name {
                    "R" => ops::scan_table(&r, &mut WorkMeter::new()),
                    _ => ops::scan_table(&s, &mut WorkMeter::new()),
                })
            },
            &mut meter,
        )
        .unwrap();
        // keys 0, 2, 4 are even.
        assert_eq!(rows.len(), 3);
        assert_eq!(schema.len(), 4);
        let out = project_output(&def(), &schema, &rows, &mut meter).unwrap();
        assert!(out.contains(&(tup![Value::Int(4), Value::Int(40)], 1)));
        assert_eq!(meter.terms_evaluated, 1);
    }

    #[test]
    fn delta_operand_signs_propagate() {
        let r = r_table();
        let mut meter = WorkMeter::new();
        // ΔS deletes key 2.
        let delta_s: SignedRows = vec![(tup![Value::Int(2), Value::str("even")], -1)];
        let (schema, rows) = eval_term(
            &def(),
            schema_lookup,
            |name| {
                Ok(match name {
                    "R" => ops::scan_table(&r, &mut WorkMeter::new()),
                    _ => delta_s.clone(),
                })
            },
            &mut meter,
        )
        .unwrap();
        let out = project_output(&def(), &schema, &rows, &mut meter).unwrap();
        assert_eq!(out, vec![(tup![Value::Int(2), Value::Int(20)], -1)]);
    }

    #[test]
    fn local_filter_applies_to_delta_too() {
        let r = r_table();
        let mut meter = WorkMeter::new();
        // A delta row that fails S's local filter contributes nothing.
        let delta_s: SignedRows = vec![(tup![Value::Int(2), Value::str("odd")], -1)];
        let (_, rows) = eval_term(
            &def(),
            schema_lookup,
            |name| {
                Ok(match name {
                    "R" => ops::scan_table(&r, &mut WorkMeter::new()),
                    _ => delta_s.clone(),
                })
            },
            &mut meter,
        )
        .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn nonempty_subsets_order_and_count() {
        let set: BTreeSet<i32> = [1, 2, 3].into_iter().collect();
        let subs = nonempty_subsets(&set);
        assert_eq!(subs.len(), 7);
        assert!(subs[..3].iter().all(|s| s.len() == 1));
        assert!(subs[3..6].iter().all(|s| s.len() == 2));
        assert_eq!(subs[6].len(), 3);
    }

    #[test]
    fn three_way_greedy_join_handles_snowflake() {
        // R(rk, rv) ⋈ S(sk, tag) ⋈ T(tk = rk) — T connected to R only.
        let mut t3 = Table::new(
            "T",
            Schema::of(&[("tk", ValueType::Int), ("w", ValueType::Int)]),
        );
        for i in 0..3 {
            t3.insert(tup![Value::Int(i), Value::Int(i + 100)]).unwrap();
        }
        let def = ViewDef {
            name: "V3".into(),
            sources: vec![
                ViewSource::named("R"),
                ViewSource::named("S"),
                ViewSource::named("T"),
            ],
            joins: vec![EquiJoin::new("R.rk", "S.sk"), EquiJoin::new("R.rk", "T.tk")],
            filters: vec![],
            output: ViewOutput::Project(vec![
                OutputColumn::col("k", "R.rk"),
                OutputColumn::col("w", "T.w"),
            ]),
        };
        let (r, s) = (r_table(), s_table());
        let mut meter = WorkMeter::new();
        let (schema, rows) = eval_term(
            &def,
            |n| match n {
                "R" => Ok(r.schema().clone()),
                "S" => Ok(s.schema().clone()),
                "T" => Ok(t3.schema().clone()),
                _ => Err(RelError::UnknownRelation(n.into())),
            },
            |name| {
                let mut m = WorkMeter::new();
                Ok(match name {
                    "R" => ops::scan_table(&r, &mut m),
                    "S" => ops::scan_table(&s, &mut m),
                    _ => ops::scan_table(&t3, &mut m),
                })
            },
            &mut meter,
        )
        .unwrap();
        let out = project_output(&def, &schema, &rows, &mut meter).unwrap();
        assert_eq!(out.len(), 3); // keys 0,1,2
        assert!(out.contains(&(tup![Value::Int(1), Value::Int(101)], 1)));
    }

    #[test]
    fn empty_delta_short_circuits_join() {
        let r = r_table();
        let mut meter = WorkMeter::new();
        let (_, rows) = eval_term(
            &def(),
            schema_lookup,
            |name| {
                Ok(match name {
                    "R" => ops::scan_table(&r, &mut WorkMeter::new()),
                    _ => Vec::new(),
                })
            },
            &mut meter,
        )
        .unwrap();
        assert!(rows.is_empty());
    }
}
