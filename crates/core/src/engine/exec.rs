//! Strategy execution.

use crate::engine::eval;
use crate::engine::share::{self, TermOptions};
use crate::engine::warehouse::{scan_operand, PendingDelta, Warehouse};
use crate::error::{CoreError, CoreResult};
use crate::wal::{encode_pending, Manifest, ManifestExpr, RecordBody, WalConfig, WalWriter};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};
use uww_obs as obs;
use uww_relational::ops;
use uww_relational::{catalog_to_string, deltas_to_string, digest64, ViewOutput, WorkMeter};
use uww_vdag::{check_vdag_strategy, Strategy, UpdateExpr, ViewId};

/// Execution options.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Check conditions C1–C8 before executing (default: on).
    pub validate: bool,
    /// Run the static strategy analyzer first and refuse any strategy it
    /// flags, reporting *all* defects with `UWW###` rule ids instead of the
    /// dynamic checker's first violation (default: off).
    pub analyze_first: bool,
    /// Journal execution to an install WAL so a crashed run can be resumed
    /// by [`crate::recovery::recover`] (default: off).
    pub wal: Option<WalConfig>,
    /// Evaluate each `Comp`'s terms through a shared operand cache
    /// (default: on). The logical work metric and every computed delta are
    /// byte-identical either way; only physical rows touched and hash-table
    /// builds shrink. Off restores the historical per-term scans.
    pub term_sharing: bool,
    /// Worker threads for term evaluation within one `Comp` (default: 0 =
    /// inline). Effective only with `term_sharing`; terms are read-only and
    /// independent, so results are deterministic regardless.
    pub term_threads: usize,
    /// Share operand materializations and hash-join build tables *across*
    /// expressions through a strategy-scope cache (default: off). Requires
    /// `term_sharing`; invalidation follows the `UWW012` liveness predicate,
    /// so deltas, WAL bytes, and the logical meter are byte-identical to
    /// per-`Comp` caching — only `physical_rows_touched`,
    /// `hash_tables_cross_reused`, and `operand_reads_cached` move.
    pub strategy_sharing: bool,
    /// Planner-predicted linear work per expression, in execution (manifest)
    /// order — attached to expression spans when tracing is enabled so
    /// traces and the timeline report show predicted vs measured work
    /// side by side (default: none). Never affects execution.
    pub predicted_work: Option<Vec<f64>>,
    /// Partition-parallel execution within each term: hash-partitioned
    /// build/probe and chunked aggregation on a work-stealing pool
    /// (default: one partition — the sequential engine). Final states, WAL
    /// bytes, and the full meter are byte-identical at any partition count;
    /// only wall-clock (and per-partition trace spans) change.
    pub partition: crate::engine::pool::PartitionOptions,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            validate: true,
            analyze_first: false,
            wal: None,
            term_sharing: true,
            term_threads: 0,
            strategy_sharing: false,
            predicted_work: None,
            partition: crate::engine::pool::PartitionOptions::default(),
        }
    }
}

impl ExecOptions {
    /// The term-engine slice of these options.
    pub(crate) fn term_options(&self) -> TermOptions {
        TermOptions {
            share: self.term_sharing,
            threads: self.term_threads,
            partition: self.partition,
        }
    }
}

/// Measurements for one executed expression.
#[derive(Clone, Debug)]
pub struct ExprReport {
    /// The expression.
    pub expr: UpdateExpr,
    /// Work done by this expression alone.
    pub work: WorkMeter,
    /// Wall-clock time spent.
    pub wall: Duration,
    /// True when recovery replayed this expression from the WAL instead of
    /// executing it fresh (`Comp`s merge their journaled ΔV fragment with no
    /// scan work; `Inst`s are redone against the restored snapshot).
    pub replayed: bool,
}

/// Measurements for a whole strategy execution: the update window.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Per-expression breakdown, in execution order.
    pub per_expr: Vec<ExprReport>,
}

impl ExecutionReport {
    /// Total work across all expressions.
    pub fn total_work(&self) -> WorkMeter {
        let mut total = WorkMeter::new();
        for e in &self.per_expr {
            total.absorb(&e.work);
        }
        total
    }

    /// Total wall-clock time: the measured update window.
    pub fn wall(&self) -> Duration {
        self.per_expr.iter().map(|e| e.wall).sum()
    }

    /// The paper's measured linear work (scanned + installed rows).
    pub fn linear_work(&self) -> u64 {
        self.total_work().linear_work()
    }

    /// Renders the report as a JSON object (no external dependencies),
    /// resolving view ids against `g`. This is the one schema every consumer
    /// (`uww run --json`, the serve/bench tooling) reads, so it carries the
    /// full meter — including `rows_emitted` — and each expression's
    /// `replayed` flag.
    pub fn to_json(&self, g: &uww_vdag::Vdag) -> String {
        fn meter_json(m: &WorkMeter) -> String {
            format!(
                "{{\"operand_rows_scanned\":{},\"rows_installed\":{},\"rows_emitted\":{},\
                 \"terms_evaluated\":{},\"comp_expressions\":{},\"inst_expressions\":{},\
                 \"physical_rows_touched\":{},\"hash_tables_built\":{},\
                 \"hash_tables_reused\":{},\"hash_tables_cross_reused\":{},\
                 \"operand_reads_cached\":{}}}",
                m.operand_rows_scanned,
                m.rows_installed,
                m.rows_emitted,
                m.terms_evaluated,
                m.comp_expressions,
                m.inst_expressions,
                m.physical_rows_touched,
                m.hash_tables_built,
                m.hash_tables_reused,
                m.hash_tables_cross_reused,
                m.operand_reads_cached
            )
        }
        fn json_str(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }

        let mut out = String::from("{\"per_expr\":[");
        for (n, e) in self.per_expr.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let (kind, view, over): (&str, ViewId, Vec<ViewId>) = match &e.expr {
                UpdateExpr::Comp { view, over } => ("comp", *view, over.iter().copied().collect()),
                UpdateExpr::Inst(view) => ("inst", *view, Vec::new()),
            };
            out.push_str(&format!(
                "{{\"expr\":{},\"kind\":\"{kind}\",\"view\":{},\"over\":[",
                json_str(&e.expr.display(g).to_string()),
                json_str(g.name(view)),
            ));
            for (m, v) in over.iter().enumerate() {
                if m > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(g.name(*v)));
            }
            out.push_str(&format!(
                "],\"elapsed_us\":{},\"replayed\":{},\"work\":{}}}",
                e.wall.as_micros(),
                e.replayed,
                meter_json(&e.work)
            ));
        }
        out.push_str(&format!(
            "],\"total\":{},\"elapsed_us\":{},\"linear_work\":{},\"replayed_exprs\":{}}}",
            meter_json(&self.total_work()),
            self.wall().as_micros(),
            self.linear_work(),
            self.per_expr.iter().filter(|e| e.replayed).count()
        ));
        out
    }
}

/// Predicted-vs-measured sharing counters for one carried window.
///
/// Every quantity is fixed statically by the seeded liveness walk before the
/// window runs; [`exact`](CarryConformance::exact) holding is therefore a
/// *proof obligation* on the executor, not a tuning metric — continuous-mode
/// tests assert it for every window of every seeded stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CarryConformance {
    /// Cross-expression hash-table reuses the seeded plan predicted.
    pub predicted_cross_reuses: u64,
    /// Cross-expression hash-table reuses the meter measured.
    pub measured_cross_reuses: u64,
    /// Strategy-cache-served raw operand reads the seeded plan predicted.
    pub predicted_cached_reads: u64,
    /// Strategy-cache-served raw operand reads the meter measured.
    pub measured_cached_reads: u64,
    /// Hash-table uses predicted to be served by the *previous window's*
    /// carried tables (subset of `predicted_cross_reuses`).
    pub predicted_carried_table_hits: u64,
    /// Hash-table uses actually served by carried tables.
    pub measured_carried_table_hits: u64,
    /// Raw operand reads predicted to be served by carried materializations
    /// (subset of `predicted_cached_reads`).
    pub predicted_carried_raw_hits: u64,
    /// Raw operand reads actually served by carried materializations.
    pub measured_carried_raw_hits: u64,
}

impl CarryConformance {
    /// True when every measured counter equals its static prediction.
    pub fn exact(&self) -> bool {
        self.predicted_cross_reuses == self.measured_cross_reuses
            && self.predicted_cached_reads == self.measured_cached_reads
            && self.predicted_carried_table_hits == self.measured_carried_table_hits
            && self.predicted_carried_raw_hits == self.measured_carried_raw_hits
    }
}

/// Result of one carried window: the execution report, the cache entries
/// that survived into the next window, and the conformance ledger.
#[derive(Debug)]
pub struct WindowOutcome {
    /// Per-expression measurements, exactly as [`Warehouse::execute_with`]
    /// would report them.
    pub report: ExecutionReport,
    /// Build tables and raw materializations that outlived this window —
    /// pass to the next window's [`Warehouse::execute_carried`] call (or
    /// drop to run it cold, e.g. after crash recovery).
    pub carry: share::WindowCarry,
    /// Predicted-vs-measured sharing counters for this window.
    pub conformance: CarryConformance,
}

impl Warehouse {
    /// Executes a VDAG strategy with default options.
    pub fn execute(&mut self, strategy: &Strategy) -> CoreResult<ExecutionReport> {
        self.execute_with(strategy, ExecOptions::default())
    }

    /// Executes one continuous-mode window: like [`Warehouse::execute_with`]
    /// with `strategy_sharing` forced on, but the strategy-scope cache is
    /// seeded with `carry` — the entries that survived the previous window —
    /// and harvested afterwards for the next one. Deltas, WAL bytes, and the
    /// logical meter are byte-identical to an unseeded run; only the physical
    /// sharing counters move, and those conform exactly to the seeded plan.
    pub fn execute_carried(
        &mut self,
        strategy: &Strategy,
        opts: ExecOptions,
        carry: share::WindowCarry,
    ) -> CoreResult<WindowOutcome> {
        if !opts.term_sharing {
            return Err(CoreError::Warehouse(
                "execute_carried requires term_sharing (the strategy cache rides on it)".into(),
            ));
        }
        if opts.analyze_first {
            let report = uww_analysis::analyze(self.vdag(), strategy);
            if report.has_errors() {
                return Err(CoreError::Analysis(Box::new(report)));
            }
        }
        if opts.validate {
            check_vdag_strategy(self.vdag(), strategy)?;
        }
        let mut wal = match &opts.wal {
            Some(cfg) => {
                let staged: Vec<(usize, &UpdateExpr)> =
                    strategy.exprs.iter().map(|e| (0, e)).collect();
                Some(self.wal_begin(cfg, &staged)?)
            }
            None => None,
        };
        // A carry built at a different partition count cannot seed this
        // window: its tables are split differently than this run's probes,
        // so serving one would be a cross-partition stale hit. Drop it
        // *before* planning, so the plan and the runtime cache agree.
        let carry = if carry.is_empty() || carry.partitions() == opts.partition.partitions {
            carry
        } else {
            share::WindowCarry::empty()
        };
        // The seeded plan starts its liveness walk from the carried entries,
        // so the front of the strategy can consume the previous window's
        // builds; seeding the runtime cache with the *same* carry makes
        // measured and predicted counters equal by construction.
        let plan = share::plan_strategy_sharing_carried(self, strategy, &carry)?;
        let mut conformance = CarryConformance {
            predicted_cross_reuses: plan.cross_reuses(),
            predicted_cached_reads: plan.cached_reads(),
            predicted_carried_table_hits: plan.carried_table_hits,
            predicted_carried_raw_hits: plan.carried_raw_hits,
            ..CarryConformance::default()
        };
        let scache = plan.cache_with(carry);
        let mut run_span = obs::span(obs::SpanKind::Run, "execute");
        run_span.attr_u64("expressions", strategy.exprs.len() as u64);
        let items: Vec<(usize, usize, UpdateExpr)> = strategy
            .exprs
            .iter()
            .enumerate()
            .map(|(i, e)| (i, 0, e.clone()))
            .collect();
        let start_meter = *self.meter();
        let report = self.run_exprs_journaled(
            &items,
            None,
            &mut wal,
            opts.term_options(),
            Some(&scache),
            opts.predicted_work.as_deref(),
        )?;
        if let Some(w) = &mut wal {
            w.append(&RecordBody::Commit)?;
        }
        let measured = self.meter().since(&start_meter);
        conformance.measured_cross_reuses = measured.hash_tables_cross_reused;
        conformance.measured_cached_reads = measured.operand_reads_cached;
        let (table_hits, raw_hits) = scache.carried_hits();
        conformance.measured_carried_table_hits = table_hits;
        conformance.measured_carried_raw_hits = raw_hits;
        Ok(WindowOutcome {
            report,
            carry: scache.harvest(opts.partition.partitions),
            conformance,
        })
    }

    /// Executes a VDAG strategy.
    pub fn execute_with(
        &mut self,
        strategy: &Strategy,
        opts: ExecOptions,
    ) -> CoreResult<ExecutionReport> {
        if opts.analyze_first {
            let report = uww_analysis::analyze(self.vdag(), strategy);
            if report.has_errors() {
                return Err(CoreError::Analysis(Box::new(report)));
            }
        }
        if opts.validate {
            check_vdag_strategy(self.vdag(), strategy)?;
        }
        let mut wal = match &opts.wal {
            Some(cfg) => {
                let staged: Vec<(usize, &UpdateExpr)> =
                    strategy.exprs.iter().map(|e| (0, e)).collect();
                Some(self.wal_begin(cfg, &staged)?)
            }
            None => None,
        };
        // Strategy-scope sharing is planned statically before anything runs:
        // the directives fix exactly which keyed builds cross expression
        // boundaries, so measured cross counters equal the plan.
        let scache = if opts.strategy_sharing && opts.term_sharing {
            Some(
                share::plan_strategy_sharing(self, strategy, share::SharingScope::Strategy)?
                    .cache(),
            )
        } else {
            None
        };
        let mut run_span = obs::span(obs::SpanKind::Run, "execute");
        run_span.attr_u64("expressions", strategy.exprs.len() as u64);
        let items: Vec<(usize, usize, UpdateExpr)> = strategy
            .exprs
            .iter()
            .enumerate()
            .map(|(i, e)| (i, 0, e.clone()))
            .collect();
        let report = self.run_exprs_journaled(
            &items,
            None,
            &mut wal,
            opts.term_options(),
            scache.as_ref(),
            opts.predicted_work.as_deref(),
        )?;
        if let Some(w) = &mut wal {
            w.append(&RecordBody::Commit)?;
        }
        Ok(report)
    }

    /// Runs a sequence of `(manifest idx, stage, expr)` items, journaling
    /// each expression boundary when a WAL writer is attached. Emits a stage
    /// record whenever the stage changes from `last_stage` (recovery passes
    /// the stage of the last completed prefix expression).
    pub(crate) fn run_exprs_journaled(
        &mut self,
        items: &[(usize, usize, UpdateExpr)],
        mut last_stage: Option<usize>,
        wal: &mut Option<WalWriter>,
        topts: TermOptions,
        scache: Option<&share::StrategyCache>,
        predicted: Option<&[f64]>,
    ) -> CoreResult<ExecutionReport> {
        let mut report = ExecutionReport::default();
        for (idx, stage, expr) in items {
            if let Some(w) = wal {
                if last_stage != Some(*stage) {
                    w.append(&RecordBody::Stage(*stage))?;
                }
            }
            last_stage = Some(*stage);
            let mut span = {
                let g = self.vdag();
                obs::span_dyn(obs::SpanKind::Expression, || expr.display(g).to_string())
            };
            if span.is_recording() {
                expr_attrs(&mut span, self.vdag(), expr);
                if let Some(p) = predicted.and_then(|p| p.get(*idx)) {
                    span.attr_f64(obs::keys::PREDICTED_WORK, *p);
                }
            }
            let start_meter = *self.meter();
            let t0 = Instant::now();
            let installed = match expr {
                UpdateExpr::Comp { view, over } => {
                    self.exec_comp_journaled(
                        *view,
                        over,
                        *idx,
                        wal,
                        topts,
                        scache.map(|c| (c, *idx)),
                    )?;
                    None
                }
                UpdateExpr::Inst(view) => Some(self.exec_inst_journaled(*view, *idx, wal)?),
            };
            // Drop strategy-cache entries this expression invalidated —
            // the same liveness walk the static plan performed. An `Inst`
            // that installed zero rows left every operand bit-identical, so
            // its entries stay: consumption is directive-driven, so the lax
            // retention can never serve an unplanned hit — it only lets more
            // entries survive into a cross-window harvest.
            if let Some(c) = scache {
                if installed != Some(0) {
                    c.invalidate_after(self.vdag(), expr);
                }
            }
            let work = self.meter().since(&start_meter);
            meter_attrs(&mut span, &work);
            drop(span);
            report.per_expr.push(ExprReport {
                expr: expr.clone(),
                work,
                wall: t0.elapsed(),
                replayed: false,
            });
        }
        Ok(report)
    }

    /// Snapshots the warehouse into a fresh WAL directory and writes the
    /// manifest for the staged strategy (canonical execution order).
    ///
    /// Fails if any derived view already has an in-flight delta: the WAL
    /// journals a whole update window, so it must start from a clean batch
    /// of base-view changes.
    pub(crate) fn wal_begin(
        &self,
        cfg: &WalConfig,
        staged: &[(usize, &UpdateExpr)],
    ) -> CoreResult<WalWriter> {
        let mut changes = BTreeMap::new();
        for (name, p) in self.pending_map() {
            let id = self.vdag().id_of(name)?;
            match p {
                PendingDelta::Rows(d) if self.vdag().is_base(id) => {
                    changes.insert(name.clone(), d.clone());
                }
                _ => {
                    return Err(CoreError::Wal(format!(
                        "cannot begin a WAL mid-window: {name} has an in-flight derived delta"
                    )))
                }
            }
        }
        let state_text = catalog_to_string(self.state());
        let changes_text = deltas_to_string(&changes);
        let manifest = Manifest {
            vdag_fingerprint: self.vdag().fingerprint(),
            state_digest: digest64(&state_text),
            changes_digest: digest64(&changes_text),
            fsync: cfg.fsync,
            ctx: cfg.ctx.clone(),
            exprs: staged
                .iter()
                .map(|(stage, e)| ManifestExpr::from_expr(self.vdag(), *stage, e))
                .collect(),
        };
        WalWriter::create(cfg, &manifest, &state_text, &changes_text)
    }

    /// Executes `Comp(view, over)`: computes the fragment against the
    /// current state and folds it into the view's pending delta. With a WAL
    /// attached, the fragment is journaled *before* the merge (log-ahead),
    /// so a `CD` record guarantees the fragment is durably reproducible.
    pub(crate) fn exec_comp_journaled(
        &mut self,
        view: ViewId,
        over: &BTreeSet<ViewId>,
        idx: usize,
        wal: &mut Option<WalWriter>,
        topts: TermOptions,
        scache: Option<(&share::StrategyCache, usize)>,
    ) -> CoreResult<()> {
        if let Some(w) = wal {
            w.append(&RecordBody::CompStart(idx))?;
        }
        let (name, fragment, meter) = comp_fragment(self, view, over, topts, scache)?;
        if let Some(w) = wal {
            let payload = encode_pending(&fragment);
            w.append(&RecordBody::CompDone {
                idx,
                digest: digest64(&payload),
                payload,
            })?;
        }
        self.merge_fragment(&name, fragment)?;
        let total = self.meter_mut();
        total.comp_expressions += 1;
        share::fold_term_meter(total, &meter);
        Ok(())
    }

    /// Executes `Inst(view)` between its `IS`/`ID` records. The `ID` record
    /// carries the installed row count and a digest of the view's new
    /// extent, which recovery verifies after redoing the install.
    pub(crate) fn exec_inst_journaled(
        &mut self,
        view: ViewId,
        idx: usize,
        wal: &mut Option<WalWriter>,
    ) -> CoreResult<u64> {
        if let Some(w) = wal {
            w.append(&RecordBody::InstStart(idx))?;
        }
        let len = self.exec_inst(view)?;
        if let Some(w) = wal {
            let name = self.vdag().name(view).to_string();
            let post_digest = uww_relational::table_digest(self.table(&name)?);
            w.append(&RecordBody::InstDone {
                idx,
                delta_len: len,
                post_digest,
            })?;
        }
        Ok(len)
    }

    /// Folds a computed fragment into `view`'s pending accumulator.
    pub(crate) fn merge_fragment(&mut self, view: &str, fragment: PendingDelta) -> CoreResult<()> {
        if !self.pending_map().contains_key(view) {
            let empty = self.empty_pending_for(view)?;
            self.pending_map_mut().insert(view.to_string(), empty);
        }
        match (self.pending_map_mut().get_mut(view), fragment) {
            (Some(PendingDelta::Rows(acc)), PendingDelta::Rows(d)) => acc.merge(&d),
            (Some(PendingDelta::Summary(acc)), PendingDelta::Summary(s)) => acc.merge(&s),
            _ => {
                return Err(CoreError::Warehouse(format!(
                    "fragment shape mismatch for {view}"
                )))
            }
        }
        Ok(())
    }

    /// Executes `Inst(view)`: installs the pending delta (a no-op when no
    /// delta is pending, e.g. an unchanged base view). Returns the number of
    /// delta rows installed.
    ///
    /// This is the single funnel through which *every* executor path installs
    /// (`execute_with` and the threaded parallel executor both reach it), so
    /// an attached [`InstallPublisher`](crate::engine::publish::InstallPublisher)
    /// sees every install and publishes the new extent to online readers.
    pub(crate) fn exec_inst(&mut self, view: ViewId) -> CoreResult<u64> {
        let name = self.vdag().name(view).to_string();
        self.meter_mut().inst_expressions += 1;
        let publisher = self.publisher().cloned();
        let Some(pending) = self.pending_map_mut().remove(&name) else {
            return Ok(0);
        };
        let delta = match pending {
            PendingDelta::Rows(d) => d,
            PendingDelta::Summary(s) => s.to_delta(self.table(&name)?).map_err(CoreError::Rel)?,
        };
        let len = delta.len();
        match &publisher {
            Some(p) => {
                p.install_and_publish(&name, &delta, self.state_mut())?;
            }
            None => {
                self.state_mut()
                    .get_mut(&name)?
                    .install(&delta)
                    .map_err(CoreError::Rel)?;
            }
        }
        self.meter_mut().install(len);
        Ok(len)
    }
}

/// Attaches the static expression attributes (kind, target view) to a span.
pub(crate) fn expr_attrs(span: &mut obs::Span, g: &uww_vdag::Vdag, expr: &UpdateExpr) {
    if !span.is_recording() {
        return;
    }
    let (kind, view) = match expr {
        UpdateExpr::Comp { view, .. } => ("comp", *view),
        UpdateExpr::Inst(view) => ("inst", *view),
    };
    span.attr_str(obs::keys::EXPR_KIND, kind);
    span.attr_str(obs::keys::VIEW, g.name(view));
}

/// Attaches a `WorkMeter` delta to a span as the standard measured-work
/// attributes (the full logical/physical split plus the paper's linear
/// metric under [`obs::keys::MEASURED_WORK`]).
pub(crate) fn meter_attrs(span: &mut obs::Span, work: &WorkMeter) {
    if !span.is_recording() {
        return;
    }
    span.attr_u64(obs::keys::MEASURED_WORK, work.linear_work());
    span.attr_u64(obs::keys::ROWS_SCANNED, work.operand_rows_scanned);
    span.attr_u64(obs::keys::ROWS_INSTALLED, work.rows_installed);
    span.attr_u64(obs::keys::ROWS_EMITTED, work.rows_emitted);
    span.attr_u64(obs::keys::TERMS, work.terms_evaluated);
    span.attr_u64(obs::keys::PHYSICAL_ROWS, work.physical_rows_touched);
    span.attr_u64(obs::keys::HASH_BUILDS, work.hash_tables_built);
    span.attr_u64(obs::keys::HASH_REUSES, work.hash_tables_reused);
    span.attr_u64(obs::keys::HASH_CROSS_REUSES, work.hash_tables_cross_reused);
    span.attr_u64(obs::keys::CACHED_READS, work.operand_reads_cached);
}

/// Display label for a maintenance term: the delta subset it scans.
pub(crate) fn term_label(subset: &BTreeSet<String>) -> String {
    let mut out = String::from("d{");
    for (i, v) in subset.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(v);
    }
    out.push('}');
    out
}

/// Computes the delta fragment a `Comp(view, over)` expression contributes,
/// **without mutating the warehouse**: all `2^|over| − 1` maintenance terms
/// evaluated against the current state and pending deltas, accumulated into
/// a fresh [`PendingDelta`]. Terms whose delta subset includes a view with
/// an empty pending delta are skipped (footnote 5 of the paper), costing
/// nothing — for *every* strategy alike.
///
/// Pure over `&Warehouse`, so independent `Comp` expressions of one parallel
/// stage can run on separate threads (Section 9).
///
/// With `topts.share` the surviving terms evaluate through a per-`Comp`
/// [`share::OperandCache`] (optionally across `topts.threads` workers);
/// otherwise each term re-scans its operands, the historical baseline. Both
/// paths produce byte-identical fragments and identical logical meters —
/// only the physical counters differ.
/// `scache` attaches the strategy-scope cache together with this
/// expression's strategy position (for its planned directives); only the
/// shared path consults it — the per-term baseline, the parallel stage
/// executor, and recovery replay all pass `None`.
pub(crate) fn comp_fragment(
    w: &Warehouse,
    view: ViewId,
    over: &BTreeSet<ViewId>,
    topts: TermOptions,
    scache: Option<(&share::StrategyCache, usize)>,
) -> CoreResult<(String, PendingDelta, WorkMeter)> {
    let name = w.vdag().name(view).to_string();
    let def = w
        .def(&name)
        .ok_or_else(|| CoreError::Warehouse(format!("no definition for {name}")))?
        .clone();
    let over_names: BTreeSet<String> = over.iter().map(|v| w.vdag().name(*v).to_string()).collect();

    // Terms whose delta subset includes an empty pending delta are skipped
    // up front (footnote 5) — in particular a change-free `Comp` builds no
    // operand cache and costs nothing, for every strategy alike. The same
    // filter backs the static sharing prediction, so plans and execution
    // always agree on the term set.
    let terms = share::surviving_terms(w, &over_names);

    let mut fragment = w.empty_pending_for(&name)?;
    if topts.share {
        let (outs, total) = share::eval_terms_shared(w, &def, &terms, topts, scache)?;
        for out in outs {
            match (out, &mut fragment) {
                (share::TermOut::Rows(rows), PendingDelta::Rows(acc)) => {
                    for (t, m) in rows {
                        acc.add(t, m);
                    }
                }
                (share::TermOut::Groups(groups), PendingDelta::Summary(acc)) => {
                    acc.merge_groups(groups);
                }
                _ => unreachable!("empty_pending_for matches the output shape"),
            }
        }
        return Ok((name, fragment, total));
    }

    let mut total = WorkMeter::new();
    for subset in &terms {
        let mut term_span = obs::span_dyn(obs::SpanKind::Term, || term_label(subset));
        let mut scan_meter = WorkMeter::new();
        let mut meter = WorkMeter::new();
        let (schema, rows) = {
            let state = w.state();
            let pending = w.pending_map();
            eval::eval_term(
                &def,
                |v| state.get(v).map(|t| t.schema().clone()),
                |v| scan_operand(state, pending, v, subset.contains(v), &mut scan_meter),
                &mut meter,
            )
            .map_err(CoreError::Rel)?
        };
        match (&def.output, &mut fragment) {
            (ViewOutput::Project(_), PendingDelta::Rows(acc)) => {
                let out = eval::project_output(&def, &schema, &rows, &mut meter)
                    .map_err(CoreError::Rel)?;
                for (t, m) in ops::consolidate(out) {
                    acc.add(t, m);
                }
            }
            (ViewOutput::Aggregate { .. }, PendingDelta::Summary(acc)) => {
                let groups = eval::group_output(&def, &schema, &rows).map_err(CoreError::Rel)?;
                acc.merge_groups(groups);
            }
            _ => unreachable!("empty_pending_for matches the output shape"),
        }
        if term_span.is_recording() {
            let mut combined = scan_meter;
            combined.absorb(&meter);
            meter_attrs(&mut term_span, &combined);
        }
        share::fold_term_meter(&mut total, &scan_meter);
        share::fold_term_meter(&mut total, &meter);
    }
    Ok((name, fragment, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::warehouse::Warehouse;
    use std::collections::BTreeMap;
    use uww_relational::{
        tup, AggFunc, AggregateColumn, DeltaRelation, EquiJoin, OutputColumn, ScalarExpr, Schema,
        Table, Value, ValueType, ViewDef, ViewSource,
    };

    fn base_r() -> Table {
        let mut t = Table::new(
            "R",
            Schema::of(&[("rk", ValueType::Int), ("rv", ValueType::Decimal)]),
        );
        for i in 0..6 {
            t.insert(tup![Value::Int(i), Value::Decimal(100 * (i + 1))])
                .unwrap();
        }
        t
    }

    fn base_s() -> Table {
        let mut t = Table::new(
            "S",
            Schema::of(&[("sk", ValueType::Int), ("grp", ValueType::Int)]),
        );
        for i in 0..6 {
            t.insert(tup![Value::Int(i), Value::Int(i % 2)]).unwrap();
        }
        t
    }

    fn agg_def() -> ViewDef {
        ViewDef {
            name: "V".into(),
            sources: vec![ViewSource::named("R"), ViewSource::named("S")],
            joins: vec![EquiJoin::new("R.rk", "S.sk")],
            filters: vec![],
            output: ViewOutput::Aggregate {
                group_by: vec![OutputColumn::col("grp", "S.grp")],
                aggregates: vec![AggregateColumn {
                    name: "total".into(),
                    func: AggFunc::Sum,
                    input: ScalarExpr::col("R.rv"),
                }],
            },
        }
    }

    fn warehouse_with_changes() -> Warehouse {
        let mut w = Warehouse::builder()
            .base_table(base_r())
            .base_table(base_s())
            .view(agg_def())
            .build()
            .unwrap();
        // Delete R row 0 (group 0) and S row 1 (group 1, joins R row 1).
        let mut dr = DeltaRelation::new(w.table("R").unwrap().schema().clone());
        dr.add(tup![Value::Int(0), Value::Decimal(100)], -1);
        let mut ds = DeltaRelation::new(w.table("S").unwrap().schema().clone());
        ds.add(tup![Value::Int(1), Value::Int(1)], -1);
        let mut m = BTreeMap::new();
        m.insert("R".to_string(), dr);
        m.insert("S".to_string(), ds);
        w.load_changes(m).unwrap();
        w
    }

    fn strategy_1way_rs(w: &Warehouse) -> Strategy {
        let v = w.view_id("V").unwrap();
        let r = w.view_id("R").unwrap();
        let s = w.view_id("S").unwrap();
        Strategy::from_exprs(vec![
            UpdateExpr::comp1(v, r),
            UpdateExpr::inst(r),
            UpdateExpr::comp1(v, s),
            UpdateExpr::inst(s),
            UpdateExpr::inst(v),
        ])
    }

    fn strategy_dual_stage(w: &Warehouse) -> Strategy {
        uww_vdag::dual_stage_strategy(w.vdag())
    }

    #[test]
    fn one_way_strategy_reaches_expected_state() {
        let mut w = warehouse_with_changes();
        let expected = w.expected_final_state().unwrap();
        let strategy = strategy_1way_rs(&w);
        let report = w.execute(&strategy).unwrap();
        assert!(w.diff_state(&expected).is_empty(), "state mismatch");
        assert!(report.linear_work() > 0);
        assert_eq!(report.per_expr.len(), 5);
    }

    #[test]
    fn dual_stage_strategy_reaches_same_state() {
        let mut w1 = warehouse_with_changes();
        let mut w2 = warehouse_with_changes();
        let expected = w1.expected_final_state().unwrap();
        w1.execute(&strategy_1way_rs(&w1)).unwrap();
        w2.execute(&strategy_dual_stage(&w2)).unwrap();
        assert!(w1.diff_state(&expected).is_empty());
        assert!(w2.diff_state(&expected).is_empty());
        assert!(w1.table("V").unwrap().same_contents(w2.table("V").unwrap()));
    }

    #[test]
    fn reverse_one_way_order_also_correct() {
        let mut w = warehouse_with_changes();
        let expected = w.expected_final_state().unwrap();
        let v = w.view_id("V").unwrap();
        let r = w.view_id("R").unwrap();
        let s = w.view_id("S").unwrap();
        let strategy = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v, s),
            UpdateExpr::inst(s),
            UpdateExpr::comp1(v, r),
            UpdateExpr::inst(r),
            UpdateExpr::inst(v),
        ]);
        w.execute(&strategy).unwrap();
        assert!(w.diff_state(&expected).is_empty());
    }

    #[test]
    fn incorrect_strategy_rejected_by_validation() {
        let mut w = warehouse_with_changes();
        let v = w.view_id("V").unwrap();
        let r = w.view_id("R").unwrap();
        let s = w.view_id("S").unwrap();
        // Installs R before propagating it.
        let bad = Strategy::from_exprs(vec![
            UpdateExpr::inst(r),
            UpdateExpr::comp1(v, r),
            UpdateExpr::comp1(v, s),
            UpdateExpr::inst(s),
            UpdateExpr::inst(v),
        ]);
        assert!(w.execute(&bad).is_err());
        // Without validation the engine executes it and produces the WRONG
        // state — the reason the correctness conditions exist.
        let mut w2 = warehouse_with_changes();
        let expected = w2.expected_final_state().unwrap();
        w2.execute_with(
            &bad,
            ExecOptions {
                validate: false,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert!(!w2.diff_state(&expected).is_empty());
    }

    #[test]
    fn analyze_first_refuses_flagged_strategies_with_rule_ids() {
        let mut w = warehouse_with_changes();
        let v = w.view_id("V").unwrap();
        let r = w.view_id("R").unwrap();
        let s = w.view_id("S").unwrap();
        let bad = Strategy::from_exprs(vec![
            UpdateExpr::inst(r),
            UpdateExpr::comp1(v, r),
            UpdateExpr::comp1(v, s),
            UpdateExpr::inst(s),
            UpdateExpr::inst(v),
        ]);
        let opts = ExecOptions {
            validate: false,
            analyze_first: true,
            ..ExecOptions::default()
        };
        let err = w.execute_with(&bad, opts.clone()).unwrap_err();
        match err {
            CoreError::Analysis(report) => {
                assert!(report.has_errors());
                assert!(report.diagnostics.iter().any(|d| d.rule.id() == "UWW006"));
            }
            other => panic!("expected analysis rejection, got {other:?}"),
        }
        // A correct strategy still passes with the analyzer on.
        let good = strategy_1way_rs(&w);
        w.execute_with(&good, opts).unwrap();
    }

    #[test]
    fn empty_delta_comp_is_free() {
        let mut w = Warehouse::builder()
            .base_table(base_r())
            .base_table(base_s())
            .view(agg_def())
            .build()
            .unwrap();
        // No changes loaded at all.
        let strategy = strategy_1way_rs(&w);
        let report = w.execute(&strategy).unwrap();
        assert_eq!(report.total_work().operand_rows_scanned, 0);
        assert_eq!(report.total_work().rows_installed, 0);
    }

    #[test]
    fn dual_stage_scans_more_than_one_way() {
        // The core effect of the paper: with shrinking views, the dual-stage
        // strategy's multi-delta terms scan more operand rows.
        let mut w1 = warehouse_with_changes();
        let mut w2 = warehouse_with_changes();
        let r1 = w1.execute(&strategy_1way_rs(&w1)).unwrap();
        let r2 = w2.execute(&strategy_dual_stage(&w2)).unwrap();
        assert!(
            r2.total_work().operand_rows_scanned > r1.total_work().operand_rows_scanned,
            "dual-stage {} <= one-way {}",
            r2.total_work().operand_rows_scanned,
            r1.total_work().operand_rows_scanned
        );
    }

    #[test]
    fn foreign_and_malformed_expressions_rejected() {
        let mut w = warehouse_with_changes();
        let v = w.view_id("V").unwrap();
        let r = w.view_id("R").unwrap();
        // Comp on a base view.
        let bad = Strategy::from_exprs(vec![UpdateExpr::comp1(r, v)]);
        assert!(w.execute(&bad).is_err());
        // Expression over an out-of-range view id.
        let bad = Strategy::from_exprs(vec![UpdateExpr::inst(ViewId(99))]);
        assert!(w.execute(&bad).is_err());
        // Duplicate expression (C6).
        let s = w.view_id("S").unwrap();
        let bad = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v, r),
            UpdateExpr::comp1(v, r),
            UpdateExpr::inst(r),
            UpdateExpr::comp1(v, s),
            UpdateExpr::inst(s),
            UpdateExpr::inst(v),
        ]);
        assert!(w.execute(&bad).is_err());
        // Nothing was applied by the failed attempts.
        assert_eq!(w.meter().rows_installed, 0);
    }

    #[test]
    fn second_execution_is_a_noop() {
        let mut w = warehouse_with_changes();
        let strategy = strategy_1way_rs(&w);
        let first = w.execute(&strategy).unwrap();
        assert!(first.linear_work() > 0);
        let snapshot = w.table("V").unwrap().clone();
        // Pendings were consumed; running again changes nothing and costs
        // nothing.
        let second = w.execute(&strategy).unwrap();
        assert_eq!(second.linear_work(), 0);
        assert!(w.table("V").unwrap().same_contents(&snapshot));
    }

    #[test]
    fn report_json_carries_full_meter_and_replay_flags() {
        let mut w = warehouse_with_changes();
        let report = w.execute(&strategy_1way_rs(&w)).unwrap();
        let json = report.to_json(w.vdag());
        // One schema for all consumers: rows_emitted and replayed included.
        assert!(json.contains("\"rows_emitted\":"));
        assert!(json.contains("\"replayed\":false"));
        assert!(json.contains("\"replayed_exprs\":0"));
        assert!(json.contains("\"kind\":\"comp\""));
        assert!(json.contains("\"kind\":\"inst\""));
        assert!(json.contains("\"view\":\"V\""));
        assert!(json.contains(&format!("\"linear_work\":{}", report.linear_work())));
        // Emitted rows actually flow through to the total.
        let emitted = report.total_work().rows_emitted;
        assert!(json.contains(&format!("\"rows_emitted\":{emitted}")));
    }

    #[test]
    fn report_aggregates_match_sum_of_parts() {
        let mut w = warehouse_with_changes();
        let report = w.execute(&strategy_1way_rs(&w)).unwrap();
        let total = report.total_work();
        let sum_scanned: u64 = report
            .per_expr
            .iter()
            .map(|e| e.work.operand_rows_scanned)
            .sum();
        assert_eq!(total.operand_rows_scanned, sum_scanned);
        assert_eq!(total.comp_expressions, 2);
        assert_eq!(total.inst_expressions, 3);
    }
}
