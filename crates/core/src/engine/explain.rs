//! EXPLAIN: the physical plan a strategy will execute, without running it.
//!
//! For each `Comp(W, Y)` this renders the maintenance terms (which operands
//! play the delta role, which stored extents get scanned, and the greedy
//! join order the evaluator will choose), plus the model-predicted work.
//! The paper's WHA writes update scripts by hand; `explain` is the tool
//! that shows what each script line actually does.

use crate::cost::CostModel;
use crate::engine::eval;
use crate::engine::warehouse::Warehouse;
use crate::error::{CoreError, CoreResult};
use std::collections::{BTreeSet, HashSet};
use std::fmt::Write as _;
use uww_vdag::{Strategy, UpdateExpr, ViewId};

/// The physical plan of one maintenance term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermPlan {
    /// Source views in the delta role for this term.
    pub delta_sources: Vec<String>,
    /// Every operand in the greedy join order, rendered as
    /// `Δname(rows)` or `name(rows)`.
    pub join_order: Vec<String>,
    /// Whether the term will be skipped because some delta is empty.
    pub skipped: bool,
}

/// The plan of one strategy expression.
#[derive(Clone, Debug)]
pub struct ExprPlan {
    /// The expression.
    pub expr: UpdateExpr,
    /// Terms, for `Comp` expressions.
    pub terms: Vec<TermPlan>,
    /// Model-predicted work given the installs preceding this expression.
    pub predicted_work: f64,
}

impl Warehouse {
    /// Explains every expression of `strategy` against the current state
    /// and pending deltas, using `model` for work predictions.
    pub fn explain(&self, strategy: &Strategy, model: &CostModel<'_>) -> CoreResult<Vec<ExprPlan>> {
        let mut installed: HashSet<ViewId> = HashSet::new();
        let mut out = Vec::with_capacity(strategy.len());
        for e in &strategy.exprs {
            let predicted_work = model.expression_work(e, &installed);
            let terms = match e {
                UpdateExpr::Inst(_) => Vec::new(),
                UpdateExpr::Comp { view, over } => self.explain_comp(*view, over)?,
            };
            out.push(ExprPlan {
                expr: e.clone(),
                terms,
                predicted_work,
            });
            if let UpdateExpr::Inst(v) = e {
                installed.insert(*v);
            }
        }
        Ok(out)
    }

    fn explain_comp(&self, view: ViewId, over: &BTreeSet<ViewId>) -> CoreResult<Vec<TermPlan>> {
        let g = self.vdag();
        let name = g.name(view);
        let def = self
            .def(name)
            .ok_or_else(|| CoreError::Warehouse(format!("no definition for {name}")))?;
        let over_names: BTreeSet<String> = over.iter().map(|v| g.name(*v).to_string()).collect();

        let mut plans = Vec::new();
        for subset in eval::nonempty_subsets(&over_names) {
            let skipped = subset
                .iter()
                .any(|v| self.pending_len(v).map(|n| n == 0).unwrap_or(true));
            // Reconstruct the greedy join order: smallest operand first,
            // then smallest connected (mirrors eval::eval_term's policy).
            let mut sizes: Vec<(usize, u64, bool)> = Vec::new(); // (source idx, rows, is_delta)
            for (i, s) in def.sources.iter().enumerate() {
                let is_delta = subset.contains(&s.view);
                let rows = if is_delta {
                    self.pending_len(&s.view)?
                } else {
                    self.table(&s.view)?.len()
                };
                sizes.push((i, rows, is_delta));
            }
            let mut remaining: Vec<(usize, u64, bool)> = sizes.clone();
            remaining.sort_by_key(|(_, rows, _)| *rows);
            let mut order = Vec::new();
            let mut in_set: Vec<bool> = vec![false; def.sources.len()];
            // First pick: global smallest.
            let (first, _, _) = remaining[0];
            in_set[first] = true;
            order.push(first);
            while order.len() < def.sources.len() {
                let connected: Vec<usize> = (0..def.sources.len())
                    .filter(|&i| !in_set[i] && is_connected(def, &in_set, i))
                    .collect();
                let next = connected
                    .iter()
                    .copied()
                    .min_by_key(|&i| sizes[i].1)
                    .or_else(|| {
                        (0..def.sources.len())
                            .filter(|&i| !in_set[i])
                            .min_by_key(|&i| sizes[i].1)
                    })
                    .expect("sources remain");
                in_set[next] = true;
                order.push(next);
            }
            let join_order = order
                .into_iter()
                .map(|i| {
                    let s = &def.sources[i];
                    let (_, rows, is_delta) = sizes[i];
                    if is_delta {
                        format!("Δ{}({rows})", s.view)
                    } else {
                        format!("{}({rows})", s.view)
                    }
                })
                .collect();
            plans.push(TermPlan {
                delta_sources: subset.iter().cloned().collect(),
                join_order,
                skipped,
            });
        }
        Ok(plans)
    }
}

fn is_connected(def: &uww_relational::ViewDef, in_set: &[bool], candidate: usize) -> bool {
    def.joins.iter().any(|j| {
        match (
            def.source_of_column(&j.left),
            def.source_of_column(&j.right),
        ) {
            (Some(a), Some(b)) => (a == candidate && in_set[b]) || (b == candidate && in_set[a]),
            _ => false,
        }
    })
}

/// Renders an explain result as indented text.
pub fn render_explain(warehouse: &Warehouse, plans: &[ExprPlan]) -> String {
    let g = warehouse.vdag();
    let mut out = String::new();
    for p in plans {
        let _ = writeln!(
            out,
            "{:<30} predicted work {:.0}",
            p.expr.display(g).to_string(),
            p.predicted_work
        );
        for t in &p.terms {
            let _ = writeln!(
                out,
                "    term Δ{{{}}}: {}{}",
                t.delta_sources.join(","),
                t.join_order.join(" ⋈ "),
                if t.skipped {
                    "   [skipped: empty delta]"
                } else {
                    ""
                }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::min_work;
    use crate::sizes::SizeCatalog;
    use std::collections::BTreeMap;
    use uww_relational::{
        tup, DeltaRelation, EquiJoin, OutputColumn, Schema, Table, Value, ValueType, ViewDef,
        ViewOutput, ViewSource,
    };

    fn warehouse() -> Warehouse {
        let mut r = Table::new("R", Schema::of(&[("k", ValueType::Int)]));
        for i in 0..100 {
            r.insert(tup![Value::Int(i)]).unwrap();
        }
        let mut s = Table::new("S", Schema::of(&[("k", ValueType::Int)]));
        for i in 0..10 {
            s.insert(tup![Value::Int(i)]).unwrap();
        }
        let def = ViewDef {
            name: "V".into(),
            sources: vec![ViewSource::named("R"), ViewSource::named("S")],
            joins: vec![EquiJoin::new("R.k", "S.k")],
            filters: vec![],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "R.k")]),
        };
        let mut w = Warehouse::builder()
            .base_table(r)
            .base_table(s)
            .view(def)
            .build()
            .unwrap();
        let mut d = DeltaRelation::new(w.table("R").unwrap().schema().clone());
        d.add(tup![Value::Int(0)], -1);
        let mut changes = BTreeMap::new();
        changes.insert("R".to_string(), d);
        w.load_changes(changes).unwrap();
        w
    }

    #[test]
    fn explain_shows_join_orders_and_skips() {
        let w = warehouse();
        let sizes = SizeCatalog::estimate(&w).unwrap();
        let model = CostModel::new(w.vdag(), &sizes);
        let plan = min_work(w.vdag(), &sizes).unwrap();
        let explained = w.explain(&plan.strategy, &model).unwrap();
        assert_eq!(explained.len(), plan.strategy.len());

        // Comp(V,{R}): ΔR is the smallest operand, so it anchors the join.
        let comp_r = explained
            .iter()
            .find(|p| {
                matches!(&p.expr, UpdateExpr::Comp { over, .. }
                    if over.iter().any(|v| w.vdag().name(*v) == "R"))
            })
            .unwrap();
        assert_eq!(comp_r.terms.len(), 1);
        assert_eq!(comp_r.terms[0].join_order[0], "ΔR(1)");
        assert!(!comp_r.terms[0].skipped);

        // Comp(V,{S}): ΔS is empty -> skipped.
        let comp_s = explained
            .iter()
            .find(|p| {
                matches!(&p.expr, UpdateExpr::Comp { over, .. }
                    if over.iter().any(|v| w.vdag().name(*v) == "S"))
            })
            .unwrap();
        assert!(comp_s.terms[0].skipped);
        assert_eq!(comp_s.predicted_work, 0.0);

        let text = render_explain(&w, &explained);
        assert!(text.contains("Comp(V, {R})"));
        assert!(text.contains("[skipped: empty delta]"));
        assert!(text.contains("⋈"));
    }

    #[test]
    fn explain_predicts_install_state_changes() {
        let w = warehouse();
        let sizes = SizeCatalog::estimate(&w).unwrap();
        let model = CostModel::new(w.vdag(), &sizes);
        let g = w.vdag();
        let v = g.id_of("V").unwrap();
        let r = g.id_of("R").unwrap();
        let s = g.id_of("S").unwrap();
        // Force S's comp after Inst(R): its (skipped) work stays 0, but
        // Comp(V,{R}) before/after install differs in prediction only via R.
        let strat = Strategy::from_exprs(vec![
            UpdateExpr::comp1(v, r),
            UpdateExpr::inst(r),
            UpdateExpr::comp1(v, s),
            UpdateExpr::inst(s),
            UpdateExpr::inst(v),
        ]);
        let explained = w.explain(&strat, &model).unwrap();
        // Inst(R) work = |ΔR| = 1.
        assert_eq!(explained[1].predicted_work, 1.0);
        // Final inst(V): delta estimated by the heuristic; non-negative.
        assert!(explained[4].predicted_work >= 0.0);
    }
}
