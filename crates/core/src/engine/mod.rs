//! The update engine: executes `Comp`/`Inst` strategies against a warehouse.
//!
//! The engine implements the paper's execution model faithfully:
//!
//! * `Comp(W, Y)` evaluates `2^|Y| − 1` maintenance terms ([`eval`]), each
//!   scanning the delta forms of one subset of `Y` and the *current stored*
//!   state of every other source — so every preceding `Inst` changes the work
//!   later terms incur, exactly the effect the strategies trade off;
//! * ΔW accumulates across `Comp` expressions (plus/minus rows for
//!   projection views, additive summary deltas for aggregate views,
//!   [`summary`]);
//! * `Inst(V)` applies ΔV to the stored extent ([`exec`]).
//!
//! A [`WorkMeter`](uww_relational::WorkMeter) counts operand rows scanned
//! and rows installed — the measured counterpart of the linear work metric —
//! and the executor also records wall-clock time per expression.

pub mod eval;
pub mod exec;
pub mod explain;
pub mod pool;
pub mod publish;
pub(crate) mod share;
pub mod summary;
pub mod warehouse;

pub(crate) use summary::raw_to_value as summary_raw_to_value;

pub use exec::{CarryConformance, ExecOptions, ExecutionReport, ExprReport, WindowOutcome};
pub use explain::{render_explain, ExprPlan, TermPlan};
pub use pool::PartitionOptions;
pub use publish::InstallPublisher;
pub use share::{
    plan_strategy_sharing, plan_strategy_sharing_carried, predict_comp_sharing,
    predict_strategy_sharing, surviving_terms, CompSharingPlan, ExprSharingPrediction, OperandUse,
    SharedIdentity, SharingScope, StrategySharingPlan, WindowCarry,
};
pub use summary::{stored_aggregate_schema, SummaryDelta, COUNT_COLUMN};
pub use warehouse::{PendingDelta, Warehouse, WarehouseBuilder};
