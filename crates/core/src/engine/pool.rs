//! A dependency-free work-stealing pool for partition-parallel execution.
//!
//! [`run_tasks`] runs `n` independent index-addressed tasks across a scoped
//! worker set and returns their results **in task order** — the caller's
//! output is a pure function of the task set, never of scheduling. Each
//! worker owns a deque seeded round-robin; it pops its own front and, when
//! empty (and stealing is enabled), steals from the *back* of a victim's
//! deque — the classic split that keeps owner and thief off the same end.
//! Partition skew is what stealing exists for: a worker whose partitions
//! happened to be small drains its deque and takes over the straggler's
//! remaining chunks instead of idling at the barrier.
//!
//! The pool is deliberately scoped and ephemeral (`std::thread::scope`, no
//! global executor): a `Comp` term already runs inside the term-thread
//! scope of `eval_terms_shared`, and nested scoped pools compose without a
//! shared-runtime deadlock surface.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Partition-parallel execution knobs, threaded from the CLI through
/// [`ExecOptions`](crate::engine::exec::ExecOptions) into the term engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionOptions {
    /// Hash partitions per join/aggregate step; `1` (the default) is the
    /// sequential engine, byte-identical to the pre-partitioning code path.
    pub partitions: usize,
    /// Allow idle workers to steal queued partitions from stragglers.
    /// Disabling pins partition `i % workers` to worker `i` — useful for
    /// isolating skew in traces; results are identical either way.
    pub steal: bool,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            partitions: 1,
            steal: true,
        }
    }
}

impl PartitionOptions {
    /// A sequential (single-partition) configuration.
    pub fn sequential() -> PartitionOptions {
        PartitionOptions::default()
    }

    /// `partitions` partitions with stealing on.
    pub fn with_partitions(partitions: usize) -> PartitionOptions {
        PartitionOptions {
            partitions: partitions.max(1),
            steal: true,
        }
    }

    /// True when this configuration actually fans out.
    pub fn parallel(&self) -> bool {
        self.partitions > 1
    }

    /// Worker threads for an `n`-task fan-out under this configuration:
    /// one per partition, capped by the machine's available parallelism —
    /// on a smaller machine the same partitions run on fewer workers with
    /// identical results (the differential tests rely on this).
    pub fn workers(&self, n: usize) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        self.partitions.min(n).min(cores).max(1)
    }
}

/// Runs tasks `0..n` via `f` on `workers` scoped threads with optional
/// work stealing, returning results indexed by task — deterministic
/// regardless of worker count, stealing, or scheduling. `workers <= 1`
/// runs inline with no thread setup at all.
pub fn run_tasks<T, F>(n: usize, workers: usize, steal: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = workers.min(n);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let own = queues[w]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front();
                let task = match own {
                    Some(t) => Some(t),
                    None if steal => (0..workers).filter(|&v| v != w).find_map(|v| {
                        queues[v]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .pop_back()
                    }),
                    None => None,
                };
                match task {
                    Some(i) => {
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(f(i));
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every task executed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order_for_every_configuration() {
        for n in [0, 1, 2, 7, 64] {
            for workers in [1, 2, 3, 8] {
                for steal in [false, true] {
                    let out = run_tasks(n, workers, steal, |i| i * 10);
                    assert_eq!(out, (0..n).map(|i| i * 10).collect::<Vec<_>>());
                }
            }
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_tasks(100, 4, true, |i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn skewed_tasks_complete_under_stealing() {
        // One straggler task plus many small ones: with stealing the pool
        // must still return every result, in order.
        let out = run_tasks(16, 4, true, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn options_cap_workers_and_default_sequential() {
        let o = PartitionOptions::default();
        assert_eq!(o.partitions, 1);
        assert!(o.steal);
        assert!(!o.parallel());
        assert_eq!(o.workers(8), 1);
        let p = PartitionOptions::with_partitions(8);
        assert!(p.parallel());
        assert!(p.workers(8) >= 1);
        assert!(p.workers(3) <= 3);
        assert_eq!(p.workers(0), 1);
        assert_eq!(PartitionOptions::with_partitions(0).partitions, 1);
        assert_eq!(PartitionOptions::sequential(), PartitionOptions::default());
    }
}
