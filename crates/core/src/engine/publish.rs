//! Publishing installs to a shared [`VersionedCatalog`].
//!
//! The engine's private [`Catalog`](uww_relational::Catalog) is what the
//! update strategy mutates; online readers never touch it. When a warehouse
//! has an [`InstallPublisher`] attached, every completed `Inst(V)` atomically
//! publishes the view's new extent as a fresh catalog version, so concurrent
//! readers move from the pre-install extent to the post-install extent with
//! nothing in between. The publisher is the single funnel through which both
//! the sequential executor and the threaded parallel executor make installs
//! visible — parallel stages install at stage boundaries on the coordinating
//! thread, so they flow through the exact same path.

use crate::error::CoreResult;
use std::sync::Arc;
use std::time::Duration;
use uww_relational::{Catalog, DeltaRelation, VersionedCatalog};

/// Publishes each install to a shared [`VersionedCatalog`], under one of the
/// two isolation regimes of paper §7.
///
/// * **MVCC** (`strict == false`): the install runs against the engine's
///   private catalog and is made visible with one atomic version swap.
///   Readers keep serving the pinned pre-install version throughout; the
///   "update window" costs them nothing but staleness.
/// * **Strict** (`strict == true`): the publisher holds the per-view *write*
///   lock (from [`VersionedCatalog::view_lock`]) across install+publish,
///   and strict readers take the matching read lock — so readers of the view
///   stall for the duration of its install, which is exactly the reader
///   latency the paper's window metric is a proxy for.
///
/// `hold` artificially lengthens each install while the view is unpublished
/// (and, under Strict, locked). At bench scale real installs take micro-
/// seconds; the hold makes the strict-vs-mvcc latency gap measurable and
/// deterministic for tests without scaling the data up.
#[derive(Clone, Debug)]
pub struct InstallPublisher {
    catalog: Arc<VersionedCatalog>,
    strict: bool,
    hold: Duration,
}

impl InstallPublisher {
    /// A publisher for `catalog`; `strict` selects the isolation regime.
    pub fn new(catalog: Arc<VersionedCatalog>, strict: bool) -> Self {
        Self {
            catalog,
            strict,
            hold: Duration::ZERO,
        }
    }

    /// Sets the artificial per-install hold time (default: none).
    pub fn with_hold(mut self, hold: Duration) -> Self {
        self.hold = hold;
        self
    }

    /// The shared catalog this publisher publishes to.
    pub fn catalog(&self) -> &Arc<VersionedCatalog> {
        &self.catalog
    }

    /// True when installs run under the Strict (per-view lock) regime.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Installs `delta` into `state`'s extent of `view` and publishes the
    /// result. Under Strict the view's write lock is held for the whole
    /// operation; under MVCC no lock is taken and visibility is the version
    /// swap alone.
    pub(crate) fn install_and_publish(
        &self,
        view: &str,
        delta: &DeltaRelation,
        state: &mut Catalog,
    ) -> CoreResult<u64> {
        if self.strict {
            let lock = self.catalog.view_lock(view);
            let _guard = lock.write().unwrap_or_else(|e| e.into_inner());
            self.apply(view, delta, state)
        } else {
            self.apply(view, delta, state)
        }
    }

    fn apply(&self, view: &str, delta: &DeltaRelation, state: &mut Catalog) -> CoreResult<u64> {
        state.get_mut(view)?.install(delta)?;
        if !self.hold.is_zero() {
            std::thread::sleep(self.hold);
        }
        Ok(self.catalog.publish(state.get(view)?.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_relational::{tup, Schema, Table, Value, ValueType};

    fn seed() -> (Catalog, Arc<VersionedCatalog>) {
        let mut t = Table::new("T", Schema::of(&[("k", ValueType::Int)]));
        t.insert(tup![Value::Int(1)]).unwrap();
        let mut cat = Catalog::new();
        cat.register(t).unwrap();
        let versioned = Arc::new(VersionedCatalog::from_catalog(&cat));
        (cat, versioned)
    }

    fn delta_add(state: &Catalog, k: i64) -> DeltaRelation {
        let mut d = DeltaRelation::new(state.get("T").unwrap().schema().clone());
        d.add(tup![Value::Int(k)], 1);
        d
    }

    #[test]
    fn mvcc_install_publishes_a_new_epoch() {
        let (mut state, versioned) = seed();
        let p = InstallPublisher::new(Arc::clone(&versioned), false);
        let before = versioned.snapshot();
        let d = delta_add(&state, 2);
        let epoch = p.install_and_publish("T", &d, &mut state).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(before.get("T").unwrap().len(), 1);
        assert_eq!(versioned.snapshot().get("T").unwrap().len(), 2);
    }

    #[test]
    fn strict_install_excludes_lock_holders() {
        let (mut state, versioned) = seed();
        let p = InstallPublisher::new(Arc::clone(&versioned), true);
        // A reader holding the view's read lock sees the publish strictly
        // after releasing it: take the lock, install on another thread,
        // observe no new epoch until we drop our guard.
        let lock = versioned.view_lock("T");
        let guard = lock.read().unwrap();
        let vc = Arc::clone(&versioned);
        let handle = std::thread::spawn(move || {
            let d = delta_add(&state, 2);
            p.install_and_publish("T", &d, &mut state).unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(vc.epoch(), 0, "install must wait for the read lock");
        drop(guard);
        assert_eq!(handle.join().unwrap(), 1);
        assert_eq!(versioned.epoch(), 1);
    }
}
