//! Shared-operand term evaluation and its static sharing plan.
//!
//! Within one `Comp(W, Y)` no `Inst` intervenes, so the stored extents and
//! pending deltas every maintenance term scans are *identical* across the
//! `2^|Y| − 1` terms. The paper's model (and [`super::eval::eval_term`])
//! nevertheless charges — and the naive executor performs — a full operand
//! scan and a fresh hash-table build per term. This module is the executor's
//! answer: an [`OperandCache`] materializes each `(source, role)` operand
//! once (single-source filters pushed down and applied once) and interns
//! hash-join build tables keyed by `(source, role, key columns)`, then
//! every term evaluates against the cache — sequentially or across a
//! `std::thread` scope, since terms are read-only and independent.
//!
//! **The intern decision is static.** Because the greedy join order sizes
//! operands by their *cached* (filtered) lengths — never by the accumulated
//! intermediate — every term's join sequence is fully determined before any
//! term runs. [`OperandCache::build`] simulates those sequences and marks a
//! build key **shared** when it occurs in two or more join steps across the
//! `Comp`'s terms; [`join_term`] then interns exactly the shared keys and
//! builds every unshared step fresh. The resulting
//! `hash_tables_built`/`hash_tables_reused` counters equal the plan's
//! [`CompSharingPlan::predicted_builds`]/[`CompSharingPlan::predicted_reuses`]
//! *exactly*, independent of data and of `threads` — the conformance oracle
//! `uww analyze --sharing --verify-against` replays traces against.
//!
//! Three invariants make the cache safe to enable by default:
//!
//! * **output identity** — the cached evaluator replays `eval_term`'s exact
//!   greedy join order and residual filters, and join output is an
//!   orientation-independent multiset, so every term's consolidated
//!   fragment, the merged `ΔW`, the final state, and the WAL `CD` payload
//!   (canonically sorted) are byte-identical to the per-term path;
//! * **logical-meter identity** — each term still charges
//!   [`WorkMeter::scan_logical`] for the full raw operand it *would* have
//!   scanned, so `operand_rows_scanned` (the planner's linear metric) and
//!   `rows_emitted` are unchanged; only `physical_rows_touched` and the
//!   hash-table counters reveal the savings;
//! * **static conformance** — unlike the per-term path, the shared path
//!   performs every planned join step even when an intermediate empties
//!   (joining an empty side costs nothing and emits nothing), so the
//!   hash-table counters never drift below the static prediction.

use crate::engine::eval;
use crate::engine::exec::{meter_attrs, term_label};
use crate::engine::warehouse::{scan_operand, Warehouse};
use crate::error::{CoreError, CoreResult};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex};
use uww_obs as obs;
use uww_relational::ops::{self, BuiltTable, GroupAcc, SignedRows};
use uww_relational::{RelResult, Schema, Tuple, ViewDef, ViewOutput, WorkMeter};
use uww_vdag::{Strategy, UpdateExpr};

/// How a `Comp`'s term set is evaluated.
#[derive(Clone, Copy, Debug)]
pub struct TermOptions {
    /// Evaluate terms through a shared [`OperandCache`] (default). Off
    /// reproduces the historical per-term scans — useful for A/B metering.
    pub share: bool,
    /// Worker threads for term evaluation; `0` or `1` evaluates inline.
    /// Only meaningful with `share` (the per-term path is the baseline).
    pub threads: usize,
}

impl Default for TermOptions {
    fn default() -> Self {
        TermOptions {
            share: true,
            threads: 0,
        }
    }
}

/// One materialized operand: the filtered rows every term sees, plus the
/// raw (pre-filter) extent size the logical metric charges per term.
struct CachedOperand {
    rows: Arc<SignedRows>,
    raw_len: u64,
}

/// Intern key for a build table: `(source index, as_delta, key columns)`.
type TableKey = (usize, bool, Vec<usize>);

/// One distinct keyed build inside a `Comp`'s term set — a node of the
/// sharing-opportunity graph. Two uses share a hash table exactly when
/// their whole `(source position, role, key columns)` key matches; the
/// analyzer's `UWW013` flags uses equal modulo the source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OperandUse {
    /// Source view name.
    pub source: String,
    /// Source alias (distinct for self-join aliases).
    pub alias: String,
    /// Source position in the view definition — the cache-key component
    /// that distinguishes aliases of one view.
    pub source_idx: usize,
    /// True when the operand is the delta form of the source.
    pub as_delta: bool,
    /// Build-key column names, in key order.
    pub key_cols: Vec<String>,
    /// Rendered pushed-down filters applied to this operand.
    pub filters: Vec<String>,
    /// Filtered operand cardinality (rows one build scans).
    pub rows: u64,
    /// Keyed join steps using this exact key across the `Comp`'s terms.
    pub occurrences: u64,
}

/// The static sharing plan of one `Comp`: the exact hash-table counters the
/// shared engine will produce, plus every distinct keyed operand use.
#[derive(Clone, Debug, Default)]
pub struct CompSharingPlan {
    /// Surviving terms the plan covers (footnote-5 filter applied).
    pub terms: usize,
    /// Hash tables the shared engine will build — one per distinct key.
    pub predicted_builds: u64,
    /// Reuses the shared engine will record — extra uses of shared keys.
    pub predicted_reuses: u64,
    /// One entry per distinct keyed build, sorted by key.
    pub operands: Vec<OperandUse>,
}

/// Per-`Comp` cache of materialized operands and interned build tables.
///
/// Built once per `Comp` from the terms that will actually run, so a
/// `Comp` whose every term is skipped (empty deltas, footnote 5) still
/// costs nothing. Shared by reference across term-evaluation threads.
pub(crate) struct OperandCache {
    /// Qualified schema per source, as `eval_term` computes it.
    qschemas: Vec<Schema>,
    /// Indices into `def.filters` that span multiple sources — applied
    /// per term after the joins, exactly like the per-term path.
    residual: Vec<usize>,
    /// `[stored, delta]` slot per source index; `None` when no surviving
    /// term uses that role.
    slots: Vec<[Option<CachedOperand>; 2]>,
    /// Build keys the static plan marked shared (≥ 2 uses across terms);
    /// only these route through the intern table.
    shared: HashSet<TableKey>,
    /// The static plan itself, for prediction consumers.
    plan: CompSharingPlan,
    /// Interned build tables: `(source, as_delta, key columns)` → table.
    /// The lock is held across the build so `hash_tables_built` counts
    /// each distinct key exactly once even under threads.
    tables: Mutex<HashMap<TableKey, Arc<BuiltTable>>>,
}

impl OperandCache {
    /// Materializes every operand role the surviving `terms` need and
    /// simulates every term's join sequence to fix the shared-key set. The
    /// returned meter carries the *physical* cost of materialization; the
    /// logical scans are charged per term during evaluation. Operands are
    /// read once per distinct `(view, role)` — aliased self-join sources
    /// share the raw read and diverge only in their pushed-down filters.
    pub(crate) fn build(
        w: &Warehouse,
        def: &ViewDef,
        terms: &[BTreeSet<String>],
    ) -> CoreResult<(OperandCache, WorkMeter)> {
        let n = def.sources.len();
        let state = w.state();
        let pending = w.pending_map();

        let mut qschemas = Vec::with_capacity(n);
        for s in &def.sources {
            qschemas.push(
                state
                    .get(&s.view)
                    .map(|t| t.schema().clone())
                    .map_err(CoreError::Rel)?
                    .qualified(&s.alias),
            );
        }

        let mut local: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut residual = Vec::new();
        for (fi, f) in def.filters.iter().enumerate() {
            match eval::single_source_of(def, f) {
                Some(i) => local[i].push(fi),
                None => residual.push(fi),
            }
        }

        let mut need = vec![[false, false]; n];
        for t in terms {
            for (i, s) in def.sources.iter().enumerate() {
                need[i][usize::from(t.contains(&s.view))] = true;
            }
        }

        let mut meter = WorkMeter::new();
        // Raw reads deduplicated by (view, role).
        let mut raw: HashMap<(String, bool), (Arc<SignedRows>, u64)> = HashMap::new();
        let mut slots: Vec<[Option<CachedOperand>; 2]> = Vec::with_capacity(n);
        for (i, s) in def.sources.iter().enumerate() {
            let mut pair: [Option<CachedOperand>; 2] = [None, None];
            for (role, slot) in pair.iter_mut().enumerate() {
                if !need[i][role] {
                    continue;
                }
                let as_delta = role == 1;
                let key = (s.view.clone(), as_delta);
                let (rows, raw_len) = match raw.get(&key) {
                    Some(hit) => hit.clone(),
                    None => {
                        // The probe meter captures the raw extent size; only
                        // its physical side is real — the logical charge is
                        // made per term to keep the paper's metric intact.
                        let mut probe = WorkMeter::new();
                        let rows = scan_operand(state, pending, &s.view, as_delta, &mut probe)
                            .map_err(CoreError::Rel)?;
                        meter.physical_rows_touched += probe.physical_rows_touched;
                        let entry = (Arc::new(rows), probe.operand_rows_scanned);
                        raw.insert(key, entry.clone());
                        entry
                    }
                };
                let rows = if local[i].is_empty() {
                    rows
                } else {
                    let mut filtered = (*rows).clone();
                    for &fi in &local[i] {
                        let bound = def.filters[fi].bind(&qschemas[i]).map_err(CoreError::Rel)?;
                        filtered = ops::filter(filtered, &bound).map_err(CoreError::Rel)?;
                    }
                    Arc::new(filtered)
                };
                *slot = Some(CachedOperand { rows, raw_len });
            }
            slots.push(pair);
        }

        // Static join-plan simulation: the greedy order sizes operands by
        // their cached lengths only, so every term's keyed steps are known
        // here, before any term runs.
        let size_of = |i: usize, as_delta: bool| -> usize {
            slots[i][usize::from(as_delta)]
                .as_ref()
                .map_or(usize::MAX, |op| op.rows.len())
        };
        let mut uses: BTreeMap<TableKey, u64> = BTreeMap::new();
        let mut keyed_steps = 0u64;
        for t in terms {
            for key in plan_term_steps(def, &qschemas, &size_of, t)
                .map_err(CoreError::Rel)?
                .into_iter()
                .flatten()
            {
                *uses.entry(key).or_insert(0) += 1;
                keyed_steps += 1;
            }
        }
        let shared: HashSet<TableKey> = uses
            .iter()
            .filter(|&(_, &count)| count >= 2)
            .map(|(k, _)| k.clone())
            .collect();
        let operands = uses
            .iter()
            .map(|(key, &occurrences)| {
                let (i, as_delta, cols) = key;
                let s = &def.sources[*i];
                OperandUse {
                    source: s.view.clone(),
                    alias: s.alias.clone(),
                    source_idx: *i,
                    as_delta: *as_delta,
                    key_cols: cols
                        .iter()
                        .map(|&c| qschemas[*i].column(c).name.clone())
                        .collect(),
                    filters: local[*i]
                        .iter()
                        .map(|&fi| format!("{:?}", def.filters[fi]))
                        .collect(),
                    rows: size_of(*i, *as_delta) as u64,
                    occurrences,
                }
            })
            .collect();
        let plan = CompSharingPlan {
            terms: terms.len(),
            predicted_builds: uses.len() as u64,
            predicted_reuses: keyed_steps - uses.len() as u64,
            operands,
        };

        Ok((
            OperandCache {
                qschemas,
                residual,
                slots,
                shared,
                plan,
                tables: Mutex::new(HashMap::new()),
            },
            meter,
        ))
    }

    fn operand(&self, i: usize, as_delta: bool) -> &CachedOperand {
        self.slots[i][usize::from(as_delta)]
            .as_ref()
            .expect("operand role materialized for every surviving term")
    }

    /// The interned build table for operand `i` in role `as_delta` over
    /// `keys`: built (and charged) once, reused (and counted) thereafter.
    fn table(
        &self,
        i: usize,
        as_delta: bool,
        keys: &[usize],
        meter: &mut WorkMeter,
    ) -> Arc<BuiltTable> {
        let mut map = self.tables.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(&(i, as_delta, keys.to_vec())) {
            Some(t) => {
                meter.hash_reuse();
                Arc::clone(t)
            }
            None => {
                let t = Arc::new(ops::build_table(
                    &self.operand(i, as_delta).rows,
                    keys,
                    meter,
                ));
                map.insert((i, as_delta, keys.to_vec()), Arc::clone(&t));
                t
            }
        }
    }
}

/// Simulates one term's greedy join sequence against the cached operand
/// sizes, returning the build key of every step — `None` for cross joins.
/// Mirrors [`join_term`] exactly: start from the smallest operand, then
/// repeatedly join the smallest connected one, sizing joined operands as
/// `usize::MAX`; the intermediate's size never participates.
fn plan_term_steps(
    def: &ViewDef,
    qschemas: &[Schema],
    size_of: &dyn Fn(usize, bool) -> usize,
    subset: &BTreeSet<String>,
) -> RelResult<Vec<Option<TableKey>>> {
    let n = def.sources.len();
    let role: Vec<bool> = def
        .sources
        .iter()
        .map(|s| subset.contains(&s.view))
        .collect();
    let mut in_set = vec![false; n];
    let size = |in_set: &[bool], i: usize| {
        if in_set[i] {
            usize::MAX
        } else {
            size_of(i, role[i])
        }
    };
    let start = (0..n)
        .min_by_key(|&i| size(&in_set, i))
        .expect("at least one source");
    let mut joined_schema = qschemas[start].clone();
    in_set[start] = true;
    let mut steps = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        let next = eval::pick_next(def, &in_set, |i| size(&in_set, i));
        let (lk, rk) = eval::join_keys(def, &in_set, next, &joined_schema, &qschemas[next])?;
        steps.push(if lk.is_empty() {
            None
        } else {
            Some((next, role[next], rk))
        });
        joined_schema = joined_schema.concat(&qschemas[next])?;
        in_set[next] = true;
    }
    Ok(steps)
}

/// A term's projected (or grouped) output, ready to fold into the `Comp`'s
/// pending fragment in term order.
pub(crate) enum TermOut {
    /// Consolidated projection delta (non-aggregate views).
    Rows(SignedRows),
    /// Per-group accumulator deltas (aggregate views).
    Groups(HashMap<Tuple, GroupAcc>),
}

/// Evaluates one maintenance term against the cache — the output-identical
/// mirror of [`eval::eval_term`] plus the downstream projection/grouping.
pub(crate) fn eval_term_cached(
    def: &ViewDef,
    cache: &OperandCache,
    subset: &BTreeSet<String>,
    meter: &mut WorkMeter,
) -> CoreResult<TermOut> {
    let (schema, rows) = join_term(def, cache, subset, meter).map_err(CoreError::Rel)?;
    match &def.output {
        ViewOutput::Project(_) => {
            let out = eval::project_output(def, &schema, &rows, meter).map_err(CoreError::Rel)?;
            Ok(TermOut::Rows(ops::consolidate(out)))
        }
        ViewOutput::Aggregate { .. } => {
            let groups = eval::group_output(def, &schema, &rows).map_err(CoreError::Rel)?;
            Ok(TermOut::Groups(groups))
        }
    }
}

fn join_term(
    def: &ViewDef,
    cache: &OperandCache,
    subset: &BTreeSet<String>,
    meter: &mut WorkMeter,
) -> RelResult<(Schema, SignedRows)> {
    meter.term();
    let n = def.sources.len();

    // Charge the logical scans the per-term path performs when it loads
    // each operand, and pin the role each source plays in this term.
    let mut role = Vec::with_capacity(n);
    let mut avail: Vec<Option<&CachedOperand>> = Vec::with_capacity(n);
    for s in &def.sources {
        let as_delta = subset.contains(&s.view);
        let op = cache.operand(role.len(), as_delta);
        meter.scan_logical(op.raw_len);
        role.push(as_delta);
        avail.push(Some(op));
    }

    let size = |avail: &[Option<&CachedOperand>], i: usize| {
        avail[i].map_or(usize::MAX, |op| op.rows.len())
    };
    let start = (0..n)
        .min_by_key(|&i| size(&avail, i))
        .expect("at least one source");
    let mut joined_schema = cache.qschemas[start].clone();
    let mut joined_rows: SignedRows = (*avail[start].take().expect("start operand").rows).clone();
    let mut in_set = vec![false; n];
    in_set[start] = true;

    for _ in 1..n {
        let next = eval::pick_next(def, &in_set, |i| size(&avail, i));
        let (lk, rk) = eval::join_keys(def, &in_set, next, &joined_schema, &cache.qschemas[next])?;
        let right = avail[next].take().expect("operand joined twice");
        joined_rows = if lk.is_empty() {
            let mut sp = obs::span(obs::SpanKind::Operator, "cross_join");
            let out = ops::cross_join(&joined_rows, &right.rows, meter);
            sp.attr_u64(obs::keys::ROWS, out.len() as u64);
            out
        } else if cache.shared.contains(&(next, role[next], rk.clone())) {
            // The static plan marked this (source, role, keys) as repeating
            // across the Comp's terms: intern the pure-operand table — the
            // first use builds, every other use reuses, regardless of how
            // large the accumulated intermediate happens to be.
            let table = {
                let mut sp = obs::span(obs::SpanKind::Operator, "hash_table_intern");
                sp.attr_u64(obs::keys::ROWS, right.rows.len() as u64);
                cache.table(next, role[next], &rk, meter)
            };
            let mut sp = obs::span(obs::SpanKind::Operator, "hash_probe");
            let out = ops::probe_table(&right.rows, &table, &joined_rows, &lk, false, meter);
            sp.attr_u64(obs::keys::ROWS, out.len() as u64);
            out
        } else if joined_rows.len() <= right.rows.len() {
            // Unshared step, intermediate smaller: build fresh exactly as
            // hash_join would — one build, no reuse, either orientation.
            let table = {
                let mut sp = obs::span(obs::SpanKind::Operator, "hash_build");
                sp.attr_u64(obs::keys::ROWS, joined_rows.len() as u64);
                ops::build_table(&joined_rows, &lk, meter)
            };
            let mut sp = obs::span(obs::SpanKind::Operator, "hash_probe");
            let out = ops::probe_table(&joined_rows, &table, &right.rows, &rk, true, meter);
            sp.attr_u64(obs::keys::ROWS, out.len() as u64);
            out
        } else {
            // Unshared step, operand smaller: build fresh over the operand
            // without interning — the key occurs once, so a cache entry
            // would never be reused.
            let table = {
                let mut sp = obs::span(obs::SpanKind::Operator, "hash_build");
                sp.attr_u64(obs::keys::ROWS, right.rows.len() as u64);
                ops::build_table(&right.rows, &rk, meter)
            };
            let mut sp = obs::span(obs::SpanKind::Operator, "hash_probe");
            let out = ops::probe_table(&right.rows, &table, &joined_rows, &lk, false, meter);
            sp.attr_u64(obs::keys::ROWS, out.len() as u64);
            out
        };
        joined_schema = joined_schema.concat(&cache.qschemas[next])?;
        in_set[next] = true;
        // Deliberately no empty-intermediate short circuit here (the
        // per-term baseline keeps it): the static plan prices every step,
        // and joining an empty intermediate emits nothing and touches only
        // the planned build — so the hash-table counters match the
        // prediction exactly while the output bytes are unaffected.
    }

    if !cache.residual.is_empty() {
        let mut sp = obs::span(obs::SpanKind::Operator, "filter");
        for &fi in &cache.residual {
            let bound = def.filters[fi].bind(&joined_schema)?;
            joined_rows = ops::filter(joined_rows, &bound)?;
        }
        sp.attr_u64(obs::keys::ROWS, joined_rows.len() as u64);
    }
    Ok((joined_schema, joined_rows))
}

/// Evaluates `terms` through a fresh cache, inline or across `threads`
/// workers, returning per-term outputs **in term order** together with the
/// folded meter (cache materialization + every term).
pub(crate) fn eval_terms_shared(
    w: &Warehouse,
    def: &ViewDef,
    terms: &[BTreeSet<String>],
    threads: usize,
) -> CoreResult<(Vec<TermOut>, WorkMeter)> {
    let (cache, mut total) = {
        let mut sp = obs::span(obs::SpanKind::Operator, "materialize_operands");
        let (cache, meter) = OperandCache::build(w, def, terms)?;
        sp.attr_u64(obs::keys::PHYSICAL_ROWS, meter.physical_rows_touched);
        sp.attr_u64(
            obs::keys::PREDICTED_HASH_BUILDS,
            cache.plan.predicted_builds,
        );
        sp.attr_u64(
            obs::keys::PREDICTED_HASH_REUSES,
            cache.plan.predicted_reuses,
        );
        (cache, meter)
    };
    let workers = threads.min(terms.len());
    // Worker threads do not inherit the spawner's span stack; parent every
    // term span to the enclosing expression span explicitly.
    let parent = obs::current_span_id();
    let eval_one = |subset: &BTreeSet<String>| {
        let mut span = obs::span_under_dyn(obs::SpanKind::Term, parent, || term_label(subset));
        let mut meter = WorkMeter::new();
        let out = eval_term_cached(def, &cache, subset, &mut meter);
        meter_attrs(&mut span, &meter);
        out.map(|out| (meter, out))
    };
    let mut results: Vec<Option<CoreResult<(WorkMeter, TermOut)>>> = if workers > 1 {
        // Mirror execute_parallel_threaded: scoped workers over a shared
        // read-only warehouse/cache. Worker k takes terms k, k+W, k+2W, …
        // and results are re-assembled in term order, so the merged
        // fragment and meter are independent of scheduling.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let eval_one = &eval_one;
                    scope.spawn(move || {
                        terms
                            .iter()
                            .enumerate()
                            .skip(worker)
                            .step_by(workers)
                            .map(|(i, subset)| (i, eval_one(subset)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut slots: Vec<Option<CoreResult<(WorkMeter, TermOut)>>> =
                (0..terms.len()).map(|_| None).collect();
            for h in handles {
                for (i, r) in h.join().expect("term worker panicked") {
                    slots[i] = Some(r);
                }
            }
            slots
        })
    } else {
        terms.iter().map(|subset| Some(eval_one(subset))).collect()
    };

    let mut outs = Vec::with_capacity(results.len());
    for r in results.drain(..) {
        let (meter, out) = r.expect("every term evaluated")?;
        fold_term_meter(&mut total, &meter);
        outs.push(out);
    }
    Ok((outs, total))
}

/// Folds the counters a `Comp` contributes to the warehouse meter —
/// deliberately not `rows_installed` or the expression counts, which the
/// install funnel and `exec_comp_journaled` own.
pub(crate) fn fold_term_meter(total: &mut WorkMeter, m: &WorkMeter) {
    total.operand_rows_scanned += m.operand_rows_scanned;
    total.rows_emitted += m.rows_emitted;
    total.terms_evaluated += m.terms_evaluated;
    total.physical_rows_touched += m.physical_rows_touched;
    total.hash_tables_built += m.hash_tables_built;
    total.hash_tables_reused += m.hash_tables_reused;
}

/// The surviving terms of a `Comp` over `over_names` under the footnote-5
/// empty-delta filter — exactly the term set the executor evaluates, and
/// therefore the term set every static prediction must cover.
pub fn surviving_terms(w: &Warehouse, over_names: &BTreeSet<String>) -> Vec<BTreeSet<String>> {
    eval::nonempty_subsets(over_names)
        .into_iter()
        .filter(|subset| {
            subset
                .iter()
                .all(|v| w.pending(v).is_some_and(|d| !d.is_empty()))
        })
        .collect()
}

/// Statically predicts the shared engine's hash-table counters and operand
/// uses for one `Comp(view, over)` against the warehouse's **current**
/// state and pending deltas. The prediction is exact: executing that
/// `Comp` next (with term sharing on, any thread count) produces precisely
/// `predicted_builds`/`predicted_reuses`.
pub fn predict_comp_sharing(
    w: &Warehouse,
    view: &str,
    over_names: &BTreeSet<String>,
) -> CoreResult<CompSharingPlan> {
    let def = w
        .def(view)
        .ok_or_else(|| CoreError::Warehouse(format!("no definition for {view}")))?
        .clone();
    let terms = surviving_terms(w, over_names);
    let (cache, _) = OperandCache::build(w, &def, &terms)?;
    Ok(cache.plan)
}

/// The static sharing prediction for one strategy expression.
#[derive(Clone, Debug)]
pub struct ExprSharingPrediction {
    /// Target view name.
    pub view: String,
    /// `"comp"` or `"inst"` — matches the `expr_kind` span attribute.
    pub kind: &'static str,
    /// The `Comp`'s plan; zeroed for `Inst` (installs build no tables).
    pub plan: CompSharingPlan,
}

/// Predicts the shared engine's per-expression hash-table counters for a
/// whole strategy by replaying it on a scratch clone: each `Comp` is
/// planned against the state the preceding expressions produce (derived
/// deltas — and hence operand sizes and join orders — depend on it), then
/// the expression executes to advance the clone. Validation is skipped on
/// the single-expression steps; the strategy itself is not judged here.
pub fn predict_strategy_sharing(
    w: &Warehouse,
    strategy: &Strategy,
) -> CoreResult<Vec<ExprSharingPrediction>> {
    let mut scratch = w.clone();
    let mut out = Vec::with_capacity(strategy.exprs.len());
    for expr in &strategy.exprs {
        let pred = match expr {
            UpdateExpr::Comp { view, over } => {
                let name = scratch.vdag().name(*view).to_string();
                let over_names: BTreeSet<String> = over
                    .iter()
                    .map(|v| scratch.vdag().name(*v).to_string())
                    .collect();
                let plan = predict_comp_sharing(&scratch, &name, &over_names)?;
                ExprSharingPrediction {
                    view: name,
                    kind: "comp",
                    plan,
                }
            }
            UpdateExpr::Inst(v) => ExprSharingPrediction {
                view: scratch.vdag().name(*v).to_string(),
                kind: "inst",
                plan: CompSharingPlan::default(),
            },
        };
        out.push(pred);
        scratch.execute_with(
            &Strategy::from_exprs(vec![expr.clone()]),
            crate::engine::exec::ExecOptions {
                validate: false,
                ..Default::default()
            },
        )?;
    }
    Ok(out)
}
