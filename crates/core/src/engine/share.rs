//! Shared-operand term evaluation and its static sharing plan.
//!
//! Within one `Comp(W, Y)` no `Inst` intervenes, so the stored extents and
//! pending deltas every maintenance term scans are *identical* across the
//! `2^|Y| − 1` terms. The paper's model (and [`super::eval::eval_term`])
//! nevertheless charges — and the naive executor performs — a full operand
//! scan and a fresh hash-table build per term. This module is the executor's
//! answer: an [`OperandCache`] materializes each `(source, role)` operand
//! once (single-source filters pushed down and applied once) and interns
//! hash-join build tables keyed by `(source, role, key columns)`, then
//! every term evaluates against the cache — sequentially or across a
//! `std::thread` scope, since terms are read-only and independent.
//!
//! **The intern decision is static.** Because the greedy join order sizes
//! operands by their *cached* (filtered) lengths — never by the accumulated
//! intermediate — every term's join sequence is fully determined before any
//! term runs. [`OperandCache::build`] simulates those sequences and marks a
//! build key **shared** when it occurs in two or more join steps across the
//! `Comp`'s terms; [`join_term`] then interns exactly the shared keys and
//! builds every unshared step fresh. The resulting
//! `hash_tables_built`/`hash_tables_reused` counters equal the plan's
//! [`CompSharingPlan::predicted_builds`]/[`CompSharingPlan::predicted_reuses`]
//! *exactly*, independent of data and of `threads` — the conformance oracle
//! `uww analyze --sharing --verify-against` replays traces against.
//!
//! Three invariants make the cache safe to enable by default:
//!
//! * **output identity** — the cached evaluator replays `eval_term`'s exact
//!   greedy join order and residual filters, and join output is an
//!   orientation-independent multiset, so every term's consolidated
//!   fragment, the merged `ΔW`, the final state, and the WAL `CD` payload
//!   (canonically sorted) are byte-identical to the per-term path;
//! * **logical-meter identity** — each term still charges
//!   [`WorkMeter::scan_logical`] for the full raw operand it *would* have
//!   scanned, so `operand_rows_scanned` (the planner's linear metric) and
//!   `rows_emitted` are unchanged; only `physical_rows_touched` and the
//!   hash-table counters reveal the savings;
//! * **static conformance** — unlike the per-term path, the shared path
//!   performs every planned join step even when an intermediate empties
//!   (joining an empty side costs nothing and emits nothing), so the
//!   hash-table counters never drift below the static prediction.
//!
//! **Strategy scope.** A [`StrategyCache`] lifts both reuse axes across
//! `Comp` boundaries: raw `(view, role)` materializations and hash-join
//! build tables keyed by [`SharedIdentity`] survive from one expression to
//! the next until an expression *modifies* the underlying operand —
//! decided by `uww_analysis::modifies_operand`, the same liveness predicate
//! the `UWW012` analyzer rule prices. Which keys consume an earlier table
//! and which publish one for later expressions is fixed statically by
//! [`plan_strategy_sharing`] (a lookahead over the replayed per-`Comp`
//! plans), so the cross-expression counters are exact by construction and
//! the executed bytes never depend on cache state: equal identity over an
//! unmodified operand means element-identical filtered rows, hence an
//! interchangeable build table.

use crate::engine::eval;
use crate::engine::exec::{meter_attrs, term_label};
use crate::engine::pool::{self, PartitionOptions};
use crate::engine::warehouse::{scan_operand, PendingDelta, Warehouse};
use crate::error::{CoreError, CoreResult};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use uww_obs as obs;
use uww_relational::ops::{self, GroupAcc, PartitionedTable, Partitioner, SignedRows};
use uww_relational::{
    BoundPredicate, Catalog, RelResult, Schema, Tuple, ViewDef, ViewOutput, WorkMeter,
};
use uww_vdag::{Strategy, UpdateExpr, Vdag};

/// How a `Comp`'s term set is evaluated.
#[derive(Clone, Copy, Debug)]
pub struct TermOptions {
    /// Evaluate terms through a shared [`OperandCache`] (default). Off
    /// reproduces the historical per-term scans — useful for A/B metering.
    pub share: bool,
    /// Worker threads for term evaluation; `0` or `1` evaluates inline.
    /// Only meaningful with `share` (the per-term path is the baseline).
    pub threads: usize,
    /// Intra-term partition parallelism: hash-partitioned joins and chunked
    /// aggregation on a work-stealing pool. `PartitionOptions::default()`
    /// (one partition) is the sequential engine.
    pub partition: PartitionOptions,
}

impl Default for TermOptions {
    fn default() -> Self {
        TermOptions {
            share: true,
            threads: 0,
            partition: PartitionOptions::default(),
        }
    }
}

/// One materialized operand: the filtered rows every term sees, plus the
/// raw (pre-filter) extent size the logical metric charges per term.
struct CachedOperand {
    rows: Arc<SignedRows>,
    raw_len: u64,
}

/// Intern key for a build table: `(source index, as_delta, key columns)`.
type TableKey = (usize, bool, Vec<usize>);

/// One distinct keyed build inside a `Comp`'s term set — a node of the
/// sharing-opportunity graph. Two uses share a hash table exactly when
/// their whole `(source position, role, key columns)` key matches; the
/// analyzer's `UWW013` flags uses equal modulo the source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OperandUse {
    /// Source view name.
    pub source: String,
    /// Source alias (distinct for self-join aliases).
    pub alias: String,
    /// Source position in the view definition — the cache-key component
    /// that distinguishes aliases of one view.
    pub source_idx: usize,
    /// True when the operand is the delta form of the source.
    pub as_delta: bool,
    /// Build-key column names, in key order.
    pub key_cols: Vec<String>,
    /// Rendered pushed-down filters applied to this operand.
    pub filters: Vec<String>,
    /// Filtered operand cardinality (rows one build scans).
    pub rows: u64,
    /// Keyed join steps using this exact key across the `Comp`'s terms.
    pub occurrences: u64,
}

/// The strategy-scope sharing identity of a keyed build: everything the
/// table's contents depend on — source view, role, key column names (alias
/// qualified), and the rendered pushed-down filters — but *not* the source
/// position, so identical uses from different view definitions match. Two
/// uses with equal identity over an operand no expression modified in
/// between materialize element-identical filtered rows and therefore build
/// interchangeable hash tables.
pub type SharedIdentity = (String, bool, Vec<String>, Vec<String>);

impl OperandUse {
    /// This use's strategy-scope sharing identity.
    pub fn identity(&self) -> SharedIdentity {
        (
            self.source.clone(),
            self.as_delta,
            self.key_cols.clone(),
            self.filters.clone(),
        )
    }
}

/// The static sharing plan of one `Comp`: the exact hash-table counters the
/// shared engine will produce, plus every distinct keyed operand use.
#[derive(Clone, Debug, Default)]
pub struct CompSharingPlan {
    /// Surviving terms the plan covers (footnote-5 filter applied).
    pub terms: usize,
    /// Hash tables the shared engine will build — one per distinct key.
    pub predicted_builds: u64,
    /// Reuses the shared engine will record — extra uses of shared keys.
    pub predicted_reuses: u64,
    /// Of `predicted_reuses`, join steps served from a hash table built by
    /// an *earlier expression* (strategy scope only; zero otherwise).
    pub cross_reuses: u64,
    /// Raw operand reads served from the strategy-scope cache instead of
    /// re-scanning the stored/delta extent (strategy scope only).
    pub cached_reads: u64,
    /// Filtered rows of the consumed keys — the hash builds this `Comp`
    /// avoids by probing earlier expressions' tables, which is what
    /// [`CostModel::cross_share_saving`](crate::cost::CostModel::cross_share_saving)
    /// prices (strategy scope only).
    pub cross_saved_rows: u64,
    /// Distinct raw `(view, as-delta)` reads the materialization performs,
    /// sorted — the strategy cache's unit of materialization reuse.
    pub reads: Vec<(String, bool)>,
    /// One entry per distinct keyed build, sorted by key.
    pub operands: Vec<OperandUse>,
}

/// The statically planned cache directives for one strategy expression:
/// which build identities this `Comp` serves from an earlier expression's
/// table, and which it must intern and publish because a later live
/// expression will consume them. Empty for `Inst` and for every
/// expression when strategy-scope sharing is off.
#[derive(Clone, Debug, Default)]
pub(crate) struct CompCacheDirectives {
    /// Identities served from a table built by an earlier expression.
    consume: HashSet<SharedIdentity>,
    /// Identities to intern locally and publish for later expressions.
    publish: HashSet<SharedIdentity>,
    /// Raw `(view, as-delta)` reads served from the strategy cache instead
    /// of re-scanning. Like `consume`, fixed statically so the measured
    /// `operand_reads_cached` equals the plan by construction.
    raw_consume: HashSet<(String, bool)>,
}

/// Strategy-scope operand cache: raw materializations and build tables
/// that survive across `Comp` boundaries until the operand is modified.
///
/// The cache is *directive-driven*: [`plan_strategy_sharing`] fixes, per
/// expression, exactly which identities consume and which publish, so the
/// measured cross-expression counters equal the static plan by
/// construction. After every executed expression the owner must call
/// [`StrategyCache::invalidate_after`], which drops entries through the
/// same `uww_analysis::modifies_operand` predicate the `UWW012` analyzer
/// rule prices — an operand an `Inst` (or delta-extending `Comp`) touched
/// can never serve a stale copy.
/// Live raw `(view, as-delta)` materializations, with the raw extent
/// length the logical metric charges per term and a flag marking entries
/// carried in from a previous update window.
type RawCache = HashMap<(String, bool), (Arc<SignedRows>, u64, bool)>;

/// Build tables and raw operand materializations that outlived one update
/// window: every entry's operand provably went unmodified by the window
/// that built it (the `UWW012` liveness predicate dropped everything else,
/// and delta-role entries never cross a window boundary — the next batch
/// replaces every pending delta). Feed it to
/// [`Warehouse::execute_carried`](crate::engine::Warehouse::execute_carried)
/// to seed the next window's strategy cache, or drop it (always do so after
/// crash recovery — a recovered window rebuilds from the WAL snapshot and
/// carries nothing).
#[derive(Default)]
pub struct WindowCarry {
    tables: HashMap<SharedIdentity, Arc<PartitionedTable>>,
    raws: HashMap<(String, bool), (Arc<SignedRows>, u64)>,
    /// The partition count the carried tables were built at. A carry only
    /// seeds a window run at the *same* partitioning — the executor drops a
    /// mismatched carry before planning, so a table split `P` ways can never
    /// serve a probe split `Q` ways (a cross-partition stale hit).
    partitions: usize,
}

impl std::fmt::Debug for WindowCarry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowCarry")
            .field("tables", &self.tables.len())
            .field("raws", &self.raws.len())
            .field("partitions", &self.partitions)
            .finish()
    }
}

impl WindowCarry {
    /// A carry with no surviving entries (what the first window starts from).
    pub fn empty() -> WindowCarry {
        WindowCarry::default()
    }

    /// True when nothing survived the previous window.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.raws.is_empty()
    }

    /// The partition count the carried build tables were split at.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of carried hash-join build tables.
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of carried raw operand materializations.
    pub fn raws(&self) -> usize {
        self.raws.len()
    }

    /// The carried identity sets, for seeding the next window's liveness walk.
    pub(crate) fn seed(&self) -> (HashSet<SharedIdentity>, HashSet<(String, bool)>) {
        (
            self.tables.keys().cloned().collect(),
            self.raws.keys().cloned().collect(),
        )
    }
}

pub(crate) struct StrategyCache {
    /// Per-expression directives, indexed by strategy position.
    directives: Vec<CompCacheDirectives>,
    /// Live build tables by identity; the flag marks carried-in entries.
    tables: Mutex<HashMap<SharedIdentity, (Arc<PartitionedTable>, bool)>>,
    raws: Mutex<RawCache>,
    /// Conformance counters: cross-reuses / cached reads served from an
    /// entry carried in from the previous window (per use, like the meter).
    carried_table_hits: AtomicU64,
    carried_raw_hits: AtomicU64,
}

impl StrategyCache {
    /// A cache primed with the plan's per-expression directives.
    pub(crate) fn new(directives: Vec<CompCacheDirectives>) -> StrategyCache {
        StrategyCache::with_carry(directives, WindowCarry::empty())
    }

    /// A cache primed with the plan's directives plus the previous window's
    /// surviving entries (flagged so carried hits are counted separately).
    pub(crate) fn with_carry(
        directives: Vec<CompCacheDirectives>,
        carry: WindowCarry,
    ) -> StrategyCache {
        StrategyCache {
            directives,
            tables: Mutex::new(
                carry
                    .tables
                    .into_iter()
                    .map(|(id, t)| (id, (t, true)))
                    .collect(),
            ),
            raws: Mutex::new(
                carry
                    .raws
                    .into_iter()
                    .map(|(k, (rows, len))| (k, (rows, len, true)))
                    .collect(),
            ),
            carried_table_hits: AtomicU64::new(0),
            carried_raw_hits: AtomicU64::new(0),
        }
    }

    fn directives(&self, idx: usize) -> Option<&CompCacheDirectives> {
        self.directives.get(idx)
    }

    /// The cached raw read for `(view, as_delta)` — served only when this
    /// expression's plan directs it (so measured `operand_reads_cached`
    /// equals the static prediction even when the runtime cache happens to
    /// retain more than the conservative static walk assumed).
    fn raw_get(&self, idx: usize, view: &str, as_delta: bool) -> Option<(Arc<SignedRows>, u64)> {
        let key = (view.to_string(), as_delta);
        if !self
            .directives(idx)
            .is_some_and(|d| d.raw_consume.contains(&key))
        {
            return None;
        }
        let map = self.raws.lock().unwrap_or_else(|e| e.into_inner());
        let (rows, len, carried) = map.get(&key)?;
        if *carried {
            self.carried_raw_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some((Arc::clone(rows), *len))
    }

    fn raw_put(&self, key: (String, bool), entry: (Arc<SignedRows>, u64)) {
        self.raws
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, (entry.0, entry.1, false));
    }

    fn table_get(&self, id: &SharedIdentity) -> Option<Arc<PartitionedTable>> {
        let map = self.tables.lock().unwrap_or_else(|e| e.into_inner());
        let (t, carried) = map.get(id)?;
        if *carried {
            self.carried_table_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some(Arc::clone(t))
    }

    fn table_put(&self, id: SharedIdentity, t: Arc<PartitionedTable>) {
        self.tables
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, (t, false));
    }

    /// Measured `(table hits, raw hits)` served from carried-in entries.
    pub(crate) fn carried_hits(&self) -> (u64, u64) {
        (
            self.carried_table_hits.load(Ordering::Relaxed),
            self.carried_raw_hits.load(Ordering::Relaxed),
        )
    }

    /// Drops every cached entry whose operand `e` modified — the executor
    /// calls this after each expression completes, mirroring the liveness
    /// walk the static plan performed. (The executor skips the call for an
    /// `Inst` that installed nothing: a no-op install leaves every operand
    /// bit-identical, and consumption is directive-driven, so the laxer
    /// runtime retention can never serve an unplanned entry — it only lets
    /// more entries survive into the next window's carry.)
    pub(crate) fn invalidate_after(&self, g: &Vdag, e: &UpdateExpr) {
        self.tables
            .lock()
            .unwrap_or_else(|er| er.into_inner())
            .retain(|id, _| !uww_analysis::modifies_operand(g, e, &id.0, id.1));
        self.raws
            .lock()
            .unwrap_or_else(|er| er.into_inner())
            .retain(|key, _| !uww_analysis::modifies_operand(g, e, &key.0, key.1));
    }

    /// Consumes the cache into the entries that may cross into the next
    /// window: everything still live, minus every delta-role entry (the
    /// next batch replaces all pending deltas, so a carried delta read
    /// would be stale by construction). The carry is stamped with the
    /// partition count this window ran at — a future window at a different
    /// partitioning must drop it rather than probe mis-split tables.
    pub(crate) fn harvest(self, partitions: usize) -> WindowCarry {
        WindowCarry {
            partitions,
            tables: self
                .tables
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .into_iter()
                .filter(|(id, _)| !id.1)
                .map(|(id, (t, _))| (id, t))
                .collect(),
            raws: self
                .raws
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .into_iter()
                .filter(|(key, _)| !key.1)
                .map(|(key, (rows, len, _))| (key, (rows, len)))
                .collect(),
        }
    }
}

/// Per-`Comp` cache of materialized operands and interned build tables.
///
/// Built once per `Comp` from the terms that will actually run, so a
/// `Comp` whose every term is skipped (empty deltas, footnote 5) still
/// costs nothing. Shared by reference across term-evaluation threads.
/// When a [`StrategyCache`] is attached, raw reads are served from (and
/// published to) it, and the plan's consume/publish directives route keyed
/// builds through the strategy-scope table store.
pub(crate) struct OperandCache<'a> {
    /// Qualified schema per source, as `eval_term` computes it.
    qschemas: Vec<Schema>,
    /// Indices into `def.filters` that span multiple sources — applied
    /// per term after the joins, exactly like the per-term path.
    residual: Vec<usize>,
    /// `[stored, delta]` slot per source index; `None` when no surviving
    /// term uses that role.
    slots: Vec<[Option<CachedOperand>; 2]>,
    /// Build keys the static plan marked shared (≥ 2 uses across terms, or
    /// published for later expressions); only these route through the
    /// intern table.
    shared: HashSet<TableKey>,
    /// Keys served from the strategy cache: every use is a cross-reuse and
    /// no local build happens.
    consume: HashMap<TableKey, SharedIdentity>,
    /// Keys whose first (local, interned) build is also published to the
    /// strategy cache for later expressions.
    publish: HashMap<TableKey, SharedIdentity>,
    /// The attached strategy-scope cache, when strategy sharing is on.
    strategy: Option<&'a StrategyCache>,
    /// Partition-parallel configuration every interned build is split at.
    partition: PartitionOptions,
    /// The static plan itself, for prediction consumers.
    plan: CompSharingPlan,
    /// Interned build tables: `(source, as_delta, key columns)` → table.
    /// The lock is held across the build so `hash_tables_built` counts
    /// each distinct key exactly once even under threads.
    tables: Mutex<HashMap<TableKey, Arc<PartitionedTable>>>,
}

impl<'a> OperandCache<'a> {
    /// Materializes every operand role the surviving `terms` need and
    /// simulates every term's join sequence to fix the shared-key set. The
    /// returned meter carries the *physical* cost of materialization; the
    /// logical scans are charged per term during evaluation. Operands are
    /// read once per distinct `(view, role)` — aliased self-join sources
    /// share the raw read and diverge only in their pushed-down filters.
    ///
    /// With `strategy = Some((cache, idx))`, raw reads consult and feed the
    /// strategy cache, and the expression's planned directives decide which
    /// keyed builds consume an earlier table or publish their own.
    pub(crate) fn build(
        w: &Warehouse,
        def: &ViewDef,
        terms: &[BTreeSet<String>],
        strategy: Option<(&'a StrategyCache, usize)>,
        partition: PartitionOptions,
    ) -> CoreResult<(OperandCache<'a>, WorkMeter)> {
        let n = def.sources.len();
        let state = w.state();
        let pending = w.pending_map();

        let mut qschemas = Vec::with_capacity(n);
        for s in &def.sources {
            qschemas.push(
                state
                    .get(&s.view)
                    .map(|t| t.schema().clone())
                    .map_err(CoreError::Rel)?
                    .qualified(&s.alias),
            );
        }

        let mut local: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut residual = Vec::new();
        for (fi, f) in def.filters.iter().enumerate() {
            match eval::single_source_of(def, f) {
                Some(i) => local[i].push(fi),
                None => residual.push(fi),
            }
        }

        let mut need = vec![[false, false]; n];
        for t in terms {
            for (i, s) in def.sources.iter().enumerate() {
                need[i][usize::from(t.contains(&s.view))] = true;
            }
        }

        let mut meter = WorkMeter::new();
        // Raw reads deduplicated by (view, role).
        let mut raw: HashMap<(String, bool), (Arc<SignedRows>, u64)> = HashMap::new();
        let mut slots: Vec<[Option<CachedOperand>; 2]> = Vec::with_capacity(n);
        for (i, s) in def.sources.iter().enumerate() {
            let mut pair: [Option<CachedOperand>; 2] = [None, None];
            for (role, slot) in pair.iter_mut().enumerate() {
                if !need[i][role] {
                    continue;
                }
                let as_delta = role == 1;
                let key = (s.view.clone(), as_delta);
                let (rows, raw_len) = match raw.get(&key) {
                    Some(hit) => hit.clone(),
                    None => {
                        // A live strategy-cache entry is the same raw read an
                        // earlier expression performed (nothing modified the
                        // operand since, or it would have been invalidated).
                        let entry = match strategy
                            .and_then(|(sc, idx)| sc.raw_get(idx, &s.view, as_delta))
                        {
                            Some(hit) => {
                                meter.cached_read();
                                hit
                            }
                            None => {
                                // The probe meter captures the raw extent
                                // size; only its physical side is real — the
                                // logical charge is made per term to keep the
                                // paper's metric intact.
                                let mut probe = WorkMeter::new();
                                let rows = scan_operand_pooled(
                                    partition, state, pending, &s.view, as_delta, &mut probe,
                                )
                                .map_err(CoreError::Rel)?;
                                meter.physical_rows_touched += probe.physical_rows_touched;
                                let entry = (Arc::new(rows), probe.operand_rows_scanned);
                                if let Some((sc, _)) = strategy {
                                    sc.raw_put(key.clone(), entry.clone());
                                }
                                entry
                            }
                        };
                        raw.insert(key.clone(), entry.clone());
                        entry
                    }
                };
                let rows = if local[i].is_empty() {
                    rows
                } else {
                    let mut bounds = Vec::with_capacity(local[i].len());
                    for &fi in &local[i] {
                        bounds.push(def.filters[fi].bind(&qschemas[i]).map_err(CoreError::Rel)?);
                    }
                    Arc::new(filter_pooled(partition, &rows, &bounds).map_err(CoreError::Rel)?)
                };
                *slot = Some(CachedOperand { rows, raw_len });
            }
            slots.push(pair);
        }

        // Static join-plan simulation: the greedy order sizes operands by
        // their cached lengths only, so every term's keyed steps are known
        // here, before any term runs.
        let size_of = |i: usize, as_delta: bool| -> usize {
            slots[i][usize::from(as_delta)]
                .as_ref()
                .map_or(usize::MAX, |op| op.rows.len())
        };
        let mut uses: BTreeMap<TableKey, u64> = BTreeMap::new();
        let mut keyed_steps = 0u64;
        for t in terms {
            for key in plan_term_steps(def, &qschemas, &size_of, t)
                .map_err(CoreError::Rel)?
                .into_iter()
                .flatten()
            {
                *uses.entry(key).or_insert(0) += 1;
                keyed_steps += 1;
            }
        }
        let operands: Vec<OperandUse> = uses
            .iter()
            .map(|(key, &occurrences)| {
                let (i, as_delta, cols) = key;
                let s = &def.sources[*i];
                OperandUse {
                    source: s.view.clone(),
                    alias: s.alias.clone(),
                    source_idx: *i,
                    as_delta: *as_delta,
                    key_cols: cols
                        .iter()
                        .map(|&c| qschemas[*i].column(c).name.clone())
                        .collect(),
                    filters: local[*i]
                        .iter()
                        .map(|&fi| format!("{:?}", def.filters[fi]))
                        .collect(),
                    rows: size_of(*i, *as_delta) as u64,
                    occurrences,
                }
            })
            .collect();

        // Apply the strategy plan's directives: a consumed key never builds
        // locally (every use is a cross-reuse), a published key is interned
        // even at one local occurrence so its first build can be shared.
        let dir = strategy.and_then(|(sc, idx)| sc.directives(idx));
        let mut consume: HashMap<TableKey, SharedIdentity> = HashMap::new();
        let mut publish: HashMap<TableKey, SharedIdentity> = HashMap::new();
        let mut cross_reuses = 0u64;
        let mut cross_saved_rows = 0u64;
        if let Some(d) = dir {
            for (use_, (key, &occ)) in operands.iter().zip(uses.iter()) {
                let id = use_.identity();
                if d.consume.contains(&id) {
                    cross_reuses += occ;
                    cross_saved_rows += use_.rows;
                    consume.insert(key.clone(), id);
                } else if d.publish.contains(&id) {
                    publish.insert(key.clone(), id);
                }
            }
        }
        let shared: HashSet<TableKey> = uses
            .iter()
            .filter(|(key, &count)| count >= 2 || publish.contains_key(*key))
            .filter(|(key, _)| !consume.contains_key(*key))
            // Defense in depth for the empty-key degenerate: a keyless build
            // is a disguised cross join whose "table" is one giant bucket —
            // never worth interning or publishing. `plan_term_steps` already
            // yields `None` for those steps, so nothing here should match.
            .filter(|(key, _)| !key.2.is_empty())
            .map(|(k, _)| k.clone())
            .collect();
        let mut reads: Vec<(String, bool)> = raw.keys().cloned().collect();
        reads.sort();
        let predicted_builds = (uses.len() - consume.len()) as u64;
        let plan = CompSharingPlan {
            terms: terms.len(),
            predicted_builds,
            predicted_reuses: keyed_steps - predicted_builds,
            cross_reuses,
            cached_reads: meter.operand_reads_cached,
            cross_saved_rows,
            reads,
            operands,
        };

        Ok((
            OperandCache {
                qschemas,
                residual,
                slots,
                shared,
                consume,
                publish,
                strategy: strategy.map(|(sc, _)| sc),
                partition,
                plan,
                tables: Mutex::new(HashMap::new()),
            },
            meter,
        ))
    }

    fn operand(&self, i: usize, as_delta: bool) -> &CachedOperand {
        self.slots[i][usize::from(as_delta)]
            .as_ref()
            .expect("operand role materialized for every surviving term")
    }

    /// The interned build table for operand `i` in role `as_delta` over
    /// `keys`: built (and charged) once, reused (and counted) thereafter.
    /// A key the plan marked for publication pushes its first build into
    /// the strategy cache for later expressions.
    fn table(
        &self,
        i: usize,
        as_delta: bool,
        keys: &[usize],
        meter: &mut WorkMeter,
    ) -> Arc<PartitionedTable> {
        let mut map = self.tables.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(&(i, as_delta, keys.to_vec())) {
            Some(t) => {
                meter.hash_reuse();
                Arc::clone(t)
            }
            None => {
                let t = Arc::new(build_pooled(
                    self.partition,
                    &self.operand(i, as_delta).rows,
                    keys,
                    meter,
                ));
                map.insert((i, as_delta, keys.to_vec()), Arc::clone(&t));
                if let (Some(sc), Some(id)) = (
                    self.strategy,
                    self.publish.get(&(i, as_delta, keys.to_vec())),
                ) {
                    sc.table_put(id.clone(), Arc::clone(&t));
                }
                t
            }
        }
    }

    /// The strategy-cache table for a consumed key, counting the hit as a
    /// cross-expression reuse. `None` when the key is not consumed. A
    /// planned-but-missing table falls back to the local intern path (and
    /// the conformance check will surface the divergence).
    fn cross_table(&self, key: &TableKey, meter: &mut WorkMeter) -> Option<Arc<PartitionedTable>> {
        let id = self.consume.get(key)?;
        let sc = self.strategy?;
        match sc.table_get(id) {
            Some(t) => {
                // Partition counts are run-constant and mismatched carries
                // are dropped before planning, so a cached table always
                // matches this run's split.
                debug_assert_eq!(t.parts(), self.partition.partitions.max(1));
                meter.hash_cross_reuse();
                Some(t)
            }
            None => {
                debug_assert!(false, "planned cross-reuse missing from strategy cache");
                None
            }
        }
    }
}

/// Fans `n` partition tasks out over the work-stealing pool, concatenating
/// the per-partition row outputs **in partition order** and folding each
/// worker's local meter into `meter`. Every task gets its own `Operator`
/// span (parented explicitly — workers don't inherit the spawner's span
/// stack) tagged with its partition index, so traces expose per-partition
/// skew and the bench can reconstruct the critical path on any machine.
fn pooled_rows<F>(
    popt: PartitionOptions,
    parent: u64,
    label: &'static str,
    n: usize,
    f: F,
    meter: &mut WorkMeter,
) -> SignedRows
where
    F: Fn(usize, &mut WorkMeter) -> SignedRows + Sync,
{
    let results = pool::run_tasks(n, popt.workers(n), popt.steal, |i| {
        let mut span =
            obs::span_under_dyn(obs::SpanKind::Operator, parent, || format!("{label}[p{i}]"));
        let mut m = WorkMeter::new();
        let out = f(i, &mut m);
        span.attr_u64(obs::keys::PARTITION, i as u64);
        span.attr_u64(obs::keys::ROWS, out.len() as u64);
        (out, m)
    });
    let mut rows = Vec::with_capacity(results.iter().map(|(r, _)| r.len()).sum());
    for (out, m) in results {
        rows.extend(out);
        meter.absorb(&m);
    }
    rows
}

/// Probes a partitioned table with `probe` rows, co-partitioning them onto
/// the table's chunks and probing every chunk through the pool. At one
/// partition this is byte-identical (order included) to the sequential
/// [`ops::probe_table`]; at `P` partitions the concatenated output is the
/// same multiset and the meter is byte-identical (each chunk charges its
/// own emit; the emits sum to the sequential total).
fn probe_pooled(
    popt: PartitionOptions,
    table: &PartitionedTable,
    probe: &SignedRows,
    probe_keys: &[usize],
    build_is_left: bool,
    meter: &mut WorkMeter,
) -> SignedRows {
    let mut sp = obs::span(obs::SpanKind::Operator, "hash_probe");
    let out = if table.parts() > 1 {
        sp.attr_u64(obs::keys::PARTITIONS, table.parts() as u64);
        let chunks = split_pooled(popt, table.parts(), probe, probe_keys);
        let parent = obs::current_span_id();
        pooled_rows(
            popt,
            parent,
            "hash_probe",
            table.parts(),
            |i, m| table.probe_chunk(i, &chunks[i], probe_keys, build_is_left, m),
            meter,
        )
    } else {
        table.probe_chunk(0, probe, probe_keys, build_is_left, meter)
    };
    sp.attr_u64(obs::keys::ROWS, out.len() as u64);
    out
}

/// [`scan_operand`], chunk-parallel over the pool for base-extent reads.
/// Cloning each stored tuple is row-independent, so contiguous ranges of
/// the extent clone concurrently and concatenate back in iteration order —
/// the output bytes and the meter charge (one `scan` of the full extent)
/// are identical to the sequential scan. Delta reads stay sequential: they
/// are a window's worth of rows, far below the extent sizes that make the
/// fan-out pay.
fn scan_operand_pooled(
    popt: PartitionOptions,
    state: &Catalog,
    pending: &BTreeMap<String, PendingDelta>,
    view: &str,
    as_delta: bool,
    meter: &mut WorkMeter,
) -> RelResult<SignedRows> {
    if as_delta || !popt.parallel() {
        return scan_operand(state, pending, view, as_delta, meter);
    }
    let table = state.get(view)?;
    let entries: Vec<(&Tuple, u64)> = table.iter().collect();
    if entries.len() < 2 {
        return scan_operand(state, pending, view, as_delta, meter);
    }
    meter.scan(table.len());
    let parent = obs::current_span_id();
    let parts = popt.partitions;
    let chunk = entries.len().div_ceil(parts);
    let cloned = pool::run_tasks(parts, popt.workers(parts), popt.steal, |i| {
        let lo = (i * chunk).min(entries.len());
        let hi = (lo + chunk).min(entries.len());
        let mut span =
            obs::span_under_dyn(obs::SpanKind::Operator, parent, || format!("scan[p{i}]"));
        span.attr_u64(obs::keys::PARTITION, i as u64);
        span.attr_u64(obs::keys::ROWS, (hi - lo) as u64);
        entries[lo..hi]
            .iter()
            .map(|&(t, m)| (t.clone(), m as i64))
            .collect::<SignedRows>()
    });
    Ok(cloned.concat())
}

/// Materializes a filtered operand from `rows`, chunk-parallel: each worker
/// clones only the rows of its contiguous range that pass every pushed-down
/// filter, and ranges concatenate back in input order — byte-identical to
/// cloning the raw extent and filtering it, without ever materializing the
/// unfiltered clone.
fn filter_pooled(
    popt: PartitionOptions,
    rows: &SignedRows,
    bounds: &[BoundPredicate],
) -> RelResult<SignedRows> {
    let keep = |(t, m): &(Tuple, i64)| -> RelResult<Option<(Tuple, i64)>> {
        for b in bounds {
            if !b.eval(t)? {
                return Ok(None);
            }
        }
        Ok(Some((t.clone(), *m)))
    };
    if !popt.parallel() || rows.len() < 2 {
        let mut out = Vec::new();
        for r in rows {
            if let Some(x) = keep(r)? {
                out.push(x);
            }
        }
        return Ok(out);
    }
    let parent = obs::current_span_id();
    let parts = popt.partitions;
    let chunk = rows.len().div_ceil(parts);
    let chunks = pool::run_tasks(parts, popt.workers(parts), popt.steal, |i| {
        let lo = (i * chunk).min(rows.len());
        let hi = (lo + chunk).min(rows.len());
        let mut span =
            obs::span_under_dyn(obs::SpanKind::Operator, parent, || format!("filter[p{i}]"));
        span.attr_u64(obs::keys::PARTITION, i as u64);
        span.attr_u64(obs::keys::ROWS, (hi - lo) as u64);
        let mut out = Vec::new();
        for r in &rows[lo..hi] {
            if let Some(x) = keep(r)? {
                out.push(x);
            }
        }
        Ok(out)
    });
    let mut out = Vec::new();
    for c in chunks {
        out.extend(c?);
    }
    Ok(out)
}

/// [`Partitioner::split`], chunk-parallel: each worker buckets one
/// contiguous range of `rows` by key hash, and per-partition buckets
/// concatenate in range order — the same stable row order the sequential
/// split produces. The per-row cost (key serialization, FNV, tuple clone)
/// is what makes large splits expensive, and all of it runs inside the
/// fan-out.
fn split_pooled(
    popt: PartitionOptions,
    parts: usize,
    rows: &SignedRows,
    keys: &[usize],
) -> Vec<SignedRows> {
    if !popt.parallel() || keys.is_empty() || rows.len() < 2 {
        return Partitioner::new(parts).split(rows, keys);
    }
    let parent = obs::current_span_id();
    let chunk = rows.len().div_ceil(parts);
    let bucketed = pool::run_tasks(parts, popt.workers(parts), popt.steal, |i| {
        let lo = (i * chunk).min(rows.len());
        let hi = (lo + chunk).min(rows.len());
        let mut span =
            obs::span_under_dyn(obs::SpanKind::Operator, parent, || format!("split[p{i}]"));
        span.attr_u64(obs::keys::PARTITION, i as u64);
        span.attr_u64(obs::keys::ROWS, (hi - lo) as u64);
        let mut buckets: Vec<SignedRows> = vec![Vec::new(); parts];
        for (t, m) in &rows[lo..hi] {
            buckets[ops::part_of(t, keys, parts)].push((t.clone(), *m));
        }
        buckets
    });
    let mut out: Vec<SignedRows> = vec![Vec::new(); parts];
    for buckets in bucketed {
        for (j, b) in buckets.into_iter().enumerate() {
            out[j].extend(b);
        }
    }
    out
}

/// Builds a partitioned table over `rows`, splitting by key hash and
/// indexing the chunks through the pool. Charges exactly one
/// [`WorkMeter::hash_build`] over the total input, so the meter equals the
/// sequential build's at any partition count.
fn build_pooled(
    popt: PartitionOptions,
    rows: &SignedRows,
    keys: &[usize],
    meter: &mut WorkMeter,
) -> PartitionedTable {
    if !popt.parallel() || keys.is_empty() {
        return ops::build_partitioned(rows, keys, 1, meter);
    }
    let parent = obs::current_span_id();
    let chunks = split_pooled(popt, popt.partitions, rows, keys);
    let indexed = pool::run_tasks(chunks.len(), popt.workers(chunks.len()), popt.steal, |i| {
        let mut span = obs::span_under_dyn(obs::SpanKind::Operator, parent, || {
            format!("hash_build[p{i}]")
        });
        span.attr_u64(obs::keys::PARTITION, i as u64);
        span.attr_u64(obs::keys::ROWS, chunks[i].len() as u64);
        ops::BuiltTable::index(&chunks[i], keys)
    });
    meter.hash_build(rows.len() as u64);
    PartitionedTable::from_indexed(keys.to_vec(), chunks.into_iter().zip(indexed).collect())
}

/// Simulates one term's greedy join sequence against the cached operand
/// sizes, returning the build key of every step — `None` for cross joins.
/// Mirrors [`join_term`] exactly: start from the smallest operand, then
/// repeatedly join the smallest connected one, sizing joined operands as
/// `usize::MAX`; the intermediate's size never participates.
fn plan_term_steps(
    def: &ViewDef,
    qschemas: &[Schema],
    size_of: &dyn Fn(usize, bool) -> usize,
    subset: &BTreeSet<String>,
) -> RelResult<Vec<Option<TableKey>>> {
    let n = def.sources.len();
    let role: Vec<bool> = def
        .sources
        .iter()
        .map(|s| subset.contains(&s.view))
        .collect();
    let mut in_set = vec![false; n];
    let size = |in_set: &[bool], i: usize| {
        if in_set[i] {
            usize::MAX
        } else {
            size_of(i, role[i])
        }
    };
    let start = (0..n)
        .min_by_key(|&i| size(&in_set, i))
        .expect("at least one source");
    let mut joined_schema = qschemas[start].clone();
    in_set[start] = true;
    let mut steps = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        let next = eval::pick_next(def, &in_set, |i| size(&in_set, i));
        let (lk, rk) = eval::join_keys(def, &in_set, next, &joined_schema, &qschemas[next])?;
        steps.push(if lk.is_empty() {
            None
        } else {
            Some((next, role[next], rk))
        });
        joined_schema = joined_schema.concat(&qschemas[next])?;
        in_set[next] = true;
    }
    Ok(steps)
}

/// A term's projected (or grouped) output, ready to fold into the `Comp`'s
/// pending fragment in term order.
pub(crate) enum TermOut {
    /// Consolidated projection delta (non-aggregate views).
    Rows(SignedRows),
    /// Per-group accumulator deltas (aggregate views).
    Groups(HashMap<Tuple, GroupAcc>),
}

/// Evaluates one maintenance term against the cache — the output-identical
/// mirror of [`eval::eval_term`] plus the downstream projection/grouping.
pub(crate) fn eval_term_cached(
    def: &ViewDef,
    cache: &OperandCache,
    subset: &BTreeSet<String>,
    meter: &mut WorkMeter,
) -> CoreResult<TermOut> {
    let (schema, rows) = join_term(def, cache, subset, meter).map_err(CoreError::Rel)?;
    match &def.output {
        ViewOutput::Project(_) => {
            let out = eval::project_output(def, &schema, &rows, meter).map_err(CoreError::Rel)?;
            Ok(TermOut::Rows(ops::consolidate(out)))
        }
        ViewOutput::Aggregate { .. } => {
            let popt = cache.partition;
            if popt.parallel() && rows.len() > 1 {
                // Grouping is commutative and associative: group contiguous
                // chunks through the pool and merge — identical accumulator
                // map to the sequential pass (merge order cannot matter).
                let spec = eval::agg_spec(def, &schema).map_err(CoreError::Rel)?;
                let mut sp = obs::span(obs::SpanKind::Operator, "group_merge");
                sp.attr_u64(obs::keys::PARTITIONS, popt.partitions as u64);
                let chunks = Partitioner::new(popt.partitions).split_contiguous(&rows);
                let parent = obs::current_span_id();
                let parts =
                    pool::run_tasks(chunks.len(), popt.workers(chunks.len()), popt.steal, |i| {
                        let mut span = obs::span_under_dyn(obs::SpanKind::Operator, parent, || {
                            format!("group[p{i}]")
                        });
                        span.attr_u64(obs::keys::PARTITION, i as u64);
                        span.attr_u64(obs::keys::ROWS, chunks[i].len() as u64);
                        ops::group_rows(&chunks[i], &spec)
                    });
                let mut maps = Vec::with_capacity(parts.len());
                for p in parts {
                    maps.push(p.map_err(CoreError::Rel)?);
                }
                let groups = ops::merge_groups(maps);
                sp.attr_u64(obs::keys::ROWS, groups.len() as u64);
                Ok(TermOut::Groups(groups))
            } else {
                let groups = eval::group_output(def, &schema, &rows).map_err(CoreError::Rel)?;
                Ok(TermOut::Groups(groups))
            }
        }
    }
}

fn join_term(
    def: &ViewDef,
    cache: &OperandCache,
    subset: &BTreeSet<String>,
    meter: &mut WorkMeter,
) -> RelResult<(Schema, SignedRows)> {
    meter.term();
    let n = def.sources.len();

    // Charge the logical scans the per-term path performs when it loads
    // each operand, and pin the role each source plays in this term.
    let mut role = Vec::with_capacity(n);
    let mut avail: Vec<Option<&CachedOperand>> = Vec::with_capacity(n);
    for s in &def.sources {
        let as_delta = subset.contains(&s.view);
        let op = cache.operand(role.len(), as_delta);
        meter.scan_logical(op.raw_len);
        role.push(as_delta);
        avail.push(Some(op));
    }

    let size = |avail: &[Option<&CachedOperand>], i: usize| {
        avail[i].map_or(usize::MAX, |op| op.rows.len())
    };
    let start = (0..n)
        .min_by_key(|&i| size(&avail, i))
        .expect("at least one source");
    let mut joined_schema = cache.qschemas[start].clone();
    let mut joined_rows: SignedRows = (*avail[start].take().expect("start operand").rows).clone();
    let mut in_set = vec![false; n];
    in_set[start] = true;

    for _ in 1..n {
        let next = eval::pick_next(def, &in_set, |i| size(&avail, i));
        let (lk, rk) = eval::join_keys(def, &in_set, next, &joined_schema, &cache.qschemas[next])?;
        let popt = cache.partition;
        let right = avail[next].take().expect("operand joined twice");
        joined_rows = if lk.is_empty() {
            // Cross join: no key to co-partition on, so fan out over
            // contiguous chunks of the intermediate — chunk order
            // concatenates back to the sequential output byte-for-byte.
            let mut sp = obs::span(obs::SpanKind::Operator, "cross_join");
            let out = if popt.parallel() && joined_rows.len() > 1 {
                sp.attr_u64(obs::keys::PARTITIONS, popt.partitions as u64);
                let chunks = Partitioner::new(popt.partitions).split_contiguous(&joined_rows);
                let parent = obs::current_span_id();
                pooled_rows(
                    popt,
                    parent,
                    "cross_join",
                    chunks.len(),
                    |i, m| ops::cross_join(&chunks[i], &right.rows, m),
                    meter,
                )
            } else {
                ops::cross_join(&joined_rows, &right.rows, meter)
            };
            sp.attr_u64(obs::keys::ROWS, out.len() as u64);
            out
        } else if let Some(table) = cache.cross_table(&(next, role[next], rk.clone()), meter) {
            // The strategy plan marked this key consumed: the table was
            // built by an earlier expression over identity-equal rows and
            // nothing modified the operand since — probe it directly, no
            // local build at all.
            {
                let mut sp = obs::span(obs::SpanKind::Operator, "hash_table_cross");
                sp.attr_u64(obs::keys::ROWS, right.rows.len() as u64);
            }
            probe_pooled(popt, &table, &joined_rows, &lk, false, meter)
        } else if cache.shared.contains(&(next, role[next], rk.clone())) {
            // The static plan marked this (source, role, keys) as repeating
            // across the Comp's terms: intern the pure-operand table — the
            // first use builds, every other use reuses, regardless of how
            // large the accumulated intermediate happens to be.
            let table = {
                let mut sp = obs::span(obs::SpanKind::Operator, "hash_table_intern");
                sp.attr_u64(obs::keys::ROWS, right.rows.len() as u64);
                cache.table(next, role[next], &rk, meter)
            };
            probe_pooled(popt, &table, &joined_rows, &lk, false, meter)
        } else if joined_rows.len() <= right.rows.len() {
            // Unshared step, intermediate smaller: build fresh exactly as
            // hash_join would — one build, no reuse, either orientation.
            let table = {
                let mut sp = obs::span(obs::SpanKind::Operator, "hash_build");
                sp.attr_u64(obs::keys::ROWS, joined_rows.len() as u64);
                build_pooled(popt, &joined_rows, &lk, meter)
            };
            probe_pooled(popt, &table, &right.rows, &rk, true, meter)
        } else {
            // Unshared step, operand smaller: build fresh over the operand
            // without interning — the key occurs once, so a cache entry
            // would never be reused.
            let table = {
                let mut sp = obs::span(obs::SpanKind::Operator, "hash_build");
                sp.attr_u64(obs::keys::ROWS, right.rows.len() as u64);
                build_pooled(popt, &right.rows, &rk, meter)
            };
            probe_pooled(popt, &table, &joined_rows, &lk, false, meter)
        };
        joined_schema = joined_schema.concat(&cache.qschemas[next])?;
        in_set[next] = true;
        // Deliberately no empty-intermediate short circuit here (the
        // per-term baseline keeps it): the static plan prices every step,
        // and joining an empty intermediate emits nothing and touches only
        // the planned build — so the hash-table counters match the
        // prediction exactly while the output bytes are unaffected.
    }

    if !cache.residual.is_empty() {
        let mut sp = obs::span(obs::SpanKind::Operator, "filter");
        for &fi in &cache.residual {
            let bound = def.filters[fi].bind(&joined_schema)?;
            joined_rows = ops::filter(joined_rows, &bound)?;
        }
        sp.attr_u64(obs::keys::ROWS, joined_rows.len() as u64);
    }
    Ok((joined_schema, joined_rows))
}

/// Evaluates `terms` through a fresh cache, inline or across `threads`
/// workers, returning per-term outputs **in term order** together with the
/// folded meter (cache materialization + every term). `strategy` attaches
/// the strategy-scope cache (and this expression's position in it).
pub(crate) fn eval_terms_shared(
    w: &Warehouse,
    def: &ViewDef,
    terms: &[BTreeSet<String>],
    topts: TermOptions,
    strategy: Option<(&StrategyCache, usize)>,
) -> CoreResult<(Vec<TermOut>, WorkMeter)> {
    let (cache, mut total) = {
        let mut sp = obs::span(obs::SpanKind::Operator, "materialize_operands");
        let (cache, meter) = OperandCache::build(w, def, terms, strategy, topts.partition)?;
        sp.attr_u64(obs::keys::PHYSICAL_ROWS, meter.physical_rows_touched);
        sp.attr_u64(
            obs::keys::PREDICTED_HASH_BUILDS,
            cache.plan.predicted_builds,
        );
        sp.attr_u64(
            obs::keys::PREDICTED_HASH_REUSES,
            cache.plan.predicted_reuses,
        );
        sp.attr_u64(
            obs::keys::PREDICTED_HASH_CROSS_REUSES,
            cache.plan.cross_reuses,
        );
        sp.attr_u64(obs::keys::PREDICTED_CACHED_READS, cache.plan.cached_reads);
        (cache, meter)
    };
    let workers = topts.threads.min(terms.len());
    // Worker threads do not inherit the spawner's span stack; parent every
    // term span to the enclosing expression span explicitly.
    let parent = obs::current_span_id();
    let eval_one = |subset: &BTreeSet<String>| {
        let mut span = obs::span_under_dyn(obs::SpanKind::Term, parent, || term_label(subset));
        let mut meter = WorkMeter::new();
        let out = eval_term_cached(def, &cache, subset, &mut meter);
        meter_attrs(&mut span, &meter);
        out.map(|out| (meter, out))
    };
    let mut results: Vec<Option<CoreResult<(WorkMeter, TermOut)>>> = if workers > 1 {
        // Mirror execute_parallel_threaded: scoped workers over a shared
        // read-only warehouse/cache. Worker k takes terms k, k+W, k+2W, …
        // and results are re-assembled in term order, so the merged
        // fragment and meter are independent of scheduling.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let eval_one = &eval_one;
                    scope.spawn(move || {
                        terms
                            .iter()
                            .enumerate()
                            .skip(worker)
                            .step_by(workers)
                            .map(|(i, subset)| (i, eval_one(subset)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut slots: Vec<Option<CoreResult<(WorkMeter, TermOut)>>> =
                (0..terms.len()).map(|_| None).collect();
            for h in handles {
                for (i, r) in h.join().expect("term worker panicked") {
                    slots[i] = Some(r);
                }
            }
            slots
        })
    } else {
        terms.iter().map(|subset| Some(eval_one(subset))).collect()
    };

    let mut outs = Vec::with_capacity(results.len());
    for r in results.drain(..) {
        let (meter, out) = r.expect("every term evaluated")?;
        fold_term_meter(&mut total, &meter);
        outs.push(out);
    }
    Ok((outs, total))
}

/// Folds the counters a `Comp` contributes to the warehouse meter —
/// deliberately not `rows_installed` or the expression counts, which the
/// install funnel and `exec_comp_journaled` own.
pub(crate) fn fold_term_meter(total: &mut WorkMeter, m: &WorkMeter) {
    total.operand_rows_scanned += m.operand_rows_scanned;
    total.rows_emitted += m.rows_emitted;
    total.terms_evaluated += m.terms_evaluated;
    total.physical_rows_touched += m.physical_rows_touched;
    total.hash_tables_built += m.hash_tables_built;
    total.hash_tables_reused += m.hash_tables_reused;
    total.hash_tables_cross_reused += m.hash_tables_cross_reused;
    total.operand_reads_cached += m.operand_reads_cached;
}

/// The surviving terms of a `Comp` over `over_names` under the footnote-5
/// empty-delta filter — exactly the term set the executor evaluates, and
/// therefore the term set every static prediction must cover.
pub fn surviving_terms(w: &Warehouse, over_names: &BTreeSet<String>) -> Vec<BTreeSet<String>> {
    eval::nonempty_subsets(over_names)
        .into_iter()
        .filter(|subset| {
            subset
                .iter()
                .all(|v| w.pending(v).is_some_and(|d| !d.is_empty()))
        })
        .collect()
}

/// Statically predicts the shared engine's hash-table counters and operand
/// uses for one `Comp(view, over)` against the warehouse's **current**
/// state and pending deltas. The prediction is exact: executing that
/// `Comp` next (with term sharing on, any thread count) produces precisely
/// `predicted_builds`/`predicted_reuses`.
pub fn predict_comp_sharing(
    w: &Warehouse,
    view: &str,
    over_names: &BTreeSet<String>,
) -> CoreResult<CompSharingPlan> {
    let def = w
        .def(view)
        .ok_or_else(|| CoreError::Warehouse(format!("no definition for {view}")))?
        .clone();
    let terms = surviving_terms(w, over_names);
    // Predictions are partition-independent: the partitioned engine's
    // logical and hash-table meters are byte-identical to sequential.
    let (cache, _) = OperandCache::build(w, &def, &terms, None, PartitionOptions::default())?;
    Ok(cache.plan)
}

/// The static sharing prediction for one strategy expression.
#[derive(Clone, Debug)]
pub struct ExprSharingPrediction {
    /// Target view name.
    pub view: String,
    /// `"comp"` or `"inst"` — matches the `expr_kind` span attribute.
    pub kind: &'static str,
    /// The `Comp`'s plan; zeroed for `Inst` (installs build no tables).
    pub plan: CompSharingPlan,
}

/// Predicts the shared engine's per-expression hash-table counters for a
/// whole strategy by replaying it on a scratch clone: each `Comp` is
/// planned against the state the preceding expressions produce (derived
/// deltas — and hence operand sizes and join orders — depend on it), then
/// the expression executes to advance the clone. Validation is skipped on
/// the single-expression steps; the strategy itself is not judged here.
pub fn predict_strategy_sharing(
    w: &Warehouse,
    strategy: &Strategy,
) -> CoreResult<Vec<ExprSharingPrediction>> {
    Ok(plan_strategy_sharing(w, strategy, SharingScope::Comp)?.exprs)
}

/// Which cache scope a sharing plan targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharingScope {
    /// Per-`Comp` caching only — PR 4/6 behavior, the default.
    Comp,
    /// Strategy-wide caching: materializations and build tables survive
    /// across expressions until the operand is modified.
    Strategy,
}

/// The strategy-scope sharing plan: exact per-expression predictions plus
/// the runtime consume/publish directives the executor realizes.
pub struct StrategySharingPlan {
    /// Per-expression predictions, in strategy order. Under
    /// [`SharingScope::Strategy`] the build/reuse counters are adjusted
    /// for cross-expression service and `cross_reuses`/`cached_reads`
    /// are populated.
    pub exprs: Vec<ExprSharingPrediction>,
    /// Predicted hash-table uses served from a *previous window's* carried
    /// table (zero unless the plan was seeded with a [`WindowCarry`]).
    /// Subset of the total predicted cross-reuses.
    pub carried_table_hits: u64,
    /// Predicted raw operand reads served from a previous window's carried
    /// materialization. Subset of the total predicted cached reads.
    pub carried_raw_hits: u64,
    /// Per-expression cache directives (empty under [`SharingScope::Comp`]).
    pub(crate) directives: Vec<CompCacheDirectives>,
}

impl StrategySharingPlan {
    /// Total predicted cross-expression hash-table reuses.
    pub fn cross_reuses(&self) -> u64 {
        self.exprs.iter().map(|e| e.plan.cross_reuses).sum()
    }

    /// Total predicted strategy-cache-served raw operand reads.
    pub fn cached_reads(&self) -> u64 {
        self.exprs.iter().map(|e| e.plan.cached_reads).sum()
    }

    /// Total filtered rows of consumed keys across the strategy — the
    /// build-avoidance quantity the shared planner objective prices.
    pub fn cross_saved_rows(&self) -> u64 {
        self.exprs.iter().map(|e| e.plan.cross_saved_rows).sum()
    }

    /// A runtime cache primed with this plan's directives.
    pub(crate) fn cache(&self) -> StrategyCache {
        StrategyCache::new(self.directives.clone())
    }

    /// A runtime cache primed with this plan's directives plus the previous
    /// window's surviving entries. Only meaningful when the plan was built
    /// by [`plan_strategy_sharing_carried`] over the *same* carry, so the
    /// directives and the seeded entries agree.
    pub(crate) fn cache_with(&self, carry: WindowCarry) -> StrategyCache {
        StrategyCache::with_carry(self.directives.clone(), carry)
    }
}

/// Plans a whole strategy's sharing at the requested scope.
///
/// The replay first produces every `Comp`'s per-expression plan (exactly
/// [`predict_strategy_sharing`]); under [`SharingScope::Strategy`] a second,
/// purely static pass walks those plans in order with the `UWW012` liveness
/// predicate: a keyed build whose [`SharedIdentity`] is live (built by an
/// earlier expression, operand unmodified since) is marked **consume**, and
/// a first build whose identity a later live expression will use again is
/// marked **publish**. The per-expression counters are adjusted to what the
/// directive-driven executor will measure — consumed keys build nothing and
/// turn every use into a cross-reuse; raw reads present in the live set
/// become `cached_reads`.
pub fn plan_strategy_sharing(
    w: &Warehouse,
    strategy: &Strategy,
    scope: SharingScope,
) -> CoreResult<StrategySharingPlan> {
    plan_strategy_sharing_seeded(w, strategy, scope, None)
}

/// [`plan_strategy_sharing`] at strategy scope, seeded with the previous
/// window's [`WindowCarry`]: the liveness walk starts with the carried
/// identities live, so expressions at the *front* of the strategy can
/// consume tables (and raw materializations) built by the previous window.
/// The plan's `carried_table_hits`/`carried_raw_hits` predict exactly how
/// many uses the carried entries will serve — the conformance quantity
/// [`Warehouse::execute_carried`](crate::engine::Warehouse::execute_carried)
/// checks against the measured counters.
pub fn plan_strategy_sharing_carried(
    w: &Warehouse,
    strategy: &Strategy,
    carry: &WindowCarry,
) -> CoreResult<StrategySharingPlan> {
    plan_strategy_sharing_seeded(w, strategy, SharingScope::Strategy, Some(carry))
}

fn plan_strategy_sharing_seeded(
    w: &Warehouse,
    strategy: &Strategy,
    scope: SharingScope,
    carry: Option<&WindowCarry>,
) -> CoreResult<StrategySharingPlan> {
    let mut scratch = w.clone();
    // The replay is a prediction, not part of the run: keep its spans out of
    // any installed trace (a traced `--strategy-sharing` run plans first).
    let _quiet = obs::suppress();
    let mut exprs = Vec::with_capacity(strategy.exprs.len());
    for expr in &strategy.exprs {
        let pred = match expr {
            UpdateExpr::Comp { view, over } => {
                let name = scratch.vdag().name(*view).to_string();
                let over_names: BTreeSet<String> = over
                    .iter()
                    .map(|v| scratch.vdag().name(*v).to_string())
                    .collect();
                let plan = predict_comp_sharing(&scratch, &name, &over_names)?;
                ExprSharingPrediction {
                    view: name,
                    kind: "comp",
                    plan,
                }
            }
            UpdateExpr::Inst(v) => ExprSharingPrediction {
                view: scratch.vdag().name(*v).to_string(),
                kind: "inst",
                plan: CompSharingPlan::default(),
            },
        };
        exprs.push(pred);
        scratch.execute_with(
            &Strategy::from_exprs(vec![expr.clone()]),
            crate::engine::exec::ExecOptions {
                validate: false,
                ..Default::default()
            },
        )?;
    }

    let mut directives: Vec<CompCacheDirectives> = (0..exprs.len())
        .map(|_| CompCacheDirectives::default())
        .collect();
    let mut carried_table_hits = 0u64;
    let mut carried_raw_hits = 0u64;
    if scope == SharingScope::Strategy {
        let g = w.vdag();
        // Does any Comp after `j` use `id` before an expression modifies
        // its operand? Reads happen before an expression's own writes, so
        // usage at `p` is checked before `p`'s modification.
        let wanted_later = |exprs: &[ExprSharingPrediction], j: usize, id: &SharedIdentity| {
            for (p, pred) in exprs.iter().enumerate().skip(j + 1) {
                if pred.plan.operands.iter().any(|o| o.identity() == *id) {
                    return true;
                }
                if uww_analysis::modifies_operand(g, &strategy.exprs[p], &id.0, id.1) {
                    return false;
                }
            }
            false
        };
        // The liveness walk starts from the previous window's survivors
        // (empty without a carry); the carried subsets are tracked through
        // the same retention so a carried entry that dies mid-strategy
        // stops being counted exactly when the runtime cache drops it.
        let (mut live_tables, mut live_raws) = carry.map_or_else(
            || (HashSet::new(), HashSet::new()),
            |c| {
                let (t, r) = c.seed();
                (t, r)
            },
        );
        let mut carried_tables: HashSet<SharedIdentity> = live_tables.clone();
        let mut carried_raws: HashSet<(String, bool)> = live_raws.clone();
        for j in 0..exprs.len() {
            let d = &mut directives[j];
            let mut cross_reuses = 0u64;
            let mut consumed_keys = 0u64;
            let mut cross_saved_rows = 0u64;
            for o in &exprs[j].plan.operands {
                let id = o.identity();
                if live_tables.contains(&id) {
                    cross_reuses += o.occurrences;
                    consumed_keys += 1;
                    cross_saved_rows += o.rows;
                    if carried_tables.contains(&id) {
                        carried_table_hits += o.occurrences;
                    }
                    d.consume.insert(id);
                } else if wanted_later(&exprs, j, &id) {
                    d.publish.insert(id);
                }
            }
            let plan = &mut exprs[j].plan;
            let keyed_steps = plan.predicted_builds + plan.predicted_reuses;
            plan.predicted_builds -= consumed_keys;
            plan.predicted_reuses = keyed_steps - plan.predicted_builds;
            plan.cross_reuses = cross_reuses;
            plan.cross_saved_rows = cross_saved_rows;
            d.raw_consume = plan
                .reads
                .iter()
                .filter(|r| live_raws.contains(*r))
                .cloned()
                .collect();
            plan.cached_reads = d.raw_consume.len() as u64;
            carried_raw_hits += plan
                .reads
                .iter()
                .filter(|r| carried_raws.contains(*r))
                .count() as u64;
            // Publishes land during execution; the expression's own
            // modifications apply after — in that order, matching the
            // executor (a Comp never modifies its own sources' operands).
            live_raws.extend(plan.reads.iter().cloned());
            live_tables.extend(d.publish.iter().cloned());
            live_tables
                .retain(|id| !uww_analysis::modifies_operand(g, &strategy.exprs[j], &id.0, id.1));
            live_raws.retain(|r| !uww_analysis::modifies_operand(g, &strategy.exprs[j], &r.0, r.1));
            carried_tables
                .retain(|id| !uww_analysis::modifies_operand(g, &strategy.exprs[j], &id.0, id.1));
            carried_raws
                .retain(|r| !uww_analysis::modifies_operand(g, &strategy.exprs[j], &r.0, r.1));
        }
    }
    Ok(StrategySharingPlan {
        exprs,
        carried_table_hits,
        carried_raw_hits,
        directives,
    })
}
