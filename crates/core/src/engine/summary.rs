//! Summary deltas for aggregate views.
//!
//! The delta of a GROUP-BY view is carried as a *summary delta*
//! (\[MQM97\], cited in the paper's Section 8): a map from group key to signed
//! accumulator changes. Summary deltas are **additive**, so the piecemeal
//! `Comp` expressions of a 1-way strategy can each contribute their part and
//! the results merge exactly — the engine-level analogue of the paper's
//! "changes computed by the various Comp expressions are gathered in ΔV".
//!
//! The stored extent of an aggregate view carries a hidden trailing
//! `__count` column (the number of contributing base rows per group), the
//! standard bookkeeping that makes SUM/COUNT views self-maintainable under
//! deletions: a group dies exactly when its count reaches zero.

use std::collections::HashMap;
use uww_relational::ops::{Acc, GroupAcc};
use uww_relational::{
    AggFunc, Column, RelError, RelResult, Schema, Table, Tuple, Value, ValueType,
};

/// Name of the hidden per-group count column in stored aggregate extents.
pub const COUNT_COLUMN: &str = "__count";

/// Appends the hidden count column to a visible aggregate schema.
pub fn stored_aggregate_schema(visible: &Schema) -> RelResult<Schema> {
    let mut cols: Vec<Column> = visible.columns().to_vec();
    cols.push(Column::new(COUNT_COLUMN, ValueType::Int));
    Schema::new(cols)
}

/// A signed, mergeable delta for one aggregate view.
#[derive(Clone, Debug)]
pub struct SummaryDelta {
    /// Number of group-by columns (prefix of the visible schema).
    group_arity: usize,
    /// `(function, output type)` per aggregate column, in schema order.
    agg_types: Vec<(AggFunc, ValueType)>,
    groups: HashMap<Tuple, GroupAcc>,
}

impl SummaryDelta {
    /// An empty summary delta.
    pub fn new(group_arity: usize, agg_types: Vec<(AggFunc, ValueType)>) -> Self {
        SummaryDelta {
            group_arity,
            agg_types,
            groups: HashMap::new(),
        }
    }

    /// True when no group changed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of changed groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Merges per-group accumulator deltas (the output of
    /// [`uww_relational::ops::group_rows`]) into this delta.
    pub fn merge_groups(&mut self, groups: HashMap<Tuple, GroupAcc>) {
        for (key, acc) in groups {
            debug_assert_eq!(key.arity(), self.group_arity);
            debug_assert_eq!(acc.accs.len(), self.agg_types.len());
            use std::collections::hash_map::Entry;
            match self.groups.entry(key) {
                Entry::Occupied(mut e) => {
                    e.get_mut().merge(&acc);
                    if e.get().is_identity() {
                        e.remove();
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(acc);
                }
            }
        }
    }

    /// Merges another summary delta.
    pub fn merge(&mut self, other: &SummaryDelta) {
        self.merge_groups(other.groups.clone());
    }

    /// Serializes the summary delta to a deterministic line-oriented wire
    /// form (groups sorted by key), so the install WAL can journal and
    /// replay aggregate `Comp` fragments byte-identically:
    ///
    /// ```text
    /// SUMMARY 1 Sum:decimal
    /// GROUP 2 S250 <TAB> i:1
    /// END
    /// ```
    pub fn to_wire(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("SUMMARY ");
        let _ = write!(out, "{}", self.group_arity);
        for (func, ty) in &self.agg_types {
            let _ = write!(out, " {}:{}", func_name(*func), type_wire(*ty));
        }
        out.push('\n');
        let mut keys: Vec<&Tuple> = self.groups.keys().collect();
        keys.sort();
        for key in keys {
            let acc = &self.groups[key];
            let _ = write!(out, "GROUP {}", acc.count);
            for a in &acc.accs {
                out.push(' ');
                match a {
                    Acc::Sum(v) => {
                        let _ = write!(out, "S{v}");
                    }
                    Acc::Min(v) => {
                        let _ = write!(out, "m{}", opt_wire(*v));
                    }
                    Acc::Max(v) => {
                        let _ = write!(out, "M{}", opt_wire(*v));
                    }
                }
            }
            for v in key.values() {
                out.push('\t');
                out.push_str(&uww_relational::value_to_wire(v));
            }
            out.push('\n');
        }
        out.push_str("END\n");
        out
    }

    /// Parses a summary delta serialized by [`SummaryDelta::to_wire`].
    pub fn from_wire(s: &str) -> RelResult<SummaryDelta> {
        let bad = |detail: String| RelError::SchemaMismatch { detail };
        let mut lines = s.lines();
        let header = lines
            .next()
            .and_then(|l| l.strip_prefix("SUMMARY "))
            .ok_or_else(|| bad("missing SUMMARY header".to_string()))?;
        let mut parts = header.split(' ');
        let group_arity: usize = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| bad("bad group arity".to_string()))?;
        let mut agg_types = Vec::new();
        for p in parts {
            let (f, t) = p
                .split_once(':')
                .ok_or_else(|| bad(format!("bad agg spec {p}")))?;
            agg_types.push((func_from_name(f)?, type_from_wire(t)?));
        }
        let mut delta = SummaryDelta::new(group_arity, agg_types);
        for line in lines {
            if line == "END" {
                return Ok(delta);
            }
            let rest = line
                .strip_prefix("GROUP ")
                .ok_or_else(|| bad(format!("expected GROUP or END, got {line}")))?;
            let mut fields = rest.split('\t');
            let head = fields
                .next()
                .ok_or_else(|| bad("empty GROUP line".to_string()))?;
            let mut head_parts = head.split(' ');
            let count: i64 = head_parts
                .next()
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| bad(format!("bad group count in {line}")))?;
            let mut accs = Vec::new();
            for a in head_parts {
                let (tag, body) = a.split_at(1);
                let acc = match tag {
                    "S" => Acc::Sum(body.parse().map_err(|_| bad(format!("bad acc {a}")))?),
                    "m" => Acc::Min(opt_from_wire(body).map_err(|_| bad(format!("bad acc {a}")))?),
                    "M" => Acc::Max(opt_from_wire(body).map_err(|_| bad(format!("bad acc {a}")))?),
                    _ => return Err(bad(format!("unknown acc tag in {a}"))),
                };
                accs.push(acc);
            }
            if accs.len() != delta.agg_types.len() {
                return Err(bad(format!(
                    "group has {} accumulators, expected {}",
                    accs.len(),
                    delta.agg_types.len()
                )));
            }
            let values: Vec<Value> = fields
                .map(uww_relational::value_from_wire)
                .collect::<RelResult<_>>()?;
            if values.len() != group_arity {
                return Err(bad(format!(
                    "group key arity {} != {}",
                    values.len(),
                    group_arity
                )));
            }
            let mut m = HashMap::new();
            m.insert(Tuple::new(values), GroupAcc { accs, count });
            delta.merge_groups(m);
        }
        Err(bad("truncated summary delta: missing END".to_string()))
    }

    /// Materializes this summary delta as plus/minus rows over the *stored*
    /// schema (visible columns + hidden count), evaluated against the
    /// current (pre-install) stored extent: each changed group contributes a
    /// minus tuple for its old row (if it existed) and a plus tuple for its
    /// new row (if it survives).
    ///
    /// Correctness relies on condition C3/C8 ordering: every consumer reads
    /// ΔV after all `Comp(V, ·)` finished and before `Inst(V)`, so the
    /// stored extent seen here is exactly the pre-update state.
    pub fn to_delta(&self, stored: &Table) -> RelResult<uww_relational::DeltaRelation> {
        let schema = stored.schema().clone();
        let expected_arity = self.group_arity + self.agg_types.len() + 1;
        if schema.len() != expected_arity {
            return Err(RelError::SchemaMismatch {
                detail: format!(
                    "stored aggregate arity {} != expected {}",
                    schema.len(),
                    expected_arity
                ),
            });
        }
        // Index the stored extent by group key.
        let mut by_group: HashMap<Tuple, &Tuple> = HashMap::with_capacity(stored.distinct_len());
        for (row, mult) in stored.iter() {
            if mult != 1 {
                return Err(RelError::SchemaMismatch {
                    detail: "aggregate extent must have one row per group".to_string(),
                });
            }
            let key = row.project(&(0..self.group_arity).collect::<Vec<_>>());
            if by_group.insert(key, row).is_some() {
                return Err(RelError::SchemaMismatch {
                    detail: "duplicate group key in aggregate extent".to_string(),
                });
            }
        }

        let mut delta = uww_relational::DeltaRelation::new(schema);
        for (key, acc) in &self.groups {
            let old = by_group.get(key).copied();
            let (old_accs, old_count): (Vec<Option<i64>>, i64) = match old {
                Some(row) => {
                    let mut accs = Vec::with_capacity(self.agg_types.len());
                    for i in 0..self.agg_types.len() {
                        let v = row.get(self.group_arity + i);
                        accs.push(Some(stored_raw(v).ok_or_else(|| {
                            RelError::TypeMismatch {
                                context: "stored aggregate value".to_string(),
                            }
                        })?));
                    }
                    let count = row
                        .get(self.group_arity + self.agg_types.len())
                        .as_int()
                        .ok_or_else(|| RelError::TypeMismatch {
                            context: "stored group count".to_string(),
                        })?;
                    (accs, count)
                }
                None => (vec![None; self.agg_types.len()], 0),
            };

            let new_count = old_count + acc.count;
            if new_count < 0 {
                return Err(RelError::NegativeMultiplicity {
                    relation: stored.name().to_string(),
                });
            }
            if let Some(row) = old {
                delta.add(row.clone(), -1);
            }
            if new_count > 0 {
                let mut vals: Vec<Value> = key.values().to_vec();
                for (i, (func, ty)) in self.agg_types.iter().enumerate() {
                    let raw = combine(old_accs[i], &acc.accs[i], *func).ok_or_else(|| {
                        RelError::UnsupportedIncremental(format!(
                            "{func:?} group with no surviving value"
                        ))
                    })?;
                    vals.push(raw_to_value(*func, *ty, raw));
                }
                vals.push(Value::Int(new_count));
                delta.add(Tuple::new(vals), 1);
            }
        }
        Ok(delta)
    }
}

fn func_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Sum => "Sum",
        AggFunc::Count => "Count",
        AggFunc::Min => "Min",
        AggFunc::Max => "Max",
    }
}

fn func_from_name(s: &str) -> RelResult<AggFunc> {
    match s {
        "Sum" => Ok(AggFunc::Sum),
        "Count" => Ok(AggFunc::Count),
        "Min" => Ok(AggFunc::Min),
        "Max" => Ok(AggFunc::Max),
        _ => Err(RelError::SchemaMismatch {
            detail: format!("unknown aggregate function {s}"),
        }),
    }
}

fn type_wire(t: ValueType) -> &'static str {
    match t {
        ValueType::Int => "int",
        ValueType::Decimal => "decimal",
        ValueType::Date => "date",
        ValueType::Str => "str",
    }
}

fn type_from_wire(s: &str) -> RelResult<ValueType> {
    match s {
        "int" => Ok(ValueType::Int),
        "decimal" => Ok(ValueType::Decimal),
        "date" => Ok(ValueType::Date),
        "str" => Ok(ValueType::Str),
        _ => Err(RelError::SchemaMismatch {
            detail: format!("unknown value type {s}"),
        }),
    }
}

/// `Option<i64>` wire form: the number, or `-` for `None`.
fn opt_wire(v: Option<i64>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "-".to_string(),
    }
}

fn opt_from_wire(s: &str) -> Result<Option<i64>, std::num::ParseIntError> {
    if s == "-" {
        Ok(None)
    } else {
        s.parse().map(Some)
    }
}

/// Combines a stored raw aggregate with an accumulator delta.
///
/// SUM/COUNT add; MIN/MAX take the extremum of old and delta (valid because
/// [`uww_relational::ops::group_rows`] rejects minus tuples reaching
/// extremum accumulators, so the delta is insert-only).
fn combine(old: Option<i64>, delta: &Acc, func: AggFunc) -> Option<i64> {
    match (func, delta) {
        (AggFunc::Sum | AggFunc::Count, Acc::Sum(d)) => Some(old.unwrap_or(0) + d),
        (AggFunc::Min, Acc::Min(d)) => match (old, d) {
            (Some(o), Some(d)) => Some(o.min(*d)),
            (Some(o), None) => Some(o),
            (None, Some(d)) => Some(*d),
            (None, None) => None,
        },
        (AggFunc::Max, Acc::Max(d)) => match (old, d) {
            (Some(o), Some(d)) => Some(o.max(*d)),
            (Some(o), None) => Some(o),
            (None, Some(d)) => Some(*d),
            (None, None) => None,
        },
        _ => None,
    }
}

/// Raw payload of a stored aggregate value (numerics and dates).
fn stored_raw(v: &Value) -> Option<i64> {
    match v {
        Value::Int(x) | Value::Decimal(x) => Some(*x),
        Value::Date(d) => Some(*d as i64),
        Value::Str(_) => None,
    }
}

/// Converts a raw accumulator back into a [`Value`] of the aggregate's type.
pub(crate) fn raw_to_value(func: AggFunc, ty: ValueType, raw: i64) -> Value {
    match (func, ty) {
        (AggFunc::Count, _) => Value::Int(raw),
        (_, ValueType::Int) => Value::Int(raw),
        (_, ValueType::Decimal) => Value::Decimal(raw),
        (_, ValueType::Date) => Value::Date(raw as i32),
        // Aggregates over strings are rejected earlier; default to Int.
        (_, ValueType::Str) => Value::Int(raw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_relational::tup;

    fn stored() -> Table {
        // Visible: (g Int, total Decimal); hidden count.
        let visible = Schema::of(&[("g", ValueType::Int), ("total", ValueType::Decimal)]);
        let schema = stored_aggregate_schema(&visible).unwrap();
        let mut t = Table::new("AGG", schema);
        t.insert(tup![Value::Int(1), Value::Decimal(500), Value::Int(2)])
            .unwrap();
        t.insert(tup![Value::Int(2), Value::Decimal(100), Value::Int(1)])
            .unwrap();
        t
    }

    fn delta_with(groups: Vec<(i64, i64, i64)>) -> SummaryDelta {
        let mut d = SummaryDelta::new(1, vec![(AggFunc::Sum, ValueType::Decimal)]);
        let mut m = HashMap::new();
        for (g, dsum, dcount) in groups {
            m.insert(
                tup![Value::Int(g)],
                GroupAcc {
                    accs: vec![Acc::Sum(dsum)],
                    count: dcount,
                },
            );
        }
        d.merge_groups(m);
        d
    }

    #[test]
    fn group_update_produces_minus_plus_pair() {
        let t = stored();
        let d = delta_with(vec![(1, 250, 1)]);
        let delta = d.to_delta(&t).unwrap();
        assert_eq!(delta.minus_len(), 1);
        assert_eq!(delta.plus_len(), 1);
        let after = delta.applied_to(&t).unwrap();
        assert_eq!(
            after.multiplicity(&tup![Value::Int(1), Value::Decimal(750), Value::Int(3)]),
            1
        );
    }

    #[test]
    fn group_death_and_birth() {
        let t = stored();
        // Group 2 dies; group 3 is born.
        let d = delta_with(vec![(2, -100, -1), (3, 40, 1)]);
        let delta = d.to_delta(&t).unwrap();
        let after = delta.applied_to(&t).unwrap();
        assert_eq!(
            after.multiplicity(&tup![Value::Int(2), Value::Decimal(0), Value::Int(0)]),
            0
        );
        assert!(!after.iter().any(|(r, _)| r.get(0).as_int() == Some(2)));
        assert_eq!(
            after.multiplicity(&tup![Value::Int(3), Value::Decimal(40), Value::Int(1)]),
            1
        );
        assert_eq!(after.len(), 2);
    }

    #[test]
    fn merging_is_additive() {
        let mut a = delta_with(vec![(1, 100, 1)]);
        let b = delta_with(vec![(1, -100, -1), (2, 7, 1)]);
        a.merge(&b);
        // Group 1 fully cancelled; group 2 present.
        assert_eq!(a.group_count(), 1);
        let t = stored();
        let delta = a.to_delta(&t).unwrap();
        // Group 2 exists: minus old, plus new.
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn sum_can_change_while_count_is_stable() {
        // An UPDATE modeled as delete+insert within the same group.
        let t = stored();
        let d = delta_with(vec![(1, -200, 0)]);
        let delta = d.to_delta(&t).unwrap();
        let after = delta.applied_to(&t).unwrap();
        assert_eq!(
            after.multiplicity(&tup![Value::Int(1), Value::Decimal(300), Value::Int(2)]),
            1
        );
    }

    #[test]
    fn over_deletion_is_an_error() {
        let t = stored();
        let d = delta_with(vec![(2, -500, -3)]);
        assert!(matches!(
            d.to_delta(&t),
            Err(RelError::NegativeMultiplicity { .. })
        ));
    }

    #[test]
    fn stored_schema_has_hidden_count() {
        let visible = Schema::of(&[("g", ValueType::Int)]);
        let s = stored_aggregate_schema(&visible).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(1).name, COUNT_COLUMN);
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let mut d = SummaryDelta::new(
            1,
            vec![
                (AggFunc::Sum, ValueType::Decimal),
                (AggFunc::Min, ValueType::Int),
            ],
        );
        let mut m = HashMap::new();
        m.insert(
            tup![Value::Int(1)],
            GroupAcc {
                accs: vec![Acc::Sum(-250), Acc::Min(Some(-3))],
                count: -1,
            },
        );
        m.insert(
            tup![Value::Int(2)],
            GroupAcc {
                accs: vec![Acc::Sum(40), Acc::Min(None)],
                count: 2,
            },
        );
        d.merge_groups(m);
        let wire = d.to_wire();
        let back = SummaryDelta::from_wire(&wire).unwrap();
        // Re-serialization is byte-identical (deterministic group order).
        assert_eq!(back.to_wire(), wire);
        assert_eq!(back.group_count(), 2);
        // The parsed delta behaves identically against a stored extent.
        assert_eq!(back.agg_types, d.agg_types);
        assert_eq!(back.group_arity, d.group_arity);
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(SummaryDelta::from_wire("nonsense").is_err());
        assert!(SummaryDelta::from_wire("SUMMARY 1 Sum:decimal\nGROUP 1 S5\ti:1\n").is_err());
        assert!(SummaryDelta::from_wire("SUMMARY 1 Sum:decimal\nGROUP x\n").is_err());
        assert!(SummaryDelta::from_wire("SUMMARY 1 Frob:decimal\nEND\n").is_err());
    }

    #[test]
    fn empty_summary_produces_empty_delta() {
        let d = SummaryDelta::new(1, vec![(AggFunc::Sum, ValueType::Decimal)]);
        assert!(d.is_empty());
        assert!(d.to_delta(&stored()).unwrap().is_empty());
    }
}
