//! The warehouse: stored view extents, view definitions, and pending deltas.

use crate::engine::eval;
use crate::engine::publish::InstallPublisher;
use crate::engine::summary::{stored_aggregate_schema, SummaryDelta};
use crate::error::{CoreError, CoreResult};
use std::collections::BTreeMap;
use uww_relational::ops::{self, SignedRows};
use uww_relational::{
    Catalog, DeltaRelation, RelError, RelResult, Schema, Table, Tuple, Value, ViewDef, ViewOutput,
    WorkMeter,
};
use uww_vdag::{Vdag, ViewId};

/// The in-flight delta of one view during an update window.
#[derive(Clone, Debug)]
pub enum PendingDelta {
    /// Plus/minus tuples (base views and projection views).
    Rows(DeltaRelation),
    /// Additive per-group accumulator changes (aggregate views).
    Summary(SummaryDelta),
}

impl PendingDelta {
    /// True when the delta carries no change.
    pub fn is_empty(&self) -> bool {
        match self {
            PendingDelta::Rows(d) => d.is_empty(),
            PendingDelta::Summary(s) => s.is_empty(),
        }
    }
}

/// A warehouse: a VDAG of materialized views backed by stored extents, plus
/// the pending deltas of the current update window.
///
/// Cloning a warehouse snapshots the entire state, which is how experiments
/// run many strategies against identical starting conditions.
#[derive(Clone)]
pub struct Warehouse {
    vdag: Vdag,
    /// Definitions of derived views, keyed by name.
    defs: BTreeMap<String, ViewDef>,
    /// Stored extents (aggregate views include the hidden count column).
    state: Catalog,
    /// Pending deltas, keyed by view name.
    pending: BTreeMap<String, PendingDelta>,
    /// Cumulative work meter.
    meter: WorkMeter,
    /// When attached, every completed `Inst` publishes the view's new extent
    /// to a shared versioned catalog for online readers.
    publisher: Option<InstallPublisher>,
}

impl Warehouse {
    /// Starts building a warehouse.
    pub fn builder() -> WarehouseBuilder {
        WarehouseBuilder::default()
    }

    /// The VDAG.
    pub fn vdag(&self) -> &Vdag {
        &self.vdag
    }

    /// The stored extent of `view`.
    pub fn table(&self, view: &str) -> CoreResult<&Table> {
        Ok(self.state.get(view)?)
    }

    /// The stored catalog.
    pub fn state(&self) -> &Catalog {
        &self.state
    }

    /// The definition of a derived view.
    pub fn def(&self, view: &str) -> Option<&ViewDef> {
        self.defs.get(view)
    }

    /// The cumulative work meter.
    pub fn meter(&self) -> &WorkMeter {
        &self.meter
    }

    /// Mutable meter access (used by the executor).
    pub(crate) fn meter_mut(&mut self) -> &mut WorkMeter {
        &mut self.meter
    }

    pub(crate) fn state_mut(&mut self) -> &mut Catalog {
        &mut self.state
    }

    /// Attaches an install publisher: from now on every completed `Inst`
    /// (sequential or parallel executor alike) publishes the view's new
    /// extent to the publisher's shared [`uww_relational::VersionedCatalog`].
    pub fn attach_publisher(&mut self, publisher: InstallPublisher) {
        self.publisher = Some(publisher);
    }

    /// Detaches the install publisher, returning it if one was attached.
    pub fn detach_publisher(&mut self) -> Option<InstallPublisher> {
        self.publisher.take()
    }

    /// The attached install publisher, if any.
    pub fn publisher(&self) -> Option<&InstallPublisher> {
        self.publisher.as_ref()
    }

    pub(crate) fn pending_map(&self) -> &BTreeMap<String, PendingDelta> {
        &self.pending
    }

    pub(crate) fn pending_map_mut(&mut self) -> &mut BTreeMap<String, PendingDelta> {
        &mut self.pending
    }

    /// The pending delta of `view`, if any.
    pub fn pending(&self, view: &str) -> Option<&PendingDelta> {
        self.pending.get(view)
    }

    /// Loads the change batch for this update window. Only base views may
    /// receive external deltas; any previous pending state is discarded.
    pub fn load_changes(&mut self, changes: BTreeMap<String, DeltaRelation>) -> CoreResult<()> {
        self.pending.clear();
        for (view, delta) in changes {
            let id = self.vdag.id_of(&view)?;
            if !self.vdag.is_base(id) {
                return Err(CoreError::Warehouse(format!(
                    "cannot load external changes for derived view {view}"
                )));
            }
            let table = self.state.get(&view)?;
            if delta.schema() != table.schema() {
                return Err(CoreError::Warehouse(format!(
                    "delta schema mismatch for {view}"
                )));
            }
            self.pending.insert(view, PendingDelta::Rows(delta));
        }
        Ok(())
    }

    /// Replaces the stored state with a recovered snapshot, after verifying
    /// that it covers exactly this warehouse's views with matching schemas.
    /// Any pending deltas are discarded (recovery reloads them from the WAL
    /// directory's change snapshot).
    pub(crate) fn restore_state(&mut self, snapshot: Catalog) -> CoreResult<()> {
        if snapshot.len() != self.state.len() {
            return Err(CoreError::Warehouse(format!(
                "snapshot has {} views, warehouse has {}",
                snapshot.len(),
                self.state.len()
            )));
        }
        for table in self.state.iter() {
            let restored = snapshot.get(table.name()).map_err(|_| {
                CoreError::Warehouse(format!("snapshot is missing view {}", table.name()))
            })?;
            if restored.schema() != table.schema() {
                return Err(CoreError::Warehouse(format!(
                    "snapshot schema mismatch for {}",
                    table.name()
                )));
            }
        }
        self.state = snapshot;
        self.pending.clear();
        Ok(())
    }

    /// `|ΔV|` of the pending delta of `view`: expanded plus+minus rows.
    /// Zero when no delta is pending.
    pub fn pending_len(&self, view: &str) -> CoreResult<u64> {
        match self.pending.get(view) {
            None => Ok(0),
            Some(PendingDelta::Rows(d)) => Ok(d.len()),
            Some(PendingDelta::Summary(s)) => Ok(s
                .to_delta(self.state.get(view)?)
                .map_err(CoreError::Rel)?
                .len()),
        }
    }

    /// The pending delta of `view` expanded to plus/minus rows over its
    /// stored schema. Empty delta when nothing is pending.
    pub fn pending_rows(&self, view: &str) -> CoreResult<DeltaRelation> {
        let table = self.state.get(view)?;
        match self.pending.get(view) {
            None => Ok(DeltaRelation::new(table.schema().clone())),
            Some(PendingDelta::Rows(d)) => Ok(d.clone()),
            Some(PendingDelta::Summary(s)) => Ok(s.to_delta(table).map_err(CoreError::Rel)?),
        }
    }

    /// An empty pending delta of the right shape for `view`.
    pub(crate) fn empty_pending_for(&self, view: &str) -> CoreResult<PendingDelta> {
        match self.defs.get(view) {
            Some(def) if def.is_aggregate() => {
                let joined = self.joined_schema(def)?;
                let group_arity = match &def.output {
                    ViewOutput::Aggregate { group_by, .. } => group_by.len(),
                    ViewOutput::Project(_) => unreachable!("is_aggregate checked"),
                };
                let agg_types = eval::agg_types(def, &joined).map_err(CoreError::Rel)?;
                Ok(PendingDelta::Summary(SummaryDelta::new(
                    group_arity,
                    agg_types,
                )))
            }
            Some(def) => {
                let visible = self.visible_schema(def)?;
                Ok(PendingDelta::Rows(DeltaRelation::new(visible)))
            }
            None => {
                let table = self.state.get(view)?;
                Ok(PendingDelta::Rows(DeltaRelation::new(
                    table.schema().clone(),
                )))
            }
        }
    }

    fn joined_schema(&self, def: &ViewDef) -> CoreResult<Schema> {
        def.joined_schema(|v| self.state.get(v).map(|t| t.schema().clone()))
            .map_err(CoreError::Rel)
    }

    fn visible_schema(&self, def: &ViewDef) -> CoreResult<Schema> {
        def.output_schema(|v| self.state.get(v).map(|t| t.schema().clone()))
            .map_err(CoreError::Rel)
    }

    /// Fully materializes `def` from the current stored state (a from-scratch
    /// evaluation; used at build time and by consistency checks).
    pub fn materialize(&self, def: &ViewDef) -> CoreResult<Table> {
        materialize_from(&self.state, def).map_err(CoreError::Rel)
    }

    /// The database state every correct strategy must produce: base deltas
    /// installed, derived views recomputed from scratch. Call *before*
    /// executing a strategy (it reads the pending base deltas).
    pub fn expected_final_state(&self) -> CoreResult<Catalog> {
        let mut cat = Catalog::new();
        // Base views with their deltas applied.
        for v in self.vdag.base_views() {
            let name = self.vdag.name(v);
            let table = self.state.get(name)?;
            match self.pending.get(name) {
                Some(PendingDelta::Rows(d)) => cat.register(d.applied_to(table)?)?,
                Some(PendingDelta::Summary(_)) => {
                    return Err(CoreError::Warehouse(format!(
                        "base view {name} has a summary delta"
                    )))
                }
                None => cat.register(table.clone())?,
            }
        }
        // Derived views recomputed bottom-up.
        for v in self.vdag.derived_views() {
            let name = self.vdag.name(v);
            let def = self
                .defs
                .get(name)
                .ok_or_else(|| CoreError::Warehouse(format!("missing def for {name}")))?;
            cat.register(materialize_from(&cat, def)?)?;
        }
        Ok(cat)
    }

    /// Compares the stored state against `expected`, returning the names of
    /// views whose contents differ.
    pub fn diff_state(&self, expected: &Catalog) -> Vec<String> {
        let mut out = Vec::new();
        for table in expected.iter() {
            match self.state.get(table.name()) {
                Ok(actual) if actual.same_contents(table) => {}
                _ => out.push(table.name().to_string()),
            }
        }
        out
    }

    /// Resolves view names to ids for a whole strategy's worth of use.
    pub fn view_id(&self, name: &str) -> CoreResult<ViewId> {
        Ok(self.vdag.id_of(name)?)
    }
}

/// Builder for [`Warehouse`].
#[derive(Default)]
pub struct WarehouseBuilder {
    base_tables: Vec<Table>,
    defs: Vec<ViewDef>,
}

impl WarehouseBuilder {
    /// Registers a base view with its loaded extent.
    pub fn base_table(mut self, table: Table) -> Self {
        self.base_tables.push(table);
        self
    }

    /// Registers a derived view definition. Definitions may reference base
    /// views and previously satisfiable definitions in any order; the builder
    /// topologically sorts them.
    pub fn view(mut self, def: ViewDef) -> Self {
        self.defs.push(def);
        self
    }

    /// Registers several derived view definitions at once.
    pub fn view_all(mut self, defs: impl IntoIterator<Item = ViewDef>) -> Self {
        self.defs.extend(defs);
        self
    }

    /// Validates everything, builds the VDAG, and materializes every derived
    /// view from scratch.
    pub fn build(self) -> CoreResult<Warehouse> {
        let mut vdag = Vdag::new();
        let mut state = Catalog::new();
        for t in self.base_tables {
            vdag.add_base(t.name())?;
            state.register(t)?;
        }

        // Topologically order the defs (sources must already be registered).
        let mut remaining: Vec<ViewDef> = self.defs;
        let mut defs: BTreeMap<String, ViewDef> = BTreeMap::new();
        while !remaining.is_empty() {
            let ready = remaining
                .iter()
                .position(|d| d.source_views().iter().all(|s| state.contains(s)));
            let Some(idx) = ready else {
                let names: Vec<String> = remaining.iter().map(|d| d.name.clone()).collect();
                return Err(CoreError::Warehouse(format!(
                    "unsatisfiable view definitions (missing sources): {names:?}"
                )));
            };
            let def = remaining.swap_remove(idx);
            def.validate(|v| state.get(v).map(|t| t.schema().clone()))?;
            let source_ids: Vec<ViewId> = def
                .source_views()
                .iter()
                .map(|s| vdag.id_of(s))
                .collect::<Result<_, _>>()?;
            vdag.add_derived(&def.name, &source_ids)?;
            let table = materialize_from(&state, &def)?;
            state.register(table)?;
            defs.insert(def.name.clone(), def);
        }

        Ok(Warehouse {
            vdag,
            defs,
            state,
            pending: BTreeMap::new(),
            meter: WorkMeter::new(),
            publisher: None,
        })
    }
}

/// From-scratch evaluation of `def` against `state`, producing the stored
/// extent (with the hidden count column for aggregate views).
pub(crate) fn materialize_from(state: &Catalog, def: &ViewDef) -> RelResult<Table> {
    let mut scratch_meter = WorkMeter::new();
    let (schema, rows) = eval::eval_term(
        def,
        |v| state.get(v).map(|t| t.schema().clone()),
        |v| {
            let t = state.get(v)?;
            Ok(ops::scan_table(t, &mut WorkMeter::new()))
        },
        &mut scratch_meter,
    )?;

    match &def.output {
        ViewOutput::Project(_) => {
            let out_rows = eval::project_output(def, &schema, &rows, &mut scratch_meter)?;
            let visible = def.output_schema(|v| state.get(v).map(|t| t.schema().clone()))?;
            let mut table = Table::new(&def.name, visible);
            for (t, m) in ops::consolidate(out_rows) {
                if m < 0 {
                    return Err(RelError::NegativeMultiplicity {
                        relation: def.name.clone(),
                    });
                }
                table.insert_n(t, m as u64)?;
            }
            Ok(table)
        }
        ViewOutput::Aggregate { .. } => {
            let groups = eval::group_output(def, &schema, &rows)?;
            let visible = def.output_schema(|v| state.get(v).map(|t| t.schema().clone()))?;
            let stored = stored_aggregate_schema(&visible)?;
            let agg_types = eval::agg_types(def, &schema)?;
            let mut table = Table::new(&def.name, stored);
            for (key, acc) in groups {
                if acc.count <= 0 {
                    return Err(RelError::NegativeMultiplicity {
                        relation: def.name.clone(),
                    });
                }
                let mut vals: Vec<Value> = key.values().to_vec();
                for (i, (func, ty)) in agg_types.iter().enumerate() {
                    let raw = match acc.accs[i] {
                        uww_relational::ops::Acc::Sum(v) => v,
                        uww_relational::ops::Acc::Min(Some(v))
                        | uww_relational::ops::Acc::Max(Some(v)) => v,
                        uww_relational::ops::Acc::Min(None)
                        | uww_relational::ops::Acc::Max(None) => {
                            return Err(RelError::UnsupportedIncremental(format!(
                                "{func:?} over a group with no rows"
                            )))
                        }
                    };
                    vals.push(super::summary_raw_to_value(*func, *ty, raw));
                }
                vals.push(Value::Int(acc.count));
                table.insert(Tuple::new(vals))?;
            }
            Ok(table)
        }
    }
}

/// Scans the operand for `view` in role `role` against the warehouse state,
/// charging `meter`.
pub(crate) fn scan_operand(
    state: &Catalog,
    pending: &BTreeMap<String, PendingDelta>,
    view: &str,
    as_delta: bool,
    meter: &mut WorkMeter,
) -> RelResult<SignedRows> {
    if as_delta {
        match pending.get(view) {
            None => Ok(Vec::new()),
            Some(PendingDelta::Rows(d)) => Ok(ops::scan_delta(d, meter)),
            Some(PendingDelta::Summary(s)) => {
                let expanded = s.to_delta(state.get(view)?)?;
                Ok(ops::scan_delta(&expanded, meter))
            }
        }
    } else {
        Ok(ops::scan_table(state.get(view)?, meter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_relational::{
        tup, AggFunc, AggregateColumn, EquiJoin, OutputColumn, Predicate, ScalarExpr, ValueType,
        ViewSource,
    };

    fn base_r() -> Table {
        let mut t = Table::new(
            "R",
            Schema::of(&[("rk", ValueType::Int), ("rv", ValueType::Decimal)]),
        );
        for i in 0..4 {
            t.insert(tup![Value::Int(i), Value::Decimal(100 * (i + 1))])
                .unwrap();
        }
        t
    }

    fn base_s() -> Table {
        let mut t = Table::new(
            "S",
            Schema::of(&[("sk", ValueType::Int), ("grp", ValueType::Int)]),
        );
        for i in 0..4 {
            t.insert(tup![Value::Int(i), Value::Int(i % 2)]).unwrap();
        }
        t
    }

    fn agg_def() -> ViewDef {
        ViewDef {
            name: "V".into(),
            sources: vec![ViewSource::named("R"), ViewSource::named("S")],
            joins: vec![EquiJoin::new("R.rk", "S.sk")],
            filters: vec![],
            output: ViewOutput::Aggregate {
                group_by: vec![OutputColumn::col("grp", "S.grp")],
                aggregates: vec![AggregateColumn {
                    name: "total".into(),
                    func: AggFunc::Sum,
                    input: ScalarExpr::col("R.rv"),
                }],
            },
        }
    }

    fn proj_def() -> ViewDef {
        ViewDef {
            name: "P".into(),
            sources: vec![ViewSource::named("R")],
            joins: vec![],
            filters: vec![Predicate::col_gt("R.rv", Value::Decimal(150))],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "R.rk")]),
        }
    }

    #[test]
    fn build_materializes_views() {
        let w = Warehouse::builder()
            .base_table(base_r())
            .base_table(base_s())
            .view(agg_def())
            .view(proj_def())
            .build()
            .unwrap();
        // V: group 0 = rows 0,2 -> 100+300 = 400; group 1 = rows 1,3 -> 200+400 = 600.
        let v = w.table("V").unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(
            v.multiplicity(&tup![Value::Int(0), Value::Decimal(400), Value::Int(2)]),
            1
        );
        // P: rv > 1.50 -> keys 1,2,3.
        let p = w.table("P").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(w.vdag().len(), 4);
        assert!(w.def("V").is_some());
        assert!(w.def("R").is_none());
    }

    #[test]
    fn defs_registered_out_of_order() {
        // W depends on V; registered first.
        let w_def = ViewDef {
            name: "W".into(),
            sources: vec![ViewSource::named("V")],
            joins: vec![],
            filters: vec![],
            output: ViewOutput::Project(vec![OutputColumn::col("g", "V.grp")]),
        };
        let w = Warehouse::builder()
            .base_table(base_r())
            .base_table(base_s())
            .view(w_def)
            .view(agg_def())
            .build()
            .unwrap();
        assert_eq!(w.table("W").unwrap().len(), 2);
        assert_eq!(w.vdag().level(w.view_id("W").unwrap()), 2);
    }

    #[test]
    fn unsatisfiable_defs_rejected() {
        let err = Warehouse::builder()
            .base_table(base_r())
            .view(agg_def()) // needs S
            .build();
        assert!(matches!(err, Err(CoreError::Warehouse(_))));
    }

    #[test]
    fn load_changes_validates() {
        let mut w = Warehouse::builder()
            .base_table(base_r())
            .base_table(base_s())
            .view(agg_def())
            .build()
            .unwrap();
        // Derived view rejected.
        let mut m = BTreeMap::new();
        m.insert(
            "V".to_string(),
            DeltaRelation::new(w.table("V").unwrap().schema().clone()),
        );
        assert!(w.load_changes(m).is_err());
        // Schema mismatch rejected.
        let mut m = BTreeMap::new();
        m.insert(
            "R".to_string(),
            DeltaRelation::new(Schema::of(&[("x", ValueType::Int)])),
        );
        assert!(w.load_changes(m).is_err());
        // Valid delta accepted.
        let mut d = DeltaRelation::new(w.table("R").unwrap().schema().clone());
        d.add(tup![Value::Int(0), Value::Decimal(100)], -1);
        let mut m = BTreeMap::new();
        m.insert("R".to_string(), d);
        w.load_changes(m).unwrap();
        assert_eq!(w.pending_len("R").unwrap(), 1);
        assert_eq!(w.pending_len("S").unwrap(), 0);
    }

    #[test]
    fn expected_final_state_recomputes() {
        let mut w = Warehouse::builder()
            .base_table(base_r())
            .base_table(base_s())
            .view(agg_def())
            .build()
            .unwrap();
        let mut d = DeltaRelation::new(w.table("R").unwrap().schema().clone());
        d.add(tup![Value::Int(0), Value::Decimal(100)], -1);
        let mut m = BTreeMap::new();
        m.insert("R".to_string(), d);
        w.load_changes(m).unwrap();
        let expected = w.expected_final_state().unwrap();
        assert_eq!(expected.get("R").unwrap().len(), 3);
        // Group 0 loses row 0: total 300, count 1.
        assert_eq!(
            expected.get("V").unwrap().multiplicity(&tup![
                Value::Int(0),
                Value::Decimal(300),
                Value::Int(1)
            ]),
            1
        );
        // diff_state against unmodified warehouse flags R and V.
        let diffs = w.diff_state(&expected);
        assert_eq!(diffs, vec!["R", "V"]);
    }
}
