//! Error type for the planner and update engine.

use std::fmt;
use uww_analysis::Report;
use uww_relational::RelError;
use uww_vdag::VdagError;

/// Errors raised by warehouse construction, strategy execution, and planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An error from the relational substrate.
    Rel(RelError),
    /// An error from the VDAG model (including strategy-correctness
    /// violations).
    Vdag(VdagError),
    /// Warehouse-level misconfiguration.
    Warehouse(String),
    /// A planner precondition failed.
    Planner(String),
    /// The static strategy analyzer refused the strategy
    /// ([`ExecOptions::analyze_first`](crate::ExecOptions)); the full lint
    /// report with `UWW###` rule ids is attached.
    Analysis(Box<Report>),
    /// An install-WAL I/O or format problem (missing files, bad manifest,
    /// mismatched warehouse fingerprint).
    Wal(String),
    /// A WAL record failed its checksum or sequence check somewhere other
    /// than the torn tail — the log is damaged and recovery refuses it.
    WalCorrupt {
        /// Sequence number of the offending record.
        record: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// A [`FaultPlan`](crate::wal::FaultPlan) fired: the injected crash that
    /// the deterministic fault-injection harness uses to stop execution at
    /// an exact WAL record boundary.
    InjectedCrash {
        /// Sequence number the crash was injected before.
        record: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rel(e) => write!(f, "relational: {e}"),
            CoreError::Vdag(e) => write!(f, "vdag: {e}"),
            CoreError::Warehouse(d) => write!(f, "warehouse: {d}"),
            CoreError::Planner(d) => write!(f, "planner: {d}"),
            CoreError::Analysis(r) => {
                write!(f, "analysis: strategy refused\n{}", r.render_text())
            }
            CoreError::Wal(d) => write!(f, "wal: {d}"),
            CoreError::WalCorrupt { record, detail } => {
                write!(f, "wal: corrupt record {record}: {detail}")
            }
            CoreError::InjectedCrash { record } => {
                write!(f, "wal: injected crash before record {record}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Rel(e) => Some(e),
            CoreError::Vdag(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for CoreError {
    fn from(e: RelError) -> Self {
        CoreError::Rel(e)
    }
}

impl From<VdagError> for CoreError {
    fn from(e: VdagError) -> Self {
        CoreError::Vdag(e)
    }
}

/// Convenience alias.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = RelError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("relational"));
        let e: CoreError = VdagError::UnknownView("v".into()).into();
        assert!(e.to_string().contains("vdag"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::Warehouse("bad".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
