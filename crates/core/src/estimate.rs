//! Statistics-based result-size estimation (Section 5.5's "standard query
//! result size estimation methods \[Ull89\]").
//!
//! [`SizeCatalog::estimate`](crate::sizes::SizeCatalog::estimate) uses
//! simple change-fraction propagation. This module implements the textbook
//! System-R-style alternative on top of exact per-column statistics
//! ([`TableStats`]): join selectivity `1/max(d₁, d₂)` (containment of value
//! sets), equality selectivity `1/d`, uniform range selectivity, and a
//! distinct-product cap for group-by outputs.
//!
//! The classic caveat applies and is exercised by the tests: correlated
//! predicates (Q3's `o_orderdate < D AND l_shipdate > D`, where shipdate is
//! derived from orderdate) can be over-estimated by the independence
//! assumption. Strategy *ordering* only needs relative `|V'| − |V|` values,
//! which both estimators get right.

use crate::engine::Warehouse;
use crate::error::{CoreError, CoreResult};
use crate::sizes::{SizeCatalog, SizeInfo};
use std::collections::BTreeMap;
use uww_relational::{
    join_cardinality, CmpOp, Predicate, ScalarExpr, TableStats, ViewDef, ViewOutput,
};

/// A statistics-backed estimator over one warehouse state.
pub struct StatsEstimator {
    stats: BTreeMap<String, TableStats>,
}

impl StatsEstimator {
    /// Collects statistics for every stored view.
    pub fn collect(warehouse: &Warehouse) -> StatsEstimator {
        let stats = warehouse
            .state()
            .iter()
            .map(|t| (t.name().to_string(), TableStats::collect(t)))
            .collect();
        StatsEstimator { stats }
    }

    /// The collected stats of `view`.
    pub fn stats(&self, view: &str) -> Option<&TableStats> {
        self.stats.get(view)
    }

    /// Estimated cardinality of the SPJ part of `def` (before aggregation),
    /// under uniformity + independence + containment assumptions.
    pub fn estimate_spj_output(&self, warehouse: &Warehouse, def: &ViewDef) -> CoreResult<f64> {
        let mut card = 1.0f64;
        for s in &def.sources {
            let st = self
                .stats
                .get(&s.view)
                .ok_or_else(|| CoreError::Planner(format!("no stats for {}", s.view)))?;
            card *= st.rows as f64;
        }
        // Join selectivities.
        for j in &def.joins {
            let (lr, ld) = self.col_stats(warehouse, def, &j.left)?;
            let (rr, rd) = self.col_stats(warehouse, def, &j.right)?;
            let joined = join_cardinality(lr, ld, rr, rd);
            let cross = lr * rr;
            if cross > 0.0 {
                card *= joined / cross;
            } else {
                card = 0.0;
            }
        }
        // Filter selectivities.
        for f in &def.filters {
            card *= self.predicate_selectivity(warehouse, def, f)?;
        }
        Ok(card.max(0.0))
    }

    /// Estimated cardinality of `def`'s output (group-by output is capped by
    /// the product of group-column distinct counts).
    pub fn estimate_view_cardinality(
        &self,
        warehouse: &Warehouse,
        def: &ViewDef,
    ) -> CoreResult<f64> {
        let spj = self.estimate_spj_output(warehouse, def)?;
        match &def.output {
            ViewOutput::Project(_) => Ok(spj),
            ViewOutput::Aggregate { group_by, .. } => {
                let mut groups = f64::INFINITY;
                let mut product = 1.0f64;
                let mut all_simple = true;
                for g in group_by {
                    match &g.expr {
                        ScalarExpr::Col(c) => {
                            let (_, d) = self.col_stats(warehouse, def, c)?;
                            product *= d.max(1) as f64;
                        }
                        _ => all_simple = false,
                    }
                }
                if all_simple {
                    groups = product;
                }
                Ok(spj.min(groups))
            }
        }
    }

    /// Builds a [`SizeCatalog`] where derived-view deltas are scaled by the
    /// SPJ sensitivity to each source's change fraction.
    pub fn size_catalog(&self, warehouse: &Warehouse) -> CoreResult<SizeCatalog> {
        let g = warehouse.vdag();
        let mut cat = SizeCatalog::default();
        let mut fractions: Vec<(f64, f64)> = vec![(0.0, 0.0); g.len()];
        for v in g.view_ids() {
            let name = g.name(v);
            let pre = warehouse.table(name)?.len() as f64;
            if g.is_base(v) {
                let rows = warehouse.pending_rows(name)?;
                let minus = rows.minus_len() as f64;
                let plus = rows.plus_len() as f64;
                cat.set(
                    v,
                    SizeInfo {
                        pre,
                        post: pre - minus + plus,
                        delta: minus + plus,
                    },
                );
                if pre > 0.0 {
                    fractions[v.0] = (minus / pre, plus / pre);
                }
            } else {
                let def = warehouse
                    .def(name)
                    .ok_or_else(|| CoreError::Warehouse(format!("no def for {name}")))?;
                // Sensitivity: each source contributes (d_i + i_i) of the
                // estimated output; group churn doubles rows (minus + plus)
                // but is capped by 2·|V|.
                let mut churn_fraction = 0.0;
                let mut keep = 1.0;
                let mut gain = 0.0;
                for s in &def.sources {
                    let sid = g.id_of(&s.view)?;
                    let (d, i) = fractions[sid.0];
                    churn_fraction += d + i;
                    keep *= 1.0 - d.min(1.0);
                    gain += i;
                }
                let estimated_out = self.estimate_view_cardinality(warehouse, def)?;
                // Blend the stats-based output estimate with the known
                // stored size (the stored size is ground truth for `pre`).
                let basis = if pre > 0.0 { pre } else { estimated_out };
                let delta = (basis * churn_fraction * 2.0).min(basis * 2.0);
                let post = (basis * keep + basis * gain).max(0.0);
                cat.set(v, SizeInfo { pre, post, delta });
                if pre > 0.0 {
                    let d = ((pre - post) / pre).clamp(0.0, 1.0);
                    let i = ((post - pre) / pre).max(0.0);
                    fractions[v.0] = (d, i);
                }
            }
        }
        Ok(cat)
    }

    /// `(rows, distinct)` of the source column behind a qualified name.
    fn col_stats(
        &self,
        warehouse: &Warehouse,
        def: &ViewDef,
        qualified: &str,
    ) -> CoreResult<(f64, u64)> {
        let src = def.source_of_column(qualified).ok_or_else(|| {
            CoreError::Planner(format!("unresolvable column {qualified} in {}", def.name))
        })?;
        let view = &def.sources[src].view;
        let (_, col) = qualified.split_once('.').expect("qualified name");
        let table = warehouse.table(view)?;
        let idx = table.schema().index_of(col).map_err(CoreError::Rel)?;
        let stats = self
            .stats
            .get(view)
            .ok_or_else(|| CoreError::Planner(format!("no stats for {view}")))?;
        Ok((stats.rows as f64, stats.column(idx).distinct))
    }

    fn predicate_selectivity(
        &self,
        warehouse: &Warehouse,
        def: &ViewDef,
        p: &Predicate,
    ) -> CoreResult<f64> {
        Ok(match p {
            Predicate::True => 1.0,
            Predicate::And(a, b) => {
                self.predicate_selectivity(warehouse, def, a)?
                    * self.predicate_selectivity(warehouse, def, b)?
            }
            Predicate::Or(a, b) => {
                let sa = self.predicate_selectivity(warehouse, def, a)?;
                let sb = self.predicate_selectivity(warehouse, def, b)?;
                (sa + sb - sa * sb).clamp(0.0, 1.0)
            }
            Predicate::Not(a) => 1.0 - self.predicate_selectivity(warehouse, def, a)?,
            Predicate::Cmp(op, lhs, rhs) => {
                // Column-vs-literal comparisons get statistics; everything
                // else falls back to the System R defaults.
                match (lhs, rhs) {
                    (ScalarExpr::Col(c), ScalarExpr::Lit(v))
                    | (ScalarExpr::Lit(v), ScalarExpr::Col(c)) => {
                        let flipped = matches!(lhs, ScalarExpr::Lit(_));
                        self.cmp_selectivity(warehouse, def, c, *op, v, flipped)?
                    }
                    _ => match op {
                        CmpOp::Eq => 0.1,
                        CmpOp::Ne => 0.9,
                        _ => 1.0 / 3.0,
                    },
                }
            }
        })
    }

    fn cmp_selectivity(
        &self,
        warehouse: &Warehouse,
        def: &ViewDef,
        qualified: &str,
        op: CmpOp,
        lit: &uww_relational::Value,
        flipped: bool,
    ) -> CoreResult<f64> {
        let src = def.source_of_column(qualified).ok_or_else(|| {
            CoreError::Planner(format!("unresolvable column {qualified} in {}", def.name))
        })?;
        let view = &def.sources[src].view;
        let (_, col) = qualified.split_once('.').expect("qualified name");
        let table = warehouse.table(view)?;
        let idx = table.schema().index_of(col).map_err(CoreError::Rel)?;
        let stats = &self.stats[view];
        // Normalize `lit op col` to `col op' lit`.
        let op = if flipped {
            match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                other => other,
            }
        } else {
            op
        };
        Ok(match op {
            CmpOp::Eq => stats.eq_selectivity(idx),
            CmpOp::Ne => 1.0 - stats.eq_selectivity(idx),
            CmpOp::Lt | CmpOp::Le => stats.range_selectivity_lt(idx, lit),
            CmpOp::Gt | CmpOp::Ge => stats.range_selectivity_gt(idx, lit),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_relational::{
        tup, EquiJoin, OutputColumn, Schema, Table, Value, ValueType, ViewSource,
    };

    /// An independent-predicate warehouse where the estimator should be
    /// tight: R(k, flag) ⋈ S(k) filtered on flag.
    fn warehouse() -> Warehouse {
        let mut r = Table::new(
            "R",
            Schema::of(&[("k", ValueType::Int), ("flag", ValueType::Int)]),
        );
        for i in 0..200 {
            r.insert(tup![Value::Int(i % 100), Value::Int(i % 4)])
                .unwrap();
        }
        let mut s = Table::new("S", Schema::of(&[("k", ValueType::Int)]));
        for i in 0..100 {
            s.insert(tup![Value::Int(i)]).unwrap();
        }
        let def = ViewDef {
            name: "V".into(),
            sources: vec![ViewSource::named("R"), ViewSource::named("S")],
            joins: vec![EquiJoin::new("R.k", "S.k")],
            filters: vec![Predicate::col_eq("R.flag", Value::Int(0))],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "R.k")]),
        };
        Warehouse::builder()
            .base_table(r)
            .base_table(s)
            .view(def)
            .build()
            .unwrap()
    }

    #[test]
    fn independent_predicates_estimate_tightly() {
        let w = warehouse();
        let est = StatsEstimator::collect(&w);
        let def = w.def("V").unwrap();
        let spj = est.estimate_spj_output(&w, def).unwrap();
        let actual = w.table("V").unwrap().len() as f64;
        // |R ⋈ S| = 200 (every R row matches one S key); flag=0 keeps 1/4.
        assert!((actual - 50.0).abs() < 1.0, "actual {actual}");
        assert!(
            (spj / actual).abs() <= 2.0 && (actual / spj) <= 2.0,
            "estimate {spj} vs actual {actual}"
        );
    }

    #[test]
    fn group_cap_limits_aggregate_estimates() {
        let mut w = warehouse();
        // Rebuild V as an aggregate grouped on flag (4 distinct values).
        let def = ViewDef {
            name: "A".into(),
            sources: vec![ViewSource::named("R")],
            joins: vec![],
            filters: vec![],
            output: ViewOutput::Aggregate {
                group_by: vec![OutputColumn::col("flag", "R.flag")],
                aggregates: vec![],
            },
        };
        // Register by building a fresh warehouse with both views.
        let r = w.table("R").unwrap().clone();
        let s = w.table("S").unwrap().clone();
        w = Warehouse::builder()
            .base_table(r)
            .base_table(s)
            .view(def)
            .build()
            .unwrap();
        let est = StatsEstimator::collect(&w);
        let card = est
            .estimate_view_cardinality(&w, w.def("A").unwrap())
            .unwrap();
        assert_eq!(card, 4.0);
        assert_eq!(w.table("A").unwrap().len(), 4);
    }

    #[test]
    fn size_catalog_orders_like_simple_estimator() {
        use std::collections::BTreeMap;
        let mut w = warehouse();
        // Delete 20% of R.
        let mut d = uww_relational::DeltaRelation::new(w.table("R").unwrap().schema().clone());
        for (i, (t, m)) in w.table("R").unwrap().sorted_rows().into_iter().enumerate() {
            if i % 5 == 0 {
                d.add(t, -(m as i64));
            }
        }
        let mut changes = BTreeMap::new();
        changes.insert("R".to_string(), d);
        w.load_changes(changes).unwrap();

        let est = StatsEstimator::collect(&w);
        let stats_cat = est.size_catalog(&w).unwrap();
        let simple_cat = SizeCatalog::estimate(&w).unwrap();
        let g = w.vdag();
        // Both agree exactly on base views...
        for v in g.base_views() {
            assert_eq!(stats_cat.info(v).pre, simple_cat.info(v).pre);
            assert_eq!(stats_cat.info(v).delta, simple_cat.info(v).delta);
        }
        // ...and produce the same desired ordering.
        assert_eq!(
            stats_cat.desired_ordering(g).views(),
            simple_cat.desired_ordering(g).views()
        );
    }

    #[test]
    fn or_and_not_selectivities_bounded() {
        let w = warehouse();
        let est = StatsEstimator::collect(&w);
        let def = w.def("V").unwrap();
        let p = Predicate::Or(
            Box::new(Predicate::col_eq("R.flag", Value::Int(0))),
            Box::new(Predicate::Not(Box::new(Predicate::col_eq(
                "R.flag",
                Value::Int(1),
            )))),
        );
        let s = est.predicate_selectivity(&w, def, &p).unwrap();
        assert!((0.0..=1.0).contains(&s), "{s}");
    }
}
