//! Exhaustive enumeration of correct VDAG strategies.
//!
//! This is the validation baseline for the planners: on small VDAGs it
//! enumerates *every* correct strategy (not only 1-way ones) and finds the
//! true optimum under the cost model. The space explodes quickly — the
//! per-view `Comp` groupings multiply Bell numbers and interleavings multiply
//! factorially — so callers guard with [`MAX_EXPRESSIONS`].

use crate::cost::CostModel;
use crate::error::{CoreError, CoreResult};
use std::collections::BTreeSet;
use uww_vdag::{Strategy, UpdateExpr, Vdag, ViewId};

/// Upper bound on expressions per candidate strategy.
pub const MAX_EXPRESSIONS: usize = 14;

/// All *unordered* set partitions of `items` (Bell-number many).
fn set_partitions<T: Clone>(items: &[T]) -> Vec<Vec<Vec<T>>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let first = items[0].clone();
    let rest = set_partitions(&items[1..]);
    let mut out = Vec::new();
    for p in rest {
        // First joins each existing block...
        for b in 0..p.len() {
            let mut q = p.clone();
            q[b].insert(0, first.clone());
            out.push(q);
        }
        // ...or forms its own block.
        let mut q = p.clone();
        q.insert(0, vec![first.clone()]);
        out.push(q);
    }
    out
}

/// Enumerates every correct VDAG strategy of `g`.
///
/// For each derived view, chooses an unordered partition of its sources into
/// `Comp` groups; then enumerates all interleavings of the resulting
/// expression set that satisfy C1–C8, by incremental feasibility-checked
/// backtracking.
pub fn all_vdag_strategies(g: &Vdag) -> CoreResult<Vec<Strategy>> {
    let derived = g.derived_views();
    // Guard *before* computing partitions: Bell numbers explode, and even
    // listing the partitions of a wide view exhausts memory.
    let min_exprs = g.len() + derived.len();
    if min_exprs > MAX_EXPRESSIONS {
        return Err(CoreError::Planner(format!(
            "exhaustive enumeration over at least {min_exprs} expressions is infeasible"
        )));
    }
    if let Some(v) = derived.iter().find(|v| g.sources(**v).len() > 6) {
        return Err(CoreError::Planner(format!(
            "exhaustive enumeration infeasible: {} has {} sources",
            g.name(*v),
            g.sources(*v).len()
        )));
    }
    // Per-view partition choices.
    let per_view: Vec<Vec<Vec<Vec<ViewId>>>> = derived
        .iter()
        .map(|v| set_partitions(g.sources(*v)))
        .collect();

    let mut out = Vec::new();
    let mut choice = vec![0usize; derived.len()];
    loop {
        // Build the expression multiset for this combination of partitions.
        let mut exprs: Vec<UpdateExpr> = Vec::new();
        for (i, v) in derived.iter().enumerate() {
            for block in &per_view[i][choice[i]] {
                exprs.push(UpdateExpr::comp(*v, block.iter().copied()));
            }
        }
        for v in g.view_ids() {
            exprs.push(UpdateExpr::inst(v));
        }
        if exprs.len() > MAX_EXPRESSIONS {
            return Err(CoreError::Planner(format!(
                "exhaustive enumeration over {} expressions is infeasible",
                exprs.len()
            )));
        }
        interleavings(g, &exprs, &mut out);

        // Next combination.
        let mut i = 0;
        loop {
            if i == derived.len() {
                return Ok(out);
            }
            choice[i] += 1;
            if choice[i] < per_view[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

/// Backtracking enumeration of all correct linearizations of `exprs`.
fn interleavings(g: &Vdag, exprs: &[UpdateExpr], out: &mut Vec<Strategy>) {
    let mut used = vec![false; exprs.len()];
    let mut seq: Vec<usize> = Vec::with_capacity(exprs.len());
    let mut installed: BTreeSet<ViewId> = BTreeSet::new();
    let mut comps_done: Vec<usize> = vec![0; g.len()]; // per view, comps placed
    let comps_total: Vec<usize> = {
        let mut t = vec![0usize; g.len()];
        for e in exprs {
            if let UpdateExpr::Comp { view, .. } = e {
                t[view.0] += 1;
            }
        }
        t
    };
    // Per view: sources propagated by already-placed comps (for C4).
    let mut propagated: Vec<BTreeSet<ViewId>> = vec![BTreeSet::new(); g.len()];

    backtrack(
        g,
        exprs,
        &mut used,
        &mut seq,
        &mut installed,
        &mut comps_done,
        &comps_total,
        &mut propagated,
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    g: &Vdag,
    exprs: &[UpdateExpr],
    used: &mut [bool],
    seq: &mut Vec<usize>,
    installed: &mut BTreeSet<ViewId>,
    comps_done: &mut [usize],
    comps_total: &[usize],
    propagated: &mut [BTreeSet<ViewId>],
    out: &mut Vec<Strategy>,
) {
    if seq.len() == exprs.len() {
        out.push(Strategy::from_exprs(
            seq.iter().map(|&i| exprs[i].clone()).collect(),
        ));
        return;
    }
    for i in 0..exprs.len() {
        if used[i] {
            continue;
        }
        if !placeable(
            g,
            exprs,
            &exprs[i],
            installed,
            comps_done,
            comps_total,
            propagated,
        ) {
            continue;
        }
        used[i] = true;
        seq.push(i);
        let undo = apply(&exprs[i], installed, comps_done, propagated);
        backtrack(
            g,
            exprs,
            used,
            seq,
            installed,
            comps_done,
            comps_total,
            propagated,
            out,
        );
        revert(&exprs[i], installed, comps_done, propagated, undo);
        seq.pop();
        used[i] = false;
    }
}

fn placeable(
    g: &Vdag,
    exprs: &[UpdateExpr],
    e: &UpdateExpr,
    installed: &BTreeSet<ViewId>,
    comps_done: &[usize],
    comps_total: &[usize],
    propagated: &[BTreeSet<ViewId>],
) -> bool {
    match e {
        UpdateExpr::Inst(v) => {
            // C3: every Comp propagating Δv must already be placed. The
            // number of such comps equals the number of consumers of v whose
            // chosen partition includes v — equivalently, count pending comp
            // exprs that contain v.
            let pending_users = exprs.iter().any(|other| match other {
                UpdateExpr::Comp { view, over } => {
                    over.contains(v) && !propagated[view.0].contains(v)
                }
                _ => false,
            });
            if pending_users {
                return false;
            }
            // C5: a derived view installs only after all its comps.
            if !g.is_base(*v) && comps_done[v.0] < comps_total[v.0] {
                return false;
            }
            true
        }
        UpdateExpr::Comp { view, over } => {
            // C4: everything this view already propagated must be installed.
            if propagated[view.0].iter().any(|p| !installed.contains(p)) {
                return false;
            }
            // C8: Δ of a derived source must be fully computed first.
            for s in over {
                if !g.is_base(*s) && comps_done[s.0] < comps_total[s.0] {
                    return false;
                }
                // C3 (mirror): Δs must not be installed yet.
                if installed.contains(s) {
                    return false;
                }
            }
            true
        }
    }
}

fn apply(
    e: &UpdateExpr,
    installed: &mut BTreeSet<ViewId>,
    comps_done: &mut [usize],
    propagated: &mut [BTreeSet<ViewId>],
) -> Vec<ViewId> {
    match e {
        UpdateExpr::Inst(v) => {
            installed.insert(*v);
            Vec::new()
        }
        UpdateExpr::Comp { view, over } => {
            comps_done[view.0] += 1;
            let mut added = Vec::new();
            for s in over {
                if propagated[view.0].insert(*s) {
                    added.push(*s);
                }
            }
            added
        }
    }
}

fn revert(
    e: &UpdateExpr,
    installed: &mut BTreeSet<ViewId>,
    comps_done: &mut [usize],
    propagated: &mut [BTreeSet<ViewId>],
    undo: Vec<ViewId>,
) {
    match e {
        UpdateExpr::Inst(v) => {
            installed.remove(v);
        }
        UpdateExpr::Comp { view, .. } => {
            comps_done[view.0] -= 1;
            for s in undo {
                propagated[view.0].remove(&s);
            }
        }
    }
}

/// Enumerates every correct **1-way** VDAG strategy (singleton `Comp`
/// groupings only). This is the space Prune searches — the dots of the
/// paper's Figure 9; Prune examines one representative per view-ordering
/// partition.
pub fn all_one_way_vdag_strategies(g: &Vdag) -> CoreResult<Vec<Strategy>> {
    let derived = g.derived_views();
    let expr_count = g.len() + g.edges().len();
    if expr_count > MAX_EXPRESSIONS {
        return Err(CoreError::Planner(format!(
            "1-way enumeration over {expr_count} expressions is infeasible"
        )));
    }
    let mut exprs: Vec<UpdateExpr> = Vec::new();
    for v in &derived {
        for s in g.sources(*v) {
            exprs.push(UpdateExpr::comp1(*v, *s));
        }
    }
    for v in g.view_ids() {
        exprs.push(UpdateExpr::inst(v));
    }
    let mut out = Vec::new();
    interleavings(g, &exprs, &mut out);
    Ok(out)
}

/// The cheapest strategy over the *entire* correct-strategy space.
pub fn best_vdag_strategy(g: &Vdag, model: &CostModel<'_>) -> CoreResult<(Strategy, f64)> {
    let all = all_vdag_strategies(g)?;
    all.into_iter()
        .map(|s| {
            let c = model.strategy_work(&s);
            (s, c)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .ok_or_else(|| CoreError::Planner("no correct strategy exists".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{min_work, prune};
    use crate::sizes::{SizeCatalog, SizeInfo};
    use uww_vdag::{check_vdag_strategy, fubini};

    #[test]
    fn single_view_enumeration_matches_table1() {
        // For one view over n bases, the number of correct strategies is the
        // Fubini number — Equation (5) again, but now derived from the raw
        // C1–C8 interleaving semantics rather than ordered partitions.
        // (Work-equivalent reorderings of Inst expressions inflate the raw
        // count; dedup by the canonical partition signature.)
        for n in 1..=3usize {
            let mut g = Vdag::new();
            let bases: Vec<ViewId> = (0..n)
                .map(|i| g.add_base(format!("B{i}")).unwrap())
                .collect();
            g.add_derived("V", &bases).unwrap();
            let all = all_vdag_strategies(&g).unwrap();
            for s in &all {
                check_vdag_strategy(&g, s).unwrap();
            }
            // Group by (ordered) partition signature: sequence of comp
            // over-sets in order of appearance.
            let mut signatures = std::collections::HashSet::new();
            for s in &all {
                let sig: Vec<BTreeSet<ViewId>> = s
                    .exprs
                    .iter()
                    .filter_map(|e| match e {
                        UpdateExpr::Comp { over, .. } => Some(over.clone()),
                        _ => None,
                    })
                    .collect();
                signatures.insert(sig);
            }
            assert_eq!(signatures.len() as u128, fubini(n as u32), "n={n}");
        }
    }

    fn sized(g: &Vdag, entries: &[(&str, f64, f64)]) -> SizeCatalog {
        let mut cat = SizeCatalog::default();
        for (name, pre, frac) in entries {
            let v = g.id_of(name).unwrap();
            let delta = pre * frac;
            cat.set(
                v,
                SizeInfo {
                    pre: *pre,
                    post: pre - delta,
                    delta,
                },
            );
        }
        cat
    }

    #[test]
    fn minwork_matches_exhaustive_on_tree_vdag() {
        // Theorem 5.2 validated end-to-end: MinWork's strategy achieves the
        // global optimum over every correct strategy.
        let g = uww_vdag::figure3_vdag();
        let sizes = sized(
            &g,
            &[
                ("V1", 90.0, 0.05),
                ("V2", 250.0, 0.12),
                ("V3", 170.0, 0.07),
                ("V4", 120.0, 0.06),
                ("V5", 60.0, 0.04),
            ],
        );
        let model = CostModel::new(&g, &sizes);
        let (best, best_cost) = best_vdag_strategy(&g, &model).unwrap();
        check_vdag_strategy(&g, &best).unwrap();
        let plan = min_work(&g, &sizes).unwrap();
        let mw_cost = model.strategy_work(&plan.strategy);
        assert!(
            (mw_cost - best_cost).abs() < 1e-9,
            "MinWork {mw_cost} vs exhaustive {best_cost}"
        );
        // And the exhaustive optimum is 1-way (Theorem 4.1 lifted to VDAGs).
        assert!(best.is_one_way());
    }

    #[test]
    fn prune_matches_exhaustive_on_non_tree_vdag() {
        // Figure 10's VDAG is neither tree nor uniform; Prune still finds the
        // best 1-way strategy, which exhaustive search confirms is globally
        // optimal here.
        let g = uww_vdag::figure10_vdag();
        let sizes = sized(
            &g,
            &[
                ("V1", 90.0, 0.05),
                ("V2", 250.0, 0.12),
                ("V3", 170.0, 0.07),
                ("V4", 120.0, 0.06),
                ("V5", 60.0, 0.04),
            ],
        );
        let model = CostModel::new(&g, &sizes);
        let (_, best_cost) = best_vdag_strategy(&g, &model).unwrap();
        let pruned = prune(&g, &model).unwrap();
        assert!(
            (pruned.cost - best_cost).abs() < 1e-9,
            "Prune {} vs exhaustive {best_cost}",
            pruned.cost
        );
    }

    #[test]
    fn figure9_partitioning_and_theorem_6_1() {
        // Figure 9's intuition, made quantitative on the Figure 3 VDAG:
        // the space of 1-way VDAG strategies is large, Prune examines one
        // representative per view ordering (Lemma 6.1: each strategy is
        // strongly consistent with exactly one ordering), and all
        // strategies in a partition incur the same work (Theorem 6.1).
        use std::collections::HashMap;
        use uww_vdag::install_ordering;

        let g = uww_vdag::figure3_vdag();
        let sizes = sized(
            &g,
            &[
                ("V1", 90.0, 0.05),
                ("V2", 250.0, 0.12),
                ("V3", 170.0, 0.07),
                ("V4", 120.0, 0.06),
                ("V5", 60.0, 0.04),
            ],
        );
        let model = CostModel::new(&g, &sizes);

        let all = all_one_way_vdag_strategies(&g).unwrap();
        assert!(all.len() > 120, "space should dwarf the 5! orderings");
        for s in &all {
            assert!(s.is_one_way());
            check_vdag_strategy(&g, s).unwrap();
        }

        // Partition by the unique strong ordering; same partition => same
        // work under the linear metric.
        let mut by_ordering: HashMap<Vec<usize>, Vec<f64>> = HashMap::new();
        for s in &all {
            let ord = install_ordering(s, g.len());
            let key: Vec<usize> = ord.views().iter().map(|v| v.0).collect();
            by_ordering
                .entry(key)
                .or_default()
                .push(model.strategy_work(s));
        }
        // Far fewer partitions than strategies.
        assert!(by_ordering.len() < all.len());
        assert!(by_ordering.len() <= 120); // at most 5! orderings
        for (key, works) in &by_ordering {
            let first = works[0];
            for w in works {
                assert!(
                    (w - first).abs() < 1e-9,
                    "Theorem 6.1 violated for ordering {key:?}: {works:?}"
                );
            }
        }

        // Prune's optimum equals the enumerated 1-way optimum.
        let best_enumerated = all
            .iter()
            .map(|s| model.strategy_work(s))
            .fold(f64::INFINITY, f64::min);
        let pruned = crate::planner::prune(&g, &model).unwrap();
        assert!((pruned.cost - best_enumerated).abs() < 1e-9);
    }

    #[test]
    fn infeasible_sizes_rejected() {
        let mut g = Vdag::new();
        let bases: Vec<ViewId> = (0..12)
            .map(|i| g.add_base(format!("B{i}")).unwrap())
            .collect();
        g.add_derived("V", &bases).unwrap();
        assert!(all_vdag_strategies(&g).is_err());
    }

    #[test]
    fn set_partitions_are_bell_numbers() {
        assert_eq!(set_partitions(&[1]).len(), 1);
        assert_eq!(set_partitions(&[1, 2]).len(), 2);
        assert_eq!(set_partitions(&[1, 2, 3]).len(), 5);
        assert_eq!(set_partitions(&[1, 2, 3, 4]).len(), 15);
    }
}
