//! # uww-core
//!
//! The primary contribution of *Shrinking the Warehouse Update Window*
//! (Labio, Yerneni, Garcia-Molina, SIGMOD 1999): algorithms that pick, for a
//! DAG of materialized views and a batch of base-view changes, the update
//! strategy (sequence of `Comp`/`Inst` expressions) minimizing total work.
//!
//! * [`planner::min_work_single`] — **MinWorkSingle** (Section 4): the
//!   optimal strategy for one view, `O(n log n)`;
//! * [`planner::min_work`] — **MinWork** (Section 5): optimal for any VDAG
//!   whose expression graph is acyclic under the desired view ordering (in
//!   particular all tree and uniform VDAGs), near-optimal otherwise;
//! * [`planner::prune`] — **Prune** (Section 6): the best 1-way VDAG
//!   strategy for *any* VDAG, via `m!` strong-expression-graph candidates;
//! * [`cost::CostModel`] — the linear work metric (Definition 3.5) plus the
//!   flawed "operands once" variant used for the paper's metric ablation;
//! * [`sizes::SizeCatalog`] — `|V|`, `|ΔV|`, `|V'|` bookkeeping and the
//!   bottom-up estimator of Section 5.5;
//! * [`engine`] — a full update engine executing strategies against the
//!   `uww-relational` substrate, metering the measured counterpart of the
//!   work metric and wall-clock update windows;
//! * [`exhaustive`] — brute-force enumeration of *every* correct strategy on
//!   small VDAGs (the validation baseline for the optimality theorems);
//! * [`parallel`] — Section 9's parallel strategies: dependence-preserving
//!   stage scheduling, makespan costing, and VDAG flattening.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod cost;
pub mod design;
pub mod engine;
pub mod error;
pub mod estimate;
pub mod exhaustive;
pub mod lifecycle;
pub mod olap;
pub mod parallel;
pub mod planner;
pub mod recovery;
pub mod script;
pub mod sizes;
pub mod wal;

pub use calibrate::{calibrate, Calibration};
pub use cost::{CostMetric, CostModel};
pub use design::{greedy_select, Candidate, DesignOutcome};
pub use engine::{
    plan_strategy_sharing, plan_strategy_sharing_carried, predict_comp_sharing,
    predict_strategy_sharing, surviving_terms, CarryConformance, CompSharingPlan, ExecOptions,
    ExecutionReport, ExprReport, ExprSharingPrediction, InstallPublisher, OperandUse,
    PartitionOptions, PendingDelta, SharedIdentity, SharingScope, StrategySharingPlan,
    SummaryDelta, Warehouse, WarehouseBuilder, WindowCarry, WindowOutcome,
};
pub use error::{CoreError, CoreResult};
pub use estimate::StatsEstimator;
pub use exhaustive::{all_one_way_vdag_strategies, all_vdag_strategies, best_vdag_strategy};
pub use lifecycle::{MaintenancePolicy, PlannerChoice, QueryRecord, WarehouseDriver, WindowRecord};
pub use olap::{
    simulate as simulate_olap, InterferenceReport, IsolationMode, OlapWorkload, QueryOutcome,
};
pub use parallel::{
    canonical_stage_order, flatten_def, makespan, parallelize, total_work, ParallelReport,
    ParallelStrategy, StageReport,
};
pub use planner::{
    min_work, min_work_shared, min_work_shared_capped, min_work_single, one_way_for_ordering,
    prune, prune_full, sharing_report, sharing_report_scoped, MinWorkPlan, PruneOutcome,
    SharedPlanOutcome, PRUNE_MAX_VIEWS, SHARED_REPLAY_CAP,
};
pub use recovery::{recover, recover_with, RecoveryOutcome};
pub use script::{expr_to_sql, predicate_to_sql, value_to_sql, ScriptGenerator, SqlProcedure};
pub use sizes::{SizeCatalog, SizeInfo};
pub use wal::{FaultPlan, FsyncPolicy, WalConfig, WalLog};
