//! Multi-window warehouse lifecycle and maintenance policies.
//!
//! The paper plans *one* update window; a live warehouse runs them forever,
//! and the related work it builds on (\[CKL+97\], "Supporting multiple-view
//! maintenance policies") asks *when* to run them. This module provides the
//! driver: change batches arrive, a [`MaintenancePolicy`] decides when to
//! maintain, the chosen [`PlannerChoice`] decides how, and every window is
//! recorded.
//!
//! Deferring maintenance accumulates deltas (they merge — and partially
//! *cancel*, e.g. an insert-then-delete of the same rows costs nothing at
//! flush time) at the price of stale reads; the driver quantifies both
//! sides.

use crate::cost::CostModel;
use crate::engine::{ExecutionReport, Warehouse};
use crate::error::{CoreError, CoreResult};
use crate::planner::{min_work, prune};
use crate::sizes::SizeCatalog;
use std::collections::BTreeMap;
use uww_relational::{Catalog, DeltaRelation};
use uww_vdag::{dual_stage_strategy, Strategy};

/// How to plan each update window.
#[derive(Clone, Debug, Default)]
pub enum PlannerChoice {
    /// MinWork (the default).
    #[default]
    MinWork,
    /// Prune (exact best 1-way; factorial in consumed views).
    Prune,
    /// The dual-stage baseline.
    DualStage,
    /// A fixed, pre-written script (the paper's WHA status quo).
    Fixed(Strategy),
}

impl PlannerChoice {
    fn plan(&self, warehouse: &Warehouse) -> CoreResult<(Strategy, &'static str)> {
        let sizes = SizeCatalog::estimate(warehouse)?;
        match self {
            PlannerChoice::MinWork => {
                let plan = min_work(warehouse.vdag(), &sizes)?;
                Ok((plan.strategy, "minwork"))
            }
            PlannerChoice::Prune => {
                let model = CostModel::new(warehouse.vdag(), &sizes);
                let out = prune(warehouse.vdag(), &model)?;
                Ok((out.strategy, "prune"))
            }
            PlannerChoice::DualStage => Ok((dual_stage_strategy(warehouse.vdag()), "dual-stage")),
            PlannerChoice::Fixed(s) => Ok((s.clone(), "fixed")),
        }
    }
}

/// When to run maintenance.
#[derive(Clone, Debug)]
pub enum MaintenancePolicy {
    /// Maintain as soon as a batch arrives.
    Immediate,
    /// Accumulate batches; maintain only when a query needs a fresh view
    /// (or on explicit [`WarehouseDriver::flush`]).
    Deferred,
    /// Maintain after every `n` batches.
    Periodic(usize),
}

/// One completed maintenance window.
#[derive(Clone, Debug)]
pub struct WindowRecord {
    /// Index of the batch that triggered the window (0-based arrival count).
    pub triggered_by_batch: usize,
    /// Number of batches folded into this window.
    pub batches_folded: usize,
    /// Planner used.
    pub planner: &'static str,
    /// Execution measurements.
    pub report: ExecutionReport,
}

/// One query served by the driver.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// The queried view.
    pub view: String,
    /// Batches that were pending (staleness) when the query arrived.
    pub staleness: usize,
    /// Rows scanned to answer the query.
    pub rows_read: u64,
    /// Maintenance work this query had to wait for (deferred policy).
    pub forced_maintenance_work: u64,
}

/// Drives a warehouse through successive batches and queries under a policy.
pub struct WarehouseDriver {
    warehouse: Warehouse,
    policy: MaintenancePolicy,
    planner: PlannerChoice,
    /// Deltas accumulated but not yet installed, per base view.
    accumulated: BTreeMap<String, DeltaRelation>,
    batches_arrived: usize,
    batches_pending: usize,
    history: Vec<WindowRecord>,
    queries: Vec<QueryRecord>,
}

impl WarehouseDriver {
    /// Creates a driver.
    pub fn new(warehouse: Warehouse, policy: MaintenancePolicy, planner: PlannerChoice) -> Self {
        WarehouseDriver {
            warehouse,
            policy,
            planner,
            accumulated: BTreeMap::new(),
            batches_arrived: 0,
            batches_pending: 0,
            history: Vec::new(),
            queries: Vec::new(),
        }
    }

    /// The underlying warehouse (stored extents may be stale under deferred
    /// policies).
    pub fn warehouse(&self) -> &Warehouse {
        &self.warehouse
    }

    /// Completed windows.
    pub fn history(&self) -> &[WindowRecord] {
        &self.history
    }

    /// Served queries.
    pub fn queries(&self) -> &[QueryRecord] {
        &self.queries
    }

    /// Batches accumulated and not yet installed.
    pub fn pending_batches(&self) -> usize {
        self.batches_pending
    }

    /// Total maintenance work across all windows so far.
    pub fn total_maintenance_work(&self) -> u64 {
        self.history.iter().map(|w| w.report.linear_work()).sum()
    }

    /// The *logical* state: stored base extents with all accumulated deltas
    /// applied, derived views recomputed. What a fully-maintained warehouse
    /// would contain. Use it to generate the next consistent change batch.
    pub fn logical_state(&self) -> CoreResult<Catalog> {
        let mut w = self.warehouse.clone();
        w.load_changes(self.accumulated.clone())?;
        w.expected_final_state()
    }

    /// Delivers a change batch (deltas over base views, expressed against
    /// the current *logical* state). Depending on the policy this may
    /// trigger a maintenance window.
    pub fn deliver_batch(
        &mut self,
        changes: BTreeMap<String, DeltaRelation>,
    ) -> CoreResult<Option<&WindowRecord>> {
        for (view, delta) in changes {
            match self.accumulated.get_mut(&view) {
                Some(acc) => acc.merge(&delta),
                None => {
                    self.accumulated.insert(view, delta);
                }
            }
        }
        self.batches_arrived += 1;
        self.batches_pending += 1;

        let should_flush = match self.policy {
            MaintenancePolicy::Immediate => true,
            MaintenancePolicy::Deferred => false,
            MaintenancePolicy::Periodic(n) => self.batches_pending >= n.max(1),
        };
        if should_flush {
            self.flush()?;
            Ok(self.history.last())
        } else {
            Ok(None)
        }
    }

    /// Runs a maintenance window over everything accumulated. No-op when
    /// nothing is pending.
    pub fn flush(&mut self) -> CoreResult<()> {
        if self.batches_pending == 0 && self.accumulated.values().all(|d| d.is_empty()) {
            self.batches_pending = 0;
            return Ok(());
        }
        let changes = std::mem::take(&mut self.accumulated);
        self.warehouse.load_changes(changes)?;
        let (strategy, planner) = self.planner.plan(&self.warehouse)?;
        let report = self.warehouse.execute(&strategy)?;
        self.history.push(WindowRecord {
            triggered_by_batch: self.batches_arrived.saturating_sub(1),
            batches_folded: self.batches_pending,
            planner,
            report,
        });
        self.batches_pending = 0;
        Ok(())
    }

    /// Serves a query against `view`. Under the deferred policy this first
    /// forces maintenance so the reader sees fresh data; the forced work is
    /// charged to the query record.
    pub fn query(&mut self, view: &str) -> CoreResult<QueryRecord> {
        let staleness = self.batches_pending;
        let work_before = self.total_maintenance_work();
        if staleness > 0 {
            self.flush()?;
        }
        let table = self
            .warehouse
            .table(view)
            .map_err(|_| CoreError::Warehouse(format!("unknown view {view}")))?;
        let record = QueryRecord {
            view: view.to_string(),
            staleness,
            rows_read: table.len(),
            forced_maintenance_work: self.total_maintenance_work() - work_before,
        };
        self.queries.push(record.clone());
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_relational::{
        tup, EquiJoin, OutputColumn, Schema, Table, Tuple, Value, ValueType, ViewDef, ViewOutput,
        ViewSource,
    };

    fn warehouse() -> Warehouse {
        let mut r = Table::new("R", Schema::of(&[("k", ValueType::Int)]));
        for i in 0..100 {
            r.insert(tup![Value::Int(i)]).unwrap();
        }
        let mut s = Table::new("S", Schema::of(&[("k", ValueType::Int)]));
        for i in 0..100 {
            s.insert(tup![Value::Int(i)]).unwrap();
        }
        let def = ViewDef {
            name: "V".into(),
            sources: vec![ViewSource::named("R"), ViewSource::named("S")],
            joins: vec![EquiJoin::new("R.k", "S.k")],
            filters: vec![],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "R.k")]),
        };
        Warehouse::builder()
            .base_table(r)
            .base_table(s)
            .view(def)
            .build()
            .unwrap()
    }

    fn delete_batch(keys: std::ops::Range<i64>) -> BTreeMap<String, DeltaRelation> {
        let mut d = DeltaRelation::new(Schema::of(&[("k", ValueType::Int)]));
        for k in keys {
            d.add(Tuple::new(vec![Value::Int(k)]), -1);
        }
        let mut m = BTreeMap::new();
        m.insert("R".to_string(), d);
        m
    }

    fn insert_batch(keys: std::ops::Range<i64>) -> BTreeMap<String, DeltaRelation> {
        let mut d = DeltaRelation::new(Schema::of(&[("k", ValueType::Int)]));
        for k in keys {
            d.add(Tuple::new(vec![Value::Int(k)]), 1);
        }
        let mut m = BTreeMap::new();
        m.insert("R".to_string(), d);
        m
    }

    #[test]
    fn immediate_policy_maintains_every_batch() {
        let mut drv = WarehouseDriver::new(
            warehouse(),
            MaintenancePolicy::Immediate,
            PlannerChoice::MinWork,
        );
        assert!(drv.deliver_batch(delete_batch(0..5)).unwrap().is_some());
        assert!(drv.deliver_batch(delete_batch(5..10)).unwrap().is_some());
        assert_eq!(drv.history().len(), 2);
        assert_eq!(drv.pending_batches(), 0);
        assert_eq!(drv.warehouse().table("R").unwrap().len(), 90);
        assert_eq!(drv.warehouse().table("V").unwrap().len(), 90);
        assert_eq!(drv.history()[0].planner, "minwork");
    }

    #[test]
    fn deferred_policy_batches_and_serves_fresh_queries() {
        let mut drv = WarehouseDriver::new(
            warehouse(),
            MaintenancePolicy::Deferred,
            PlannerChoice::MinWork,
        );
        assert!(drv.deliver_batch(delete_batch(0..5)).unwrap().is_none());
        assert!(drv.deliver_batch(delete_batch(5..10)).unwrap().is_none());
        assert_eq!(drv.pending_batches(), 2);
        // Stored state is stale...
        assert_eq!(drv.warehouse().table("R").unwrap().len(), 100);
        // ...but the logical state is fresh.
        assert_eq!(drv.logical_state().unwrap().get("R").unwrap().len(), 90);

        // A query forces one combined window.
        let q = drv.query("V").unwrap();
        assert_eq!(q.staleness, 2);
        assert!(q.forced_maintenance_work > 0);
        assert_eq!(q.rows_read, 90);
        assert_eq!(drv.history().len(), 1);
        assert_eq!(drv.history()[0].batches_folded, 2);

        // A second query reads fresh data for free.
        let q = drv.query("V").unwrap();
        assert_eq!(q.staleness, 0);
        assert_eq!(q.forced_maintenance_work, 0);
    }

    #[test]
    fn deferred_batches_cancel() {
        // Insert 20 rows, then delete the same 20: deferred maintenance does
        // (nearly) nothing, immediate pays twice.
        let mut deferred = WarehouseDriver::new(
            warehouse(),
            MaintenancePolicy::Deferred,
            PlannerChoice::MinWork,
        );
        deferred.deliver_batch(insert_batch(1000..1020)).unwrap();
        deferred.deliver_batch(delete_batch(1000..1020)).unwrap();
        deferred.flush().unwrap();
        let deferred_work = deferred.total_maintenance_work();
        assert_eq!(deferred_work, 0, "cancelled batches must cost nothing");

        let mut immediate = WarehouseDriver::new(
            warehouse(),
            MaintenancePolicy::Immediate,
            PlannerChoice::MinWork,
        );
        immediate.deliver_batch(insert_batch(1000..1020)).unwrap();
        immediate.deliver_batch(delete_batch(1000..1020)).unwrap();
        assert!(immediate.total_maintenance_work() > 0);
        // Both end in the same state.
        assert!(immediate
            .warehouse()
            .table("V")
            .unwrap()
            .same_contents(deferred.warehouse().table("V").unwrap()));
    }

    #[test]
    fn periodic_policy_flushes_every_n() {
        let mut drv = WarehouseDriver::new(
            warehouse(),
            MaintenancePolicy::Periodic(3),
            PlannerChoice::DualStage,
        );
        assert!(drv.deliver_batch(delete_batch(0..2)).unwrap().is_none());
        assert!(drv.deliver_batch(delete_batch(2..4)).unwrap().is_none());
        let w = drv.deliver_batch(delete_batch(4..6)).unwrap().unwrap();
        assert_eq!(w.batches_folded, 3);
        assert_eq!(w.planner, "dual-stage");
        assert_eq!(drv.history().len(), 1);
    }

    #[test]
    fn fixed_script_policy_executes_the_given_strategy() {
        let w = warehouse();
        let fixed = dual_stage_strategy(w.vdag());
        let mut drv =
            WarehouseDriver::new(w, MaintenancePolicy::Immediate, PlannerChoice::Fixed(fixed));
        drv.deliver_batch(delete_batch(0..5)).unwrap();
        assert_eq!(drv.history()[0].planner, "fixed");
        assert_eq!(drv.warehouse().table("V").unwrap().len(), 95);
    }

    #[test]
    fn flush_with_nothing_pending_is_a_noop() {
        let mut drv = WarehouseDriver::new(
            warehouse(),
            MaintenancePolicy::Deferred,
            PlannerChoice::MinWork,
        );
        drv.flush().unwrap();
        assert!(drv.history().is_empty());
    }
}
