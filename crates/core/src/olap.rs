//! OLAP interference simulation (the paper's Section 7 "Discussion").
//!
//! The update window matters because OLAP queries either stop (locking) or
//! slow down (resource competition) while it runs. The paper's discussion
//! weighs the dual-stage strategy's one compact install phase ("minimizes
//! the time in which locking operations are necessary") against its much
//! longer compute phase, and argues that once OLAP queries run at lower
//! isolation levels — so installs need no locks — the 1-way strategies'
//! smaller total work wins outright.
//!
//! This module makes that argument quantitative: a deterministic
//! discrete-time simulation runs a strategy's expressions back to back
//! (durations from the [`CostModel`]), admits a stream of OLAP queries
//! (fixed inter-arrival, round-robin over the views), and reports per-query
//! latency under two isolation regimes.

use crate::cost::CostModel;
use crate::sizes::SizeCatalog;
use std::collections::HashSet;
use uww_vdag::{Strategy, UpdateExpr, Vdag, ViewId};

/// How installs interact with concurrent queries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsolationMode {
    /// Installs take an exclusive lock on their target view: a query whose
    /// target is being installed waits for the install to finish.
    Strict,
    /// Queries read at a lower isolation level; installs never block them.
    /// (The paper: "it is often acceptable for OLAP queries to run at lower
    /// isolation levels, which allows the Inst expressions to run without
    /// locking.")
    LowIsolation,
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct OlapWorkload {
    /// Work-units between consecutive query arrivals.
    pub interarrival: f64,
    /// Query service demand as a fraction of its target view's size
    /// (a query scanning 10% of the view: `0.1`).
    pub scan_fraction: f64,
    /// Slow-down factor applied to query service while the update runs
    /// (resource competition; `2.0` = queries run at half speed).
    pub update_contention: f64,
    /// Isolation regime.
    pub isolation: IsolationMode,
}

impl Default for OlapWorkload {
    fn default() -> Self {
        OlapWorkload {
            interarrival: 500.0,
            scan_fraction: 0.25,
            update_contention: 2.0,
            isolation: IsolationMode::Strict,
        }
    }
}

/// One simulated query's outcome.
#[derive(Clone, Copy, Debug)]
pub struct QueryOutcome {
    /// The view the query read.
    pub target: ViewId,
    /// Arrival time (work units from window start).
    pub arrival: f64,
    /// Time spent blocked on an install lock.
    pub lock_wait: f64,
    /// Service time (inflated by contention while the update ran).
    pub service: f64,
}

impl QueryOutcome {
    /// Total response time.
    pub fn latency(&self) -> f64 {
        self.lock_wait + self.service
    }
}

/// Aggregate simulation results.
#[derive(Clone, Debug)]
pub struct InterferenceReport {
    /// Length of the update window in work units.
    pub window: f64,
    /// Span from the start of the first install to the end of the last
    /// (the "locking phase" the dual-stage strategy compresses).
    pub install_span: f64,
    /// Total time spent inside installs (locks held, under `Strict`).
    pub total_install_time: f64,
    /// Every simulated query.
    pub queries: Vec<QueryOutcome>,
}

impl InterferenceReport {
    /// Mean query latency.
    pub fn mean_latency(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(QueryOutcome::latency).sum::<f64>() / self.queries.len() as f64
    }

    /// Maximum query latency.
    pub fn max_latency(&self) -> f64 {
        self.queries
            .iter()
            .map(QueryOutcome::latency)
            .fold(0.0, f64::max)
    }

    /// Total lock-wait across all queries.
    pub fn total_lock_wait(&self) -> f64 {
        self.queries.iter().map(|q| q.lock_wait).sum()
    }

    /// Latency at quantile `q` (`0.0 ≤ q ≤ 1.0`), nearest-rank on the sorted
    /// latencies. `0.0` for an empty report. The same definition the serving
    /// subsystem uses for its measured p50/p95/p99, so simulated and measured
    /// distributions compare like for like.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        let mut lats: Vec<f64> = self.queries.iter().map(QueryOutcome::latency).collect();
        if lats.is_empty() {
            return 0.0;
        }
        lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((q.clamp(0.0, 1.0) * lats.len() as f64).ceil() as usize).max(1) - 1;
        lats[rank.min(lats.len() - 1)]
    }
}

/// Simulates one update window with concurrent OLAP queries.
///
/// The expression timeline is derived from the cost model (work units double
/// as time units, as on the paper's scan-bound hardware). Queries arrive at
/// `t = 0, interarrival, 2·interarrival, …` while the window is open,
/// targeting the *queryable* views (derived views — warehouse users query
/// summary tables) in round-robin order.
pub fn simulate(
    g: &Vdag,
    model: &CostModel<'_>,
    sizes: &SizeCatalog,
    strategy: &Strategy,
    workload: &OlapWorkload,
) -> InterferenceReport {
    // Build the expression timeline.
    let per_expr = model.per_expression_work(strategy);
    let mut t = 0.0;
    let mut installs: Vec<(ViewId, f64, f64)> = Vec::new(); // (view, start, end)
    let mut installed: HashSet<ViewId> = HashSet::new();
    for (e, w) in strategy.exprs.iter().zip(&per_expr) {
        let start = t;
        t += *w;
        if let UpdateExpr::Inst(v) = e {
            installs.push((*v, start, t));
            installed.insert(*v);
        }
    }
    let window = t;
    let install_span = match (installs.first(), installs.last()) {
        (Some(first), Some(last)) => last.2 - first.1,
        _ => 0.0,
    };
    let total_install_time: f64 = installs.iter().map(|(_, s, e)| e - s).sum();

    // Queryable views: summary tables; fall back to all views for bare
    // VDAGs.
    let mut targets: Vec<ViewId> = g.derived_views();
    if targets.is_empty() {
        targets = g.view_ids().collect();
    }

    let mut queries = Vec::new();
    let mut arrival = 0.0;
    let mut next_target = 0usize;
    while arrival < window {
        let target = targets[next_target % targets.len()];
        next_target += 1;

        // Lock wait: if an install on the target is in progress at arrival.
        let lock_wait = match workload.isolation {
            IsolationMode::LowIsolation => 0.0,
            IsolationMode::Strict => installs
                .iter()
                .find(|(v, s, e)| *v == target && *s <= arrival && arrival < *e)
                .map(|(_, _, e)| e - arrival)
                .unwrap_or(0.0),
        };

        // Service: scan a fraction of the target view (post-install size if
        // its install completed before the query starts), slowed by
        // contention while the update window is open.
        let start_service = arrival + lock_wait;
        let installed_by_then = installs
            .iter()
            .any(|(v, _, e)| *v == target && *e <= start_service);
        let view_size = sizes.state_size(target, installed_by_then);
        let base_service = view_size * workload.scan_fraction;
        let service = if start_service < window {
            base_service * workload.update_contention
        } else {
            base_service
        };

        queries.push(QueryOutcome {
            target,
            arrival,
            lock_wait,
            service,
        });
        arrival += workload.interarrival;
    }

    InterferenceReport {
        window,
        install_span,
        total_install_time,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::min_work;
    use crate::sizes::SizeInfo;
    use uww_vdag::dual_stage_strategy;

    fn setup() -> (Vdag, SizeCatalog) {
        let mut g = Vdag::new();
        let b: Vec<ViewId> = (0..3)
            .map(|i| g.add_base(format!("B{i}")).unwrap())
            .collect();
        g.add_derived("V", &b).unwrap();
        let mut sizes = SizeCatalog::default();
        for (i, id) in b.iter().enumerate() {
            let pre = 1000.0 * (i + 1) as f64;
            sizes.set(
                *id,
                SizeInfo {
                    pre,
                    post: pre * 0.9,
                    delta: pre * 0.1,
                },
            );
        }
        sizes.set(
            g.id_of("V").unwrap(),
            SizeInfo {
                pre: 400.0,
                post: 360.0,
                delta: 40.0,
            },
        );
        (g, sizes)
    }

    #[test]
    fn dual_stage_compresses_install_span_but_lengthens_window() {
        let (g, sizes) = setup();
        let model = CostModel::new(&g, &sizes);
        let wl = OlapWorkload::default();

        let plan = min_work(&g, &sizes).unwrap();
        let one_way = simulate(&g, &model, &sizes, &plan.strategy, &wl);
        let dual = simulate(&g, &model, &sizes, &dual_stage_strategy(&g), &wl);

        // The paper's trade-off, quantified.
        assert!(
            dual.install_span < one_way.install_span,
            "dual install span {} vs one-way {}",
            dual.install_span,
            one_way.install_span
        );
        assert!(
            dual.window > one_way.window,
            "dual window {} vs one-way {}",
            dual.window,
            one_way.window
        );
        // Total install (lock) time is identical: same deltas installed.
        assert!((dual.total_install_time - one_way.total_install_time).abs() < 1e-9);
    }

    #[test]
    fn low_isolation_eliminates_lock_waits_and_one_way_wins() {
        let (g, sizes) = setup();
        let model = CostModel::new(&g, &sizes);
        let wl = OlapWorkload {
            isolation: IsolationMode::LowIsolation,
            ..OlapWorkload::default()
        };
        let plan = min_work(&g, &sizes).unwrap();
        let one_way = simulate(&g, &model, &sizes, &plan.strategy, &wl);
        let dual = simulate(&g, &model, &sizes, &dual_stage_strategy(&g), &wl);

        assert_eq!(one_way.total_lock_wait(), 0.0);
        assert_eq!(dual.total_lock_wait(), 0.0);
        // Shorter window -> fewer queries suffer contention -> lower total
        // degraded time. Mean latency under the 1-way plan must not exceed
        // the dual-stage plan's.
        assert!(
            one_way.mean_latency() <= dual.mean_latency() + 1e-9,
            "one-way {} vs dual {}",
            one_way.mean_latency(),
            dual.mean_latency()
        );
        // And strictly fewer queries arrive inside the (shorter) window.
        assert!(one_way.queries.len() <= dual.queries.len());
    }

    #[test]
    fn strict_isolation_charges_lock_waits() {
        let (g, sizes) = setup();
        let model = CostModel::new(&g, &sizes);
        // Flood of queries so some inevitably land inside installs.
        let wl = OlapWorkload {
            interarrival: 10.0,
            isolation: IsolationMode::Strict,
            ..OlapWorkload::default()
        };
        let plan = min_work(&g, &sizes).unwrap();
        let rep = simulate(&g, &model, &sizes, &plan.strategy, &wl);
        // Inst(V) takes 40 units; queries target V every 10 units; at least
        // one must block.
        assert!(
            rep.total_lock_wait() > 0.0,
            "expected lock waits, got none over {} queries",
            rep.queries.len()
        );
        assert!(rep.max_latency() >= rep.mean_latency());
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let queries = (1..=100)
            .map(|i| QueryOutcome {
                target: ViewId(0),
                arrival: 0.0,
                lock_wait: 0.0,
                service: i as f64,
            })
            .collect();
        let rep = InterferenceReport {
            window: 0.0,
            install_span: 0.0,
            total_install_time: 0.0,
            queries,
        };
        assert_eq!(rep.latency_percentile(0.50), 50.0);
        assert_eq!(rep.latency_percentile(0.95), 95.0);
        assert_eq!(rep.latency_percentile(0.99), 99.0);
        assert_eq!(rep.latency_percentile(1.0), 100.0);
        assert_eq!(rep.latency_percentile(0.0), 1.0);
        let empty = InterferenceReport {
            window: 0.0,
            install_span: 0.0,
            total_install_time: 0.0,
            queries: Vec::new(),
        };
        assert_eq!(empty.latency_percentile(0.5), 0.0);
    }

    #[test]
    fn empty_strategy_yields_empty_report() {
        let (g, sizes) = setup();
        let model = CostModel::new(&g, &sizes);
        let rep = simulate(
            &g,
            &model,
            &sizes,
            &Strategy::new(),
            &OlapWorkload::default(),
        );
        assert_eq!(rep.window, 0.0);
        assert!(rep.queries.is_empty());
        assert_eq!(rep.mean_latency(), 0.0);
    }
}
