//! Parallel strategies (Section 9).
//!
//! A parallel VDAG strategy is a sequence of expression *sets*: all
//! expressions within a stage can be sent to the database concurrently, and
//! installs take effect between stages. The paper sketches (and defers to
//! future work) two levers for widening stages — dual-stage view strategies
//! (fewer C4 dependencies) and VDAG *flattening* (rewriting a view over an
//! intermediate view to run directly against the intermediate's sources,
//! removing C8 dependencies) — at the price of more total work. This module
//! implements the model, both levers, a makespan cost, and a real threaded
//! executor, so the trade-off can be measured.

use crate::cost::CostModel;
use crate::engine::{ExecOptions, ExecutionReport, Warehouse};
use crate::error::{CoreError, CoreResult};
use std::collections::HashSet;
use uww_obs as obs;
use uww_relational::{ScalarExpr, ViewDef, ViewOutput};
use uww_vdag::{Strategy, UpdateExpr, Vdag, ViewId};

/// A sequence of stages; expressions within a stage run in parallel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelStrategy {
    /// The stages, in execution order.
    pub stages: Vec<Vec<UpdateExpr>>,
}

impl ParallelStrategy {
    /// Total number of expressions.
    pub fn expression_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// The equivalent sequential strategy (stages concatenated).
    pub fn linearize(&self) -> Strategy {
        Strategy::from_exprs(self.stages.iter().flatten().cloned().collect())
    }

    /// Number of stages — the critical-path length.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }
}

/// Converts a correct sequential strategy into a parallel strategy by
/// dependence-preserving list scheduling.
///
/// Two expressions depend on each other when reordering them could change
/// either the result or the database state any `Comp` observes:
///
/// 1. `Inst(v)` after every `Comp` that propagates Δv (C3);
/// 2. `Inst(W)` after every `Comp(W, ·)` (C5);
/// 3. `Comp(W, {..v..})` after every `Comp(v, ·)` (C8);
/// 4. the *sequential order* between `Inst(v)` and any `Comp` whose view
///    reads `v` (in either delta or stored role) is preserved, so every term
///    sees exactly the states it saw sequentially.
///
/// Each expression is placed in the earliest stage after all its
/// dependencies.
pub fn parallelize(g: &Vdag, s: &Strategy) -> ParallelStrategy {
    let n = s.len();
    let mut stage = vec![0usize; n];
    for j in 0..n {
        let mut min_stage = 0usize;
        for (i, earlier_stage) in stage.iter().enumerate().take(j) {
            if depends(g, &s.exprs[i], &s.exprs[j]) {
                min_stage = min_stage.max(earlier_stage + 1);
            }
        }
        stage[j] = min_stage;
    }
    let depth = stage.iter().copied().max().map_or(0, |d| d + 1);
    let mut stages = vec![Vec::new(); depth];
    for (j, e) in s.exprs.iter().enumerate() {
        stages[stage[j]].push(e.clone());
    }
    ParallelStrategy { stages }
}

/// True when `later` must stay after `earlier` (see [`parallelize`]).
fn depends(g: &Vdag, earlier: &UpdateExpr, later: &UpdateExpr) -> bool {
    match (earlier, later) {
        // C3: Comp propagating Δv, then Inst(v); C5: Inst(W) after Comp(W,·).
        (UpdateExpr::Comp { view, over }, UpdateExpr::Inst(v)) => over.contains(v) || *view == *v,
        // C5 and C8.
        (UpdateExpr::Comp { view: w1, .. }, UpdateExpr::Comp { view: w2, over }) => {
            // C8: the later Comp propagates Δw1, or same view (keep a view's
            // comps ordered so C4's install interleavings stay sequential).
            *w1 == *w2 || over.contains(w1)
        }
        // State preservation: Inst(v) before a Comp that reads v.
        (UpdateExpr::Inst(v), UpdateExpr::Comp { view, .. }) => g.sources(*view).contains(v),
        // Inst(W) after its own comps is covered above; C5 here:
        // (Comp(W,·), Inst(W)).
        (UpdateExpr::Inst(_), UpdateExpr::Inst(_)) => false,
    }
}

/// Makespan of a parallel strategy under the linear work metric: the sum
/// over stages of the most expensive expression in the stage. Installs take
/// effect at stage boundaries.
pub fn makespan(model: &CostModel<'_>, p: &ParallelStrategy) -> f64 {
    let mut installed: HashSet<ViewId> = HashSet::new();
    let mut total = 0.0;
    for stage in &p.stages {
        let mut worst = 0.0f64;
        for e in stage {
            worst = worst.max(model.expression_work(e, &installed));
        }
        total += worst;
        for e in stage {
            if let UpdateExpr::Inst(v) = e {
                installed.insert(*v);
            }
        }
    }
    total
}

/// Total (sequential-equivalent) work of a parallel strategy.
pub fn total_work(model: &CostModel<'_>, p: &ParallelStrategy) -> f64 {
    let mut installed: HashSet<ViewId> = HashSet::new();
    let mut total = 0.0;
    for stage in &p.stages {
        for e in stage {
            total += model.expression_work(e, &installed);
        }
        for e in stage {
            if let UpdateExpr::Inst(v) = e {
                installed.insert(*v);
            }
        }
    }
    total
}

/// **Flattening** (Section 9, technique 2): rewrites `outer` (defined over
/// the intermediate view `inner`, which must be a *projection* view) to run
/// directly over `inner`'s sources, eliminating the C8 dependency between
/// their `Comp` expressions.
///
/// Every reference to an `inner` output column is substituted by its
/// defining expression; `inner`'s sources, joins and filters are inlined.
/// Fails for aggregate intermediates (their rows are not a function of
/// single source rows) and when source sets would collide.
pub fn flatten_def(outer: &ViewDef, inner: &ViewDef) -> CoreResult<ViewDef> {
    let inner_alias = outer
        .alias_of(&inner.name)
        .ok_or_else(|| {
            CoreError::Planner(format!("{} is not defined over {}", outer.name, inner.name))
        })?
        .to_string();
    let inner_outputs = match &inner.output {
        ViewOutput::Project(outs) => outs,
        ViewOutput::Aggregate { .. } => {
            return Err(CoreError::Planner(format!(
                "cannot flatten through aggregate view {}",
                inner.name
            )))
        }
    };

    // Substitution map: "ALIAS.col" -> inner defining expression.
    let substitute = |e: &ScalarExpr| -> CoreResult<ScalarExpr> {
        Ok(substitute_expr(e, &inner_alias, inner_outputs))
    };

    // New source list: outer's sources minus the inner view, plus inner's
    // sources.
    let mut sources = Vec::new();
    for s in &outer.sources {
        if s.view != inner.name {
            sources.push(s.clone());
        }
    }
    for s in &inner.sources {
        if sources
            .iter()
            .any(|t| t.view == s.view || t.alias == s.alias)
        {
            return Err(CoreError::Planner(format!(
                "flattening {} into {} would duplicate source {}",
                inner.name, outer.name, s.view
            )));
        }
        sources.push(s.clone());
    }

    // Joins: outer joins with substituted endpoints must remain simple
    // column-to-column equalities.
    let mut joins = Vec::new();
    let mut filters = Vec::new();
    for j in &outer.joins {
        let l = substitute(&ScalarExpr::Col(j.left.clone()))?;
        let r = substitute(&ScalarExpr::Col(j.right.clone()))?;
        match (&l, &r) {
            (ScalarExpr::Col(lc), ScalarExpr::Col(rc)) => {
                joins.push(uww_relational::EquiJoin::new(lc.clone(), rc.clone()));
            }
            _ => {
                // A computed join key becomes a residual filter.
                filters.push(uww_relational::Predicate::Cmp(
                    uww_relational::CmpOp::Eq,
                    l,
                    r,
                ));
            }
        }
    }
    joins.extend(inner.joins.iter().cloned());

    for f in &outer.filters {
        filters.push(substitute_pred(f, &inner_alias, inner_outputs));
    }
    filters.extend(inner.filters.iter().cloned());

    let output = match &outer.output {
        ViewOutput::Project(outs) => ViewOutput::Project(
            outs.iter()
                .map(|o| {
                    Ok(uww_relational::OutputColumn {
                        name: o.name.clone(),
                        expr: substitute(&o.expr)?,
                    })
                })
                .collect::<CoreResult<_>>()?,
        ),
        ViewOutput::Aggregate {
            group_by,
            aggregates,
        } => ViewOutput::Aggregate {
            group_by: group_by
                .iter()
                .map(|o| {
                    Ok(uww_relational::OutputColumn {
                        name: o.name.clone(),
                        expr: substitute(&o.expr)?,
                    })
                })
                .collect::<CoreResult<_>>()?,
            aggregates: aggregates
                .iter()
                .map(|a| {
                    Ok(uww_relational::AggregateColumn {
                        name: a.name.clone(),
                        func: a.func,
                        input: substitute(&a.input)?,
                    })
                })
                .collect::<CoreResult<_>>()?,
        },
    };

    Ok(ViewDef {
        name: outer.name.clone(),
        sources,
        joins,
        filters,
        output,
    })
}

fn substitute_expr(
    e: &ScalarExpr,
    inner_alias: &str,
    outs: &[uww_relational::OutputColumn],
) -> ScalarExpr {
    match e {
        ScalarExpr::Col(c) => {
            if let Some(rest) = c.strip_prefix(inner_alias) {
                if let Some(col) = rest.strip_prefix('.') {
                    if let Some(o) = outs.iter().find(|o| o.name == col) {
                        return o.expr.clone();
                    }
                }
            }
            e.clone()
        }
        ScalarExpr::Lit(_) => e.clone(),
        ScalarExpr::Add(a, b) => ScalarExpr::Add(
            Box::new(substitute_expr(a, inner_alias, outs)),
            Box::new(substitute_expr(b, inner_alias, outs)),
        ),
        ScalarExpr::Sub(a, b) => ScalarExpr::Sub(
            Box::new(substitute_expr(a, inner_alias, outs)),
            Box::new(substitute_expr(b, inner_alias, outs)),
        ),
        ScalarExpr::Mul(a, b) => ScalarExpr::Mul(
            Box::new(substitute_expr(a, inner_alias, outs)),
            Box::new(substitute_expr(b, inner_alias, outs)),
        ),
    }
}

fn substitute_pred(
    p: &uww_relational::Predicate,
    inner_alias: &str,
    outs: &[uww_relational::OutputColumn],
) -> uww_relational::Predicate {
    use uww_relational::Predicate as P;
    match p {
        P::Cmp(op, a, b) => P::Cmp(
            *op,
            substitute_expr(a, inner_alias, outs),
            substitute_expr(b, inner_alias, outs),
        ),
        P::And(a, b) => P::And(
            Box::new(substitute_pred(a, inner_alias, outs)),
            Box::new(substitute_pred(b, inner_alias, outs)),
        ),
        P::Or(a, b) => P::Or(
            Box::new(substitute_pred(a, inner_alias, outs)),
            Box::new(substitute_pred(b, inner_alias, outs)),
        ),
        P::Not(a) => P::Not(Box::new(substitute_pred(a, inner_alias, outs))),
        P::True => P::True,
    }
}

/// Measurements for one executed parallel stage.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Per-expression measurements within the stage.
    pub per_expr: Vec<crate::engine::ExprReport>,
    /// Wall-clock time of the whole stage (comps ran concurrently, so this
    /// is close to the slowest comp plus the serial installs).
    pub wall: std::time::Duration,
}

/// Measurements for a threaded parallel execution.
#[derive(Clone, Debug, Default)]
pub struct ParallelReport {
    /// Per-stage breakdowns.
    pub stages: Vec<StageReport>,
}

impl ParallelReport {
    /// Total work across all stages (equals the sequential strategy's work).
    pub fn total_work(&self) -> uww_relational::WorkMeter {
        let mut total = uww_relational::WorkMeter::new();
        for s in &self.stages {
            for e in &s.per_expr {
                total.absorb(&e.work);
            }
        }
        total
    }

    /// The measured makespan: sum of stage walls.
    pub fn wall(&self) -> std::time::Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// Measured linear work.
    pub fn linear_work(&self) -> u64 {
        self.total_work().linear_work()
    }
}

/// The canonical stage-by-stage linearization the WAL manifest records for
/// a parallel strategy: each stage's `Comp`s (in stage order), then its
/// `Inst`s (in stage order) — exactly the order
/// [`Warehouse::execute_parallel_threaded`] makes its effects visible
/// (fragments merge after the comp threads join, installs land at the stage
/// boundary). Stage races that would make this reordering unfaithful are
/// rejected up front by the analyzer (UWW001), which is what lets recovery
/// resume a crashed threaded run *sequentially* in this order.
pub fn canonical_stage_order(p: &ParallelStrategy) -> Vec<(usize, UpdateExpr)> {
    let mut out = Vec::with_capacity(p.expression_count());
    for (si, stage) in p.stages.iter().enumerate() {
        for e in stage {
            if matches!(e, UpdateExpr::Comp { .. }) {
                out.push((si, e.clone()));
            }
        }
        for e in stage {
            if matches!(e, UpdateExpr::Inst(_)) {
                out.push((si, e.clone()));
            }
        }
    }
    out
}

impl Warehouse {
    /// Executes a parallel strategy sequentially (stage order linearized).
    /// Semantically identical to [`Warehouse::execute_parallel_threaded`];
    /// useful when determinism of the work meter matters more than wall
    /// time.
    pub fn execute_parallel(&mut self, p: &ParallelStrategy) -> CoreResult<ExecutionReport> {
        self.execute_parallel_with(p, ExecOptions::default())
    }

    /// [`Warehouse::execute_parallel`] with explicit options (including WAL
    /// journaling).
    pub fn execute_parallel_with(
        &mut self,
        p: &ParallelStrategy,
        opts: ExecOptions,
    ) -> CoreResult<ExecutionReport> {
        // Every linearization of a stage must be equivalent; the dependency
        // construction guarantees it. Validate the canonical linearization.
        let linear = p.linearize();
        self.execute_with(&linear, opts)
    }

    /// Executes a parallel strategy with **real threads**: within each
    /// stage, every `Comp` expression's fragment is computed concurrently
    /// against the frozen stage-entry state (the fragments are pure reads —
    /// see [`crate::engine::exec`]), then the fragments merge and the
    /// stage's `Inst` expressions apply serially at the stage boundary.
    pub fn execute_parallel_threaded(
        &mut self,
        p: &ParallelStrategy,
    ) -> CoreResult<ParallelReport> {
        self.execute_parallel_threaded_with(p, ExecOptions::default())
    }

    /// [`Warehouse::execute_parallel_threaded`] with explicit options.
    ///
    /// Installs run serially at stage boundaries through the same
    /// [`exec_inst`](crate::engine::exec) funnel as the sequential executor,
    /// so an attached [`InstallPublisher`](crate::engine::InstallPublisher)
    /// publishes every stage's installs to online readers atomically.
    ///
    /// With a WAL attached, records are stage-granular: a `STG` barrier
    /// record opens each stage, every comp's `CS` is appended before the
    /// threads spawn, each journaled `CD` lands (log-ahead) as the fragments
    /// merge serially after the join, and `IS`/`ID` bracket each serial
    /// install — so a crash at any record boundary resumes from the exact
    /// expression it interrupted, in [`canonical_stage_order`].
    pub fn execute_parallel_threaded_with(
        &mut self,
        p: &ParallelStrategy,
        opts: ExecOptions,
    ) -> CoreResult<ParallelReport> {
        if opts.validate {
            uww_vdag::check_vdag_strategy(self.vdag(), &p.linearize())?;
        }
        // The linearized check cannot see stage races: a same-stage pair
        // like `Comp(V5, {V4}); Comp(V4, ..)` linearizes to a C8-legal order
        // yet computes against the frozen stage-entry state here, silently
        // dropping ΔV4's contribution. The static analyzer (UWW001) can —
        // and it also underwrites the WAL manifest's canonical order, so it
        // always runs here.
        let report = uww_analysis::analyze_parallel(self.vdag(), &p.stages);
        if report.has_errors() {
            return Err(CoreError::Analysis(Box::new(report)));
        }
        let canonical = canonical_stage_order(p);
        let mut wal = match &opts.wal {
            Some(cfg) => {
                let staged: Vec<(usize, &UpdateExpr)> =
                    canonical.iter().map(|(s, e)| (*s, e)).collect();
                Some(self.wal_begin(cfg, &staged)?)
            }
            None => None,
        };
        let mut run_span = obs::span(obs::SpanKind::Run, "execute_parallel_threaded");
        run_span.attr_u64("stages", p.stages.len() as u64);
        // Manifest index of each expression: comps first, then insts, per
        // stage. Computed per stage below from a running offset.
        let mut next_idx = 0usize;
        let mut report = ParallelReport::default();
        for (si, stage) in p.stages.iter().enumerate() {
            let mut stage_span = obs::span_dyn(obs::SpanKind::Stage, || format!("stage {si}"));
            stage_span.attr_u64(obs::keys::STAGE, si as u64);
            let t0 = std::time::Instant::now();
            if let Some(w) = &mut wal {
                w.append(&crate::wal::RecordBody::Stage(si))?;
            }
            let comps: Vec<(ViewId, std::collections::BTreeSet<ViewId>)> = stage
                .iter()
                .filter_map(|e| match e {
                    UpdateExpr::Comp { view, over } => Some((*view, over.clone())),
                    UpdateExpr::Inst(_) => None,
                })
                .collect();
            let comp_idx0 = next_idx;
            let inst_idx0 = comp_idx0 + comps.len();
            next_idx += stage.len();
            // Log-ahead intent for every comp in the stage before spawning.
            if let Some(w) = &mut wal {
                for i in 0..comps.len() {
                    w.append(&crate::wal::RecordBody::CompStart(comp_idx0 + i))?;
                }
            }

            // Fan the comps out over threads; each sees the frozen state.
            type CompResult = CoreResult<(
                UpdateExpr,
                String,
                crate::engine::PendingDelta,
                uww_relational::WorkMeter,
                std::time::Duration,
            )>;
            let this: &Warehouse = self;
            let topts = opts.term_options();
            let predicted = opts.predicted_work.as_deref();
            let stage_parent = obs::current_span_id();
            let results: Vec<CompResult> = std::thread::scope(|scope| {
                let handles: Vec<_> = comps
                    .iter()
                    .enumerate()
                    .map(|(ci, (view, over))| {
                        scope.spawn(move || {
                            let expr = UpdateExpr::Comp {
                                view: *view,
                                over: over.clone(),
                            };
                            let mut span = {
                                let g = this.vdag();
                                obs::span_under_dyn(obs::SpanKind::Expression, stage_parent, || {
                                    expr.display(g).to_string()
                                })
                            };
                            if span.is_recording() {
                                crate::engine::exec::expr_attrs(&mut span, this.vdag(), &expr);
                                if let Some(p) = predicted.and_then(|p| p.get(comp_idx0 + ci)) {
                                    span.attr_f64(obs::keys::PREDICTED_WORK, *p);
                                }
                            }
                            let t = std::time::Instant::now();
                            let (name, fragment, meter) =
                                crate::engine::exec::comp_fragment(this, *view, over, topts, None)?;
                            crate::engine::exec::meter_attrs(&mut span, &meter);
                            Ok((expr, name, fragment, meter, t.elapsed()))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("comp thread panicked"))
                    .collect()
            });

            let mut per_expr = Vec::new();
            for (i, r) in results.into_iter().enumerate() {
                let (expr, name, fragment, mut meter, wall) = r?;
                if let Some(w) = &mut wal {
                    let payload = crate::wal::encode_pending(&fragment);
                    w.append(&crate::wal::RecordBody::CompDone {
                        idx: comp_idx0 + i,
                        digest: uww_relational::digest64(&payload),
                        payload,
                    })?;
                }
                self.merge_fragment(&name, fragment)?;
                meter.comp_expressions = 1;
                let total = self.meter_mut();
                total.comp_expressions += 1;
                crate::engine::share::fold_term_meter(total, &meter);
                per_expr.push(crate::engine::ExprReport {
                    expr,
                    work: meter,
                    wall,
                    replayed: false,
                });
            }

            // Installs land at the stage boundary, serially.
            let mut inst_idx = inst_idx0;
            for e in stage {
                if let UpdateExpr::Inst(v) = e {
                    let mut span = {
                        let g = self.vdag();
                        obs::span_dyn(obs::SpanKind::Expression, || e.display(g).to_string())
                    };
                    if span.is_recording() {
                        crate::engine::exec::expr_attrs(&mut span, self.vdag(), e);
                        if let Some(p) = predicted.and_then(|p| p.get(inst_idx)) {
                            span.attr_f64(obs::keys::PREDICTED_WORK, *p);
                        }
                    }
                    let before = *self.meter();
                    let t = std::time::Instant::now();
                    self.exec_inst_journaled(*v, inst_idx, &mut wal)?;
                    inst_idx += 1;
                    let work = self.meter().since(&before);
                    crate::engine::exec::meter_attrs(&mut span, &work);
                    drop(span);
                    per_expr.push(crate::engine::ExprReport {
                        expr: e.clone(),
                        work,
                        wall: t.elapsed(),
                        replayed: false,
                    });
                }
            }
            report.stages.push(StageReport {
                per_expr,
                wall: t0.elapsed(),
            });
        }
        if let Some(w) = &mut wal {
            w.append(&crate::wal::RecordBody::Commit)?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::{SizeCatalog, SizeInfo};
    use uww_relational::{OutputColumn, Predicate, Value, ViewSource};
    use uww_vdag::{check_vdag_strategy, dual_stage_strategy, figure3_vdag};

    fn sizes_for(g: &Vdag) -> SizeCatalog {
        let mut cat = SizeCatalog::default();
        for v in g.view_ids() {
            let pre = 100.0 * (v.0 + 1) as f64;
            cat.set(
                v,
                SizeInfo {
                    pre,
                    post: pre * 0.9,
                    delta: pre * 0.1,
                },
            );
        }
        cat
    }

    #[test]
    fn parallelize_preserves_linearized_correctness() {
        let g = figure3_vdag();
        let s = dual_stage_strategy(&g);
        let p = parallelize(&g, &s);
        check_vdag_strategy(&g, &p.linearize()).unwrap();
        assert_eq!(p.expression_count(), s.len());
        // Dual-stage: V4/V5 comps depend via C8; installs all in a later
        // stage. Depth must be < sequential length.
        assert!(p.depth() < s.len());
    }

    #[test]
    fn one_way_strategies_parallelize_poorly() {
        // The paper's observation: 1-way strategies have long dependency
        // chains, so their parallel form is nearly as deep as sequential;
        // dual-stage exposes much more parallelism.
        let g = figure3_vdag();
        let sizes = sizes_for(&g);
        let plan = crate::planner::min_work(&g, &sizes).unwrap();
        let p1 = parallelize(&g, &plan.strategy);
        let pd = parallelize(&g, &dual_stage_strategy(&g));
        assert!(
            pd.depth() < p1.depth(),
            "dual {} vs 1-way {}",
            pd.depth(),
            p1.depth()
        );
    }

    #[test]
    fn makespan_trade_off() {
        // Dual-stage: lower makespan potential per stage, higher total work.
        let g = figure3_vdag();
        let sizes = sizes_for(&g);
        let model = CostModel::new(&g, &sizes);
        let plan = crate::planner::min_work(&g, &sizes).unwrap();
        let p1 = parallelize(&g, &plan.strategy);
        let pd = parallelize(&g, &dual_stage_strategy(&g));
        let tw1 = total_work(&model, &p1);
        let twd = total_work(&model, &pd);
        assert!(tw1 < twd, "1-way total work must be lower: {tw1} vs {twd}");
        // Makespan: both are positive; sequential makespan of p1 equals its
        // total work when every stage is a singleton.
        if p1.stages.iter().all(|s| s.len() == 1) {
            assert!((makespan(&model, &p1) - tw1).abs() < 1e-9);
        }
        assert!(makespan(&model, &pd) <= twd);
    }

    #[test]
    fn threaded_execution_matches_sequential() {
        use uww_relational::{tup, DeltaRelation, Schema, Table, ValueType};
        // Build a real warehouse: two bases, two summary views.
        let mut r = Table::new(
            "R",
            Schema::of(&[("k", ValueType::Int), ("g", ValueType::Int)]),
        );
        for i in 0..200 {
            r.insert(tup![Value::Int(i), Value::Int(i % 7)]).unwrap();
        }
        let mut s = Table::new("S", Schema::of(&[("k", ValueType::Int)]));
        for i in 0..200 {
            s.insert(tup![Value::Int(i)]).unwrap();
        }
        let mk_view = |name: &str, modulus: i64| ViewDef {
            name: name.into(),
            sources: vec![ViewSource::named("R"), ViewSource::named("S")],
            joins: vec![uww_relational::EquiJoin::new("R.k", "S.k")],
            filters: vec![Predicate::col_ge("R.g", Value::Int(modulus))],
            output: ViewOutput::Project(vec![
                OutputColumn::col("k", "R.k"),
                OutputColumn::col("g", "R.g"),
            ]),
        };
        let base = Warehouse::builder()
            .base_table(r)
            .base_table(s)
            .view(mk_view("V1", 0))
            .view(mk_view("V2", 3))
            .build()
            .unwrap();
        let mut delta = DeltaRelation::new(base.table("R").unwrap().schema().clone());
        for i in 0..40 {
            delta.add(tup![Value::Int(i), Value::Int(i % 7)], -1);
        }
        let changes: std::collections::BTreeMap<_, _> =
            [("R".to_string(), delta)].into_iter().collect();

        let g = base.vdag();
        let dual = dual_stage_strategy(g);
        let p = parallelize(g, &dual);
        // Dual-stage over two independent summaries: both comps share a
        // stage, so the threads genuinely overlap.
        assert!(p.stages[0].len() >= 2);

        let mut seq = base.clone();
        seq.load_changes(changes.clone()).unwrap();
        let expected = seq.expected_final_state().unwrap();
        let seq_report = seq.execute_parallel(&p).unwrap();

        let mut par = base.clone();
        par.load_changes(changes).unwrap();
        let par_report = par.execute_parallel_threaded(&p).unwrap();

        assert!(par.diff_state(&expected).is_empty());
        assert!(seq.diff_state(&expected).is_empty());
        // Identical measured work, stage structure preserved.
        assert_eq!(
            par_report.total_work().operand_rows_scanned,
            seq_report.total_work().operand_rows_scanned
        );
        assert_eq!(
            par_report.total_work().rows_installed,
            seq_report.total_work().rows_installed
        );
        assert_eq!(par_report.stages.len(), p.depth());
        assert!(par_report.linear_work() > 0);
        assert!(par_report.wall() > std::time::Duration::ZERO);
    }

    #[test]
    fn threaded_execution_publishes_each_install() {
        use crate::engine::InstallPublisher;
        use std::sync::Arc;
        use uww_relational::{tup, DeltaRelation, Schema, Table, ValueType, VersionedCatalog};
        let mut r = Table::new(
            "R",
            Schema::of(&[("k", ValueType::Int), ("g", ValueType::Int)]),
        );
        for i in 0..50 {
            r.insert(tup![Value::Int(i), Value::Int(i % 5)]).unwrap();
        }
        let mk_view = |name: &str, modulus: i64| ViewDef {
            name: name.into(),
            sources: vec![ViewSource::named("R")],
            joins: vec![],
            filters: vec![Predicate::col_ge("R.g", Value::Int(modulus))],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "R.k")]),
        };
        let mut w = Warehouse::builder()
            .base_table(r)
            .view(mk_view("V1", 0))
            .view(mk_view("V2", 2))
            .build()
            .unwrap();
        let mut delta = DeltaRelation::new(w.table("R").unwrap().schema().clone());
        for i in 0..10 {
            delta.add(tup![Value::Int(i), Value::Int(i % 5)], -1);
        }
        w.load_changes([("R".to_string(), delta)].into_iter().collect())
            .unwrap();

        let versioned = Arc::new(VersionedCatalog::from_catalog(w.state()));
        w.attach_publisher(InstallPublisher::new(Arc::clone(&versioned), false));
        let p = parallelize(w.vdag(), &dual_stage_strategy(w.vdag()));
        let report = w.execute_parallel_threaded(&p).unwrap();

        // One published epoch per executed Inst, and the published extents
        // equal the engine's final state.
        assert_eq!(versioned.epoch(), report.total_work().inst_expressions);
        let snap = versioned.snapshot();
        for table in w.state().iter() {
            assert!(snap.get(table.name()).unwrap().same_contents(table));
        }
    }

    #[test]
    fn threaded_execution_rejects_incorrect_schedules() {
        use uww_relational::{tup, Schema, Table, ValueType};
        let mut r = Table::new("R", Schema::of(&[("k", ValueType::Int)]));
        r.insert(tup![Value::Int(1)]).unwrap();
        let def = ViewDef {
            name: "V".into(),
            sources: vec![ViewSource::named("R")],
            joins: vec![],
            filters: vec![],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "R.k")]),
        };
        let mut w = Warehouse::builder()
            .base_table(r)
            .view(def)
            .build()
            .unwrap();
        // Installs R before its comp: invalid.
        let bad = ParallelStrategy {
            stages: vec![
                vec![UpdateExpr::inst(w.view_id("R").unwrap())],
                vec![UpdateExpr::comp1(
                    w.view_id("V").unwrap(),
                    w.view_id("R").unwrap(),
                )],
                vec![UpdateExpr::inst(w.view_id("V").unwrap())],
            ],
        };
        assert!(w.execute_parallel_threaded(&bad).is_err());
    }

    #[test]
    fn threaded_execution_rejects_same_stage_races() {
        use uww_relational::{tup, Schema, Table, ValueType};
        // R -> P -> W chain: Comp(P) and Comp(W, {P}) in ONE stage is a race
        // the linearized dynamic check cannot see (its linearization is
        // C8-legal), but the threaded executor would compute W against the
        // frozen stage-entry ΔP = ∅ and silently drop the update.
        let mut r = Table::new("R", Schema::of(&[("k", ValueType::Int)]));
        r.insert(tup![Value::Int(1)]).unwrap();
        let p_def = ViewDef {
            name: "P".into(),
            sources: vec![ViewSource::named("R")],
            joins: vec![],
            filters: vec![],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "R.k")]),
        };
        let w_def = ViewDef {
            name: "W".into(),
            sources: vec![ViewSource::named("P")],
            joins: vec![],
            filters: vec![],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "P.k")]),
        };
        let mut w = Warehouse::builder()
            .base_table(r)
            .view(p_def)
            .view(w_def)
            .build()
            .unwrap();
        let rid = w.view_id("R").unwrap();
        let pid = w.view_id("P").unwrap();
        let wid = w.view_id("W").unwrap();
        let racy = ParallelStrategy {
            stages: vec![
                vec![UpdateExpr::comp1(pid, rid), UpdateExpr::comp1(wid, pid)],
                vec![
                    UpdateExpr::inst(rid),
                    UpdateExpr::inst(pid),
                    UpdateExpr::inst(wid),
                ],
            ],
        };
        // The linearization alone is fine — that is exactly the hole.
        check_vdag_strategy(w.vdag(), &racy.linearize()).unwrap();
        match w.execute_parallel_threaded(&racy).unwrap_err() {
            CoreError::Analysis(report) => {
                assert!(report.diagnostics.iter().any(|d| d.rule.id() == "UWW001"));
            }
            other => panic!("expected a stage-race rejection, got {other:?}"),
        }
        // De-racing the schedule (one comp per stage) executes fine.
        let ok = ParallelStrategy {
            stages: vec![
                vec![UpdateExpr::comp1(pid, rid)],
                vec![UpdateExpr::comp1(wid, pid)],
                vec![
                    UpdateExpr::inst(rid),
                    UpdateExpr::inst(pid),
                    UpdateExpr::inst(wid),
                ],
            ],
        };
        w.execute_parallel_threaded(&ok).unwrap();
    }

    #[test]
    fn flatten_projection_chain() {
        // P = Π(R where rv > 1), W = Π(P ⋈ S). Flattened W runs on R, S.
        let p = ViewDef {
            name: "P".into(),
            sources: vec![ViewSource::named("R")],
            joins: vec![],
            filters: vec![Predicate::col_gt("R.rv", Value::Int(1))],
            output: ViewOutput::Project(vec![
                OutputColumn::col("k", "R.rk"),
                OutputColumn::new("v2", ScalarExpr::col("R.rv").add(ScalarExpr::col("R.rv"))),
            ]),
        };
        let w = ViewDef {
            name: "W".into(),
            sources: vec![ViewSource::named("P"), ViewSource::named("S")],
            joins: vec![uww_relational::EquiJoin::new("P.k", "S.sk")],
            filters: vec![Predicate::col_eq("S.tag", Value::str("x"))],
            output: ViewOutput::Project(vec![
                OutputColumn::col("out", "P.v2"),
                OutputColumn::col("tag", "S.tag"),
            ]),
        };
        let flat = flatten_def(&w, &p).unwrap();
        assert_eq!(flat.source_views(), vec!["S", "R"]);
        // P.k -> R.rk stays a simple equi-join.
        assert!(flat
            .joins
            .iter()
            .any(|j| (j.left == "R.rk" && j.right == "S.sk")
                || (j.left == "S.sk" && j.right == "R.rk")));
        // P's filter inlined.
        assert!(flat
            .filters
            .contains(&Predicate::col_gt("R.rv", Value::Int(1))));
        // Output substituted: P.v2 -> R.rv + R.rv.
        match &flat.output {
            ViewOutput::Project(outs) => {
                assert_eq!(
                    outs[0].expr,
                    ScalarExpr::col("R.rv").add(ScalarExpr::col("R.rv"))
                );
            }
            _ => panic!("project expected"),
        }
    }

    #[test]
    fn flatten_through_aggregate_rejected() {
        let inner = ViewDef {
            name: "A".into(),
            sources: vec![ViewSource::named("R")],
            joins: vec![],
            filters: vec![],
            output: ViewOutput::Aggregate {
                group_by: vec![OutputColumn::col("k", "R.rk")],
                aggregates: vec![],
            },
        };
        let outer = ViewDef {
            name: "W".into(),
            sources: vec![ViewSource::named("A")],
            joins: vec![],
            filters: vec![],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "A.k")]),
        };
        assert!(flatten_def(&outer, &inner).is_err());
    }

    #[test]
    fn flatten_detects_source_collision() {
        let inner = ViewDef {
            name: "P".into(),
            sources: vec![ViewSource::named("R")],
            joins: vec![],
            filters: vec![],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "R.rk")]),
        };
        let outer = ViewDef {
            name: "W".into(),
            sources: vec![ViewSource::named("P"), ViewSource::named("R")],
            joins: vec![uww_relational::EquiJoin::new("P.k", "R.rk")],
            filters: vec![],
            output: ViewOutput::Project(vec![OutputColumn::col("k", "P.k")]),
        };
        assert!(flatten_def(&outer, &inner).is_err());
    }
}
