//! The paper's planning algorithms: MinWorkSingle (Section 4), MinWork
//! (Section 5), and Prune (Section 6).

use crate::cost::CostModel;
use crate::error::{CoreError, CoreResult};
use crate::sizes::SizeCatalog;
use uww_vdag::{
    construct_eg, construct_seg, modify_ordering, permutations, Strategy, UpdateExpr, Vdag, ViewId,
    ViewOrdering,
};

/// Debug-build gate: every strategy a planner emits must lint clean under
/// the static analyzer. A diagnostic here is a planner bug, not user error,
/// so it is a `debug_assert!` (free in release builds) rather than a result.
#[inline]
fn debug_lint(g: &Vdag, s: &Strategy) {
    #[cfg(debug_assertions)]
    {
        let report = uww_analysis::analyze(g, s);
        debug_assert!(
            !report.has_errors(),
            "planner emitted a strategy the analyzer rejects:\n{}",
            report.render_text()
        );
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (g, s);
    }
}

/// Debug-build gate for single-view planners ([`min_work_single`]).
#[inline]
fn debug_lint_view(g: &Vdag, view: ViewId, s: &Strategy) {
    #[cfg(debug_assertions)]
    {
        let report = uww_analysis::analyze_view(g, view, s);
        debug_assert!(
            !report.has_errors(),
            "planner emitted a view strategy the analyzer rejects:\n{}",
            report.render_text()
        );
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (g, view, s);
    }
}

/// **MinWorkSingle** (Algorithm 4.1): the optimal view strategy for a single
/// view under the linear work metric.
///
/// Orders the views the target is defined over by increasing `|V'| − |V|`
/// (Theorem 4.2), and emits the 1-way strategy consistent with that ordering
/// (optimal over *all* view strategies by Theorem 4.1). `O(n log n)`.
pub fn min_work_single(g: &Vdag, view: ViewId, sizes: &SizeCatalog) -> Strategy {
    let mut sources: Vec<ViewId> = g.sources(view).to_vec();
    sources.sort_by(|a, b| {
        sizes
            .info(*a)
            .growth()
            .partial_cmp(&sizes.info(*b).growth())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    let mut s = Strategy::new();
    for v in &sources {
        s.push(UpdateExpr::comp1(view, *v));
        s.push(UpdateExpr::inst(*v));
    }
    s.push(UpdateExpr::inst(view));
    debug_lint_view(g, view, &s);
    s
}

/// The result of [`min_work`].
#[derive(Clone, Debug)]
pub struct MinWorkPlan {
    /// The produced 1-way VDAG strategy.
    pub strategy: Strategy,
    /// The desired view ordering (increasing `|V'| − |V|`).
    pub desired_ordering: ViewOrdering,
    /// The ordering actually used (level-major modification when the desired
    /// ordering's expression graph was cyclic).
    pub ordering: ViewOrdering,
    /// True when `ModifyOrdering` had to be applied — the plan is then
    /// near-optimal rather than guaranteed-optimal.
    pub used_modified_ordering: bool,
}

/// **MinWork** (Algorithm 5.1): a 1-way VDAG strategy consistent with the
/// desired view ordering when its expression graph is acyclic — optimal
/// under the linear metric (Theorem 5.3), and always so for tree and uniform
/// VDAGs (Theorem 5.4). Falls back to `ModifyOrdering` otherwise
/// (Theorem 5.5 guarantees success). `O(n³)`.
pub fn min_work(g: &Vdag, sizes: &SizeCatalog) -> CoreResult<MinWorkPlan> {
    let desired = sizes.desired_ordering(g);
    let eg = construct_eg(g, &desired);
    if eg.is_acyclic() {
        let strategy = eg.topological_strategy(&desired)?;
        debug_lint(g, &strategy);
        return Ok(MinWorkPlan {
            strategy,
            ordering: desired.clone(),
            desired_ordering: desired,
            used_modified_ordering: false,
        });
    }
    let modified = modify_ordering(g, &desired);
    let eg = construct_eg(g, &modified);
    let strategy = eg
        .topological_strategy(&modified)
        .map_err(|_| CoreError::Planner("ModifyOrdering produced a cyclic EG".to_string()))?;
    debug_lint(g, &strategy);
    Ok(MinWorkPlan {
        strategy,
        ordering: modified,
        desired_ordering: desired,
        used_modified_ordering: true,
    })
}

/// Builds the 1-way VDAG strategy consistent with an arbitrary ordering
/// (used for baselines like the paper's RNSCOL). Falls back to
/// `ModifyOrdering` when needed, like MinWork.
pub fn one_way_for_ordering(g: &Vdag, ord: &ViewOrdering) -> CoreResult<Strategy> {
    let eg = construct_eg(g, ord);
    let strategy = if eg.is_acyclic() {
        eg.topological_strategy(ord)?
    } else {
        let modified = modify_ordering(g, ord);
        construct_eg(g, &modified).topological_strategy(&modified)?
    };
    debug_lint(g, &strategy);
    Ok(strategy)
}

/// The result of [`prune`].
#[derive(Clone, Debug)]
pub struct PruneOutcome {
    /// The cheapest 1-way VDAG strategy found.
    pub strategy: Strategy,
    /// Its predicted work.
    pub cost: f64,
    /// The view ordering it is strongly consistent with.
    pub ordering: ViewOrdering,
    /// Orderings enumerated.
    pub orderings_examined: usize,
    /// Orderings admitting a strongly consistent strategy (acyclic SEGs).
    pub orderings_feasible: usize,
}

/// Maximum number of views-with-consumers Prune will enumerate (`m! ≤ 9!`).
pub const PRUNE_MAX_VIEWS: usize = 9;

/// **Prune** (Algorithm 6.1, with the Section 6 optimization): finds the
/// best 1-way VDAG strategy for *any* VDAG by enumerating view orderings,
/// keeping one strongly-consistent representative per ordering (Lemma 6.1
/// and Theorem 6.1 justify the partitioning), and costing it under the
/// model.
///
/// Only views some other view is defined over are permuted (`m!` orderings
/// instead of `n!`): a view nobody consumes can be installed at any point
/// after its changes are computed without affecting any `Comp`'s state.
pub fn prune(g: &Vdag, model: &CostModel<'_>) -> CoreResult<PruneOutcome> {
    prune_over(g, model, g.views_with_consumers())
}

/// Prune over the *full* `n!` ordering space (no optimization). Exists to
/// validate that the optimization never changes the answer.
pub fn prune_full(g: &Vdag, model: &CostModel<'_>) -> CoreResult<PruneOutcome> {
    prune_over(g, model, g.view_ids().collect())
}

fn prune_over(g: &Vdag, model: &CostModel<'_>, relevant: Vec<ViewId>) -> CoreResult<PruneOutcome> {
    if relevant.len() > PRUNE_MAX_VIEWS {
        return Err(CoreError::Planner(format!(
            "Prune would enumerate {}! orderings; use MinWork for VDAGs with more than {PRUNE_MAX_VIEWS} consumed views",
            relevant.len()
        )));
    }
    let mut best: Option<PruneOutcome> = None;
    let mut examined = 0usize;
    let mut feasible = 0usize;
    for perm in permutations(&relevant) {
        examined += 1;
        let ord = ViewOrdering::new(perm, g.len());
        let seg = construct_seg(g, &ord);
        if !seg.is_acyclic() {
            continue;
        }
        feasible += 1;
        let strategy = seg.topological_strategy(&ord)?;
        debug_lint(g, &strategy);
        let cost = model.strategy_work(&strategy);
        let better = match &best {
            None => true,
            Some(b) => cost < b.cost,
        };
        if better {
            best = Some(PruneOutcome {
                strategy,
                cost,
                ordering: ord,
                orderings_examined: 0,
                orderings_feasible: 0,
            });
        }
    }
    let mut out = best.ok_or_else(|| {
        CoreError::Planner("no ordering admits a strongly consistent 1-way strategy".to_string())
    })?;
    out.orderings_examined = examined;
    out.orderings_feasible = feasible;
    Ok(out)
}

/// The result of [`min_work_shared`]: the winner under the sharing-aware
/// objective alongside the plain-linear winner over the *same* candidate
/// set, so callers can tell when cross-expression sharing changed the
/// ranking.
#[derive(Clone, Debug)]
pub struct SharedPlanOutcome {
    /// The strategy minimizing `linear work − cross-share saving`.
    pub strategy: Strategy,
    /// The winner's shared-objective cost.
    pub cost: f64,
    /// The winner's plain linear work.
    pub linear_cost: f64,
    /// The winner's priced cross-expression saving
    /// ([`CostModel::cross_share_saving`] of its consumed-key rows).
    pub cross_saving: f64,
    /// The plain-objective winner over the same candidates (what
    /// [`min_work`]/[`prune`] would pick).
    pub baseline: Strategy,
    /// The baseline's linear work.
    pub baseline_cost: f64,
    /// True when the shared objective picked a different strategy than the
    /// plain linear one.
    pub differs: bool,
    /// Candidate strategies replayed and costed under the shared objective.
    pub candidates: usize,
}

/// Feasible orderings [`min_work_shared`] will replay the sharing plan for
/// before the adaptive extension kicks in. Ranking a candidate's cross-share
/// saving requires a scratch replay of the whole strategy (operand sizes
/// depend on run state), so unlike [`prune`]'s closed-form costing the
/// candidate set must stay small; the cheapest-by-linear-work candidates are
/// kept, since a saving can never exceed the operand rows the linear cost
/// already counts. When an observed saving exceeds the linear spread of the
/// capped set, the search continues past the cap — a cheaper shared cost may
/// hide behind a worse linear rank — until a candidate's linear handicap
/// over the baseline exceeds the largest saving seen.
pub const SHARED_REPLAY_CAP: usize = 24;

/// **MinWorkShared**: the sharing-aware planner objective. Scores each
/// candidate 1-way strategy by `strategy_work − cross_share_saving`, where
/// the saving prices the hash builds the strategy-scope operand cache
/// avoids across expression boundaries ([`plan_strategy_sharing`]'s exact
/// consumed-key rows). Candidates are every [`prune`]-feasible ordering's
/// strongly consistent representative (when the VDAG has at most
/// [`PRUNE_MAX_VIEWS`] consumed views) plus the [`min_work`] strategy —
/// capped at the [`SHARED_REPLAY_CAP`] linear-cheapest, which always
/// include the plain winner, so `differs` is meaningful.
///
/// Because sharing only subtracts, a strategy can win here that plain
/// MinWork ranks strictly worse — the cache turns rescans of a large shared
/// operand into probes, repricing orderings that keep it live across
/// consecutive `Comp`s.
pub fn min_work_shared(
    w: &crate::engine::Warehouse,
    model: &CostModel<'_>,
) -> CoreResult<SharedPlanOutcome> {
    min_work_shared_capped(w, model, SHARED_REPLAY_CAP)
}

/// [`min_work_shared`] with an explicit replay cap (the public entry uses
/// [`SHARED_REPLAY_CAP`]). The cap is adaptive, not hard: after replaying
/// the `cap` linear-cheapest candidates, the search keeps going whenever the
/// largest cross-share saving seen so far exceeds the linear spread of the
/// capped set — evidence that a candidate ranked past the cap by linear work
/// alone could still win under the shared objective — and stops once a
/// candidate's linear handicap over the baseline exceeds that saving (the
/// list is sorted, so nothing later can repay it either).
pub fn min_work_shared_capped(
    w: &crate::engine::Warehouse,
    model: &CostModel<'_>,
    cap: usize,
) -> CoreResult<SharedPlanOutcome> {
    use crate::engine::{plan_strategy_sharing, SharingScope};
    let g = w.vdag();
    let mut candidates: Vec<Strategy> = vec![min_work(g, model.sizes())?.strategy];
    let relevant = g.views_with_consumers();
    if relevant.len() <= PRUNE_MAX_VIEWS {
        for perm in permutations(&relevant) {
            let ord = ViewOrdering::new(perm, g.len());
            let seg = construct_seg(g, &ord);
            if !seg.is_acyclic() {
                continue;
            }
            let s = seg.topological_strategy(&ord)?;
            if !candidates.contains(&s) {
                candidates.push(s);
            }
        }
    }
    let mut scored: Vec<(f64, Strategy)> = candidates
        .into_iter()
        .map(|s| (model.strategy_work(&s), s))
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let cap = cap.max(1);
    let capped_spread = scored[scored.len().min(cap) - 1].0 - scored[0].0;
    let (baseline_cost, baseline) = scored[0].clone();
    let mut best: Option<SharedPlanOutcome> = None;
    let mut max_saving = 0.0f64;
    let mut replayed = 0usize;
    for (i, (linear, s)) in scored.into_iter().enumerate() {
        if i >= cap {
            // Adaptive extension past the cap: only while an observed saving
            // exceeds the capped set's linear spread (so the capped ranking
            // may be wrong) and this candidate's linear handicap could still
            // be repaid by a saving of the size already witnessed.
            if max_saving <= capped_spread || linear - baseline_cost > max_saving {
                break;
            }
        }
        replayed += 1;
        debug_lint(g, &s);
        let saving = model.cross_share_saving(
            plan_strategy_sharing(w, &s, SharingScope::Strategy)?.cross_saved_rows(),
        );
        max_saving = max_saving.max(saving);
        let cost = linear - saving;
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(SharedPlanOutcome {
                strategy: s,
                cost,
                linear_cost: linear,
                cross_saving: saving,
                baseline: baseline.clone(),
                baseline_cost,
                differs: false,
                candidates: 0,
            });
        }
    }
    let mut out = best.expect("candidate set is never empty");
    out.candidates = replayed;
    out.differs = out.strategy != out.baseline;
    Ok(out)
}

/// Runs the static sharing predictor over a strategy and lints the result:
/// the planner-facing surface of the sharing-opportunity graph.
///
/// [`predict_strategy_sharing`](crate::engine::predict_strategy_sharing)
/// replays the strategy against a scratch copy of `w`, computing for each
/// `Comp` the exact hash-table builds/reuses the shared executor will
/// perform; each opportunity is priced by `model` ([`CostModel::share_saving`])
/// and the whole profile is handed to the `UWW011`–`UWW013` rules. Returns
/// the profile (for conformance checking against a traced run) alongside
/// the advisory report.
pub fn sharing_report(
    w: &crate::engine::Warehouse,
    strategy: &Strategy,
    model: &CostModel<'_>,
) -> CoreResult<(uww_analysis::SharingProfile, uww_analysis::Report)> {
    sharing_report_scoped(w, strategy, model, crate::engine::SharingScope::Comp)
}

/// [`sharing_report`] with an explicit cache scope: `SharingScope::Strategy`
/// additionally predicts the cross-expression hash-table reuses and cached
/// raw reads the strategy-scope cache will record, so conformance checking
/// works against a `--strategy-sharing` trace.
pub fn sharing_report_scoped(
    w: &crate::engine::Warehouse,
    strategy: &Strategy,
    model: &CostModel<'_>,
    scope: crate::engine::SharingScope,
) -> CoreResult<(uww_analysis::SharingProfile, uww_analysis::Report)> {
    let predictions = crate::engine::plan_strategy_sharing(w, strategy, scope)?.exprs;
    let profile = uww_analysis::SharingProfile {
        exprs: predictions
            .into_iter()
            .map(|p| uww_analysis::ExprSharingProfile {
                view: p.view,
                kind: p.kind.to_string(),
                terms: p.plan.terms,
                predicted_builds: p.plan.predicted_builds,
                predicted_reuses: p.plan.predicted_reuses,
                predicted_cross_reuses: p.plan.cross_reuses,
                predicted_cached_reads: p.plan.cached_reads,
                operands: p
                    .plan
                    .operands
                    .into_iter()
                    .map(|o| uww_analysis::OperandProfile {
                        saved_rows: model.share_saving(o.rows, o.occurrences).round() as u64,
                        source: o.source,
                        alias: o.alias,
                        source_idx: o.source_idx,
                        as_delta: o.as_delta,
                        key_cols: o.key_cols,
                        filters: o.filters,
                        rows: o.rows,
                        occurrences: o.occurrences,
                    })
                    .collect(),
            })
            .collect(),
    };
    let report = uww_analysis::analyze_sharing(w.vdag(), strategy, &profile);
    Ok((profile, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::SizeInfo;
    use uww_vdag::{
        check_vdag_strategy, check_view_strategy, figure10_vdag, figure3_vdag,
        one_way_view_strategies, strongly_consistent, vdag_strategy_consistent, view_strategies,
    };

    fn shrinking_sizes(g: &Vdag, shrink: &[(&str, f64, f64)]) -> SizeCatalog {
        let mut cat = SizeCatalog::default();
        for (name, pre, frac) in shrink {
            let v = g.id_of(name).unwrap();
            let delta = pre * frac;
            cat.set(
                v,
                SizeInfo {
                    pre: *pre,
                    post: pre - delta,
                    delta,
                },
            );
        }
        cat
    }

    #[test]
    fn min_work_single_orders_by_growth() {
        let g = figure3_vdag();
        let v4 = g.id_of("V4").unwrap();
        // V3 shrinks by 50, V2 by 5: propagate V3 first.
        let sizes = shrinking_sizes(
            &g,
            &[("V1", 100.0, 0.0), ("V2", 50.0, 0.1), ("V3", 500.0, 0.1)],
        );
        let s = min_work_single(&g, v4, &sizes);
        check_view_strategy(&g, v4, &s).unwrap();
        assert_eq!(s.exprs[0], UpdateExpr::comp1(v4, g.id_of("V3").unwrap()));
        assert!(s.is_one_way());
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn min_work_single_is_optimal_over_all_enumerated_strategies() {
        // Theorem 4.1 + 4.2, validated by brute force over all 13/75
        // strategies of views over 3 and 4 bases, across several size
        // scenarios (shrinking, growing, mixed).
        for scenario in 0..4 {
            let mut g = Vdag::new();
            let n = if scenario % 2 == 0 { 3 } else { 4 };
            let bases: Vec<ViewId> = (0..n)
                .map(|i| g.add_base(format!("B{i}")).unwrap())
                .collect();
            let view = g.add_derived("V", &bases).unwrap();
            let mut sizes = SizeCatalog::default();
            for (i, b) in bases.iter().enumerate() {
                // Mix of shrinking and growing views.
                let pre = 100.0 * (i + 1) as f64;
                let growth = match (scenario + i) % 3 {
                    0 => -0.2 * pre,
                    1 => 0.1 * pre,
                    _ => -0.05 * pre,
                };
                sizes.set(
                    *b,
                    SizeInfo {
                        pre,
                        post: pre + growth,
                        delta: growth.abs().max(1.0),
                    },
                );
            }
            sizes.set(
                view,
                SizeInfo {
                    pre: 40.0,
                    post: 40.0,
                    delta: 4.0,
                },
            );
            let model = CostModel::new(&g, &sizes);
            let planned = min_work_single(&g, view, &sizes);
            let planned_cost = model.strategy_work(&planned);
            for s in view_strategies(&g, view) {
                let c = model.strategy_work(&s);
                assert!(
                    planned_cost <= c + 1e-9,
                    "scenario {scenario}: MinWorkSingle {planned_cost} beaten by {c}"
                );
            }
        }
    }

    #[test]
    fn best_one_way_equals_best_overall() {
        // Theorem 4.1: the best 1-way strategy is optimal over the whole
        // space.
        let mut g = Vdag::new();
        let bases: Vec<ViewId> = (0..4)
            .map(|i| g.add_base(format!("B{i}")).unwrap())
            .collect();
        let view = g.add_derived("V", &bases).unwrap();
        let mut sizes = SizeCatalog::default();
        for (i, b) in bases.iter().enumerate() {
            let pre = 50.0 + 60.0 * i as f64;
            sizes.set(
                *b,
                SizeInfo {
                    pre,
                    post: pre * 0.9,
                    delta: pre * 0.1,
                },
            );
        }
        let model = CostModel::new(&g, &sizes);
        let best_any = view_strategies(&g, view)
            .into_iter()
            .map(|s| model.strategy_work(&s))
            .fold(f64::INFINITY, f64::min);
        let best_1way = one_way_view_strategies(&g, view)
            .into_iter()
            .map(|s| model.strategy_work(&s))
            .fold(f64::INFINITY, f64::min);
        assert!((best_any - best_1way).abs() < 1e-9);
    }

    #[test]
    fn min_work_on_tree_vdag_is_optimal_vs_prune() {
        let g = figure3_vdag();
        let sizes = shrinking_sizes(
            &g,
            &[
                ("V1", 100.0, 0.05),
                ("V2", 300.0, 0.1),
                ("V3", 200.0, 0.1),
                ("V4", 150.0, 0.08),
                ("V5", 80.0, 0.05),
            ],
        );
        let model = CostModel::new(&g, &sizes);
        let plan = min_work(&g, &sizes).unwrap();
        assert!(!plan.used_modified_ordering);
        check_vdag_strategy(&g, &plan.strategy).unwrap();
        assert!(vdag_strategy_consistent(&plan.strategy, &g, &plan.ordering));

        let pruned = prune(&g, &model).unwrap();
        check_vdag_strategy(&g, &pruned.strategy).unwrap();
        let mw = model.strategy_work(&plan.strategy);
        assert!(
            mw <= pruned.cost + 1e-9,
            "MinWork {mw} worse than Prune {}",
            pruned.cost
        );
    }

    #[test]
    fn prune_optimization_matches_full_enumeration() {
        let g = figure10_vdag();
        let sizes = shrinking_sizes(
            &g,
            &[
                ("V1", 120.0, 0.1),
                ("V2", 300.0, 0.02),
                ("V3", 200.0, 0.15),
                ("V4", 150.0, 0.08),
                ("V5", 80.0, 0.05),
            ],
        );
        let model = CostModel::new(&g, &sizes);
        let fast = prune(&g, &model).unwrap();
        let full = prune_full(&g, &model).unwrap();
        assert!((fast.cost - full.cost).abs() < 1e-9);
        assert!(fast.orderings_examined < full.orderings_examined);
        assert!(strongly_consistent(&fast.strategy, &fast.ordering));
    }

    #[test]
    fn min_work_falls_back_on_cyclic_eg() {
        // Force a desired ordering that ranks V4 first on the Figure 10
        // VDAG: its EG is cyclic, so MinWork must fall back.
        // Sizes chosen so the desired ordering is ⟨V4, V2, V1, V3, V5⟩ —
        // the ordering shown cyclic for this VDAG in the paper's Appendix A
        // (Figure 16).
        let g = figure10_vdag();
        let mut sizes = shrinking_sizes(
            &g,
            &[
                ("V2", 300.0, 0.1667), // growth ≈ -50
                ("V1", 120.0, 0.1),    // growth = -12
                ("V3", 200.0, 0.03),   // growth = -6
                ("V5", 80.0, 0.05),    // growth = -4
            ],
        );
        // V4 shrinks enormously: desired ordering starts with V4.
        sizes.set(
            g.id_of("V4").unwrap(),
            SizeInfo {
                pre: 1000.0,
                post: 100.0,
                delta: 900.0,
            },
        );
        let plan = min_work(&g, &sizes).unwrap();
        assert!(plan.used_modified_ordering);
        check_vdag_strategy(&g, &plan.strategy).unwrap();
        // MinWork is near-optimal here; Prune may beat it but not the other
        // way round.
        let model = CostModel::new(&g, &sizes);
        let pruned = prune(&g, &model).unwrap();
        assert!(pruned.cost <= model.strategy_work(&plan.strategy) + 1e-9);
    }

    #[test]
    fn prune_rejects_oversized_vdags() {
        let mut g = Vdag::new();
        let bases: Vec<ViewId> = (0..10)
            .map(|i| g.add_base(format!("B{i}")).unwrap())
            .collect();
        g.add_derived("V", &bases).unwrap();
        let sizes = SizeCatalog::default();
        let model = CostModel::new(&g, &sizes);
        assert!(matches!(prune(&g, &model), Err(CoreError::Planner(_))));
    }

    #[test]
    fn one_way_for_ordering_produces_rnscol_style_baselines() {
        let g = figure3_vdag();
        let sizes = shrinking_sizes(
            &g,
            &[
                ("V1", 100.0, 0.05),
                ("V2", 300.0, 0.1),
                ("V3", 200.0, 0.1),
                ("V4", 150.0, 0.08),
                ("V5", 80.0, 0.05),
            ],
        );
        let reversed = sizes.desired_ordering(&g).reversed();
        let s = one_way_for_ordering(&g, &reversed).unwrap();
        check_vdag_strategy(&g, &s).unwrap();
        // Must not be cheaper than MinWork.
        let model = CostModel::new(&g, &sizes);
        let plan = min_work(&g, &sizes).unwrap();
        assert!(model.strategy_work(&plan.strategy) <= model.strategy_work(&s) + 1e-9);
    }
}
