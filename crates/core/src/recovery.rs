//! Crash recovery: resume a journaled strategy from its install WAL.
//!
//! Recovery follows the redo-log model of [`crate::wal`]:
//!
//! 1. **Restore** — the warehouse state is replaced by `state.snap` (the
//!    pre-run image) and the base-change batch reloads from `changes.snap`;
//!    both are digest-verified against the manifest.
//! 2. **Replay** — completed expressions (those with a durable `CD`/`ID`
//!    record, which must form a strict prefix of the manifest's canonical
//!    order) are redone: a `Comp` merges its journaled ΔV fragment with
//!    zero scan work, an `Inst` re-executes against the restored state and
//!    is verified against the record's row count and post-install digest.
//! 3. **Gate** — before any fresh work runs, the *suffix* strategy (the
//!    remaining manifest expressions, or an explicit override) is
//!    re-verified against the partially-installed state: the concatenation
//!    of executed prefix and suffix must satisfy C1–C8
//!    ([`uww_vdag::check_vdag_strategy`]) and lint clean under the static
//!    analyzer ([`uww_analysis::analyze_resume`]). A suffix invalidated by
//!    the partial install — say, one that re-propagates a view the prefix
//!    already installed — is refused with the C-rule or `UWW###`
//!    diagnostic.
//! 4. **Resume** — the suffix executes fresh, journaling onto the same log
//!    (torn tail truncated first), and the run commits.
//!
//! Replayed expressions appear in the returned
//! [`ExecutionReport`](crate::ExecutionReport) with
//! [`ExprReport::replayed`](crate::ExprReport) set, so the report's
//! `wall()` — the measured update window — includes recovery replay time.

use std::path::Path;

use uww_obs as obs;
use uww_relational::{catalog_from_str, deltas_from_str, table_digest};
use uww_vdag::{check_vdag_strategy, Strategy, UpdateExpr};

use crate::engine::{ExecutionReport, ExprReport, Warehouse};
use crate::error::{CoreError, CoreResult};
use crate::wal::{decode_pending, RecordBody, WalConfig, WalLog, WalWriter, MANIFEST_FILE};

/// What [`recover`] did.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// Per-expression report over the whole strategy: replayed prefix
    /// (marked [`ExprReport::replayed`]) followed by the freshly executed
    /// suffix. Its `wall()` includes replay time.
    pub report: ExecutionReport,
    /// Number of `Comp` expressions replayed from journaled fragments.
    pub replayed_comps: usize,
    /// Number of `Inst` expressions redone from the log.
    pub replayed_insts: usize,
    /// Number of suffix expressions executed fresh.
    pub resumed: usize,
    /// True when the log was already committed: the whole run replays and
    /// nothing is appended (recovery is idempotent).
    pub already_committed: bool,
}

/// One completed (Done-record) expression, in manifest order.
struct DoneRec {
    seq: u64,
    body: RecordBody,
}

/// Recovers a crashed (or committed) run from the WAL directory `dir`,
/// resuming with the remaining manifest expressions. The warehouse must be
/// built over the same VDAG the run was journaled against (fingerprint
/// checked); its current state is discarded in favor of the snapshot.
pub fn recover(w: &mut Warehouse, dir: &Path) -> CoreResult<RecoveryOutcome> {
    recover_with(w, dir, None)
}

/// [`recover`] with an explicit suffix-strategy override: instead of the
/// remaining manifest expressions, resume with `suffix` (which must pass
/// the recovery gate against the already-executed prefix). The manifest is
/// rewritten to the new plan so a crash *during* recovery stays resumable.
pub fn recover_with(
    w: &mut Warehouse,
    dir: &Path,
    suffix: Option<&[UpdateExpr]>,
) -> CoreResult<RecoveryOutcome> {
    let log = WalLog::open(dir)?;
    if log.manifest.vdag_fingerprint != w.vdag().fingerprint() {
        return Err(CoreError::Wal(format!(
            "VDAG fingerprint mismatch: log {:016x}, warehouse {:016x}",
            log.manifest.vdag_fingerprint,
            w.vdag().fingerprint()
        )));
    }
    let manifest_exprs: Vec<(usize, UpdateExpr)> = log
        .manifest
        .exprs
        .iter()
        .map(|me| Ok((me.stage, me.to_expr(w.vdag())?)))
        .collect::<CoreResult<_>>()?;

    // Collect the completed prefix: Done records must land in strict
    // manifest order (the executors journal them that way; anything else is
    // damage or tampering).
    let mut done: Vec<DoneRec> = Vec::new();
    for r in &log.records {
        let idx = match &r.body {
            RecordBody::CompDone { idx, .. } | RecordBody::InstDone { idx, .. } => *idx,
            _ => continue,
        };
        if idx != done.len() {
            return Err(CoreError::WalCorrupt {
                record: r.seq,
                detail: format!(
                    "completion of expr {idx} out of order (expected {})",
                    done.len()
                ),
            });
        }
        let Some((_, expr)) = manifest_exprs.get(idx) else {
            return Err(CoreError::WalCorrupt {
                record: r.seq,
                detail: format!("completion of expr {idx} beyond the manifest"),
            });
        };
        let kind_matches = matches!(
            (&r.body, expr),
            (RecordBody::CompDone { .. }, UpdateExpr::Comp { .. })
                | (RecordBody::InstDone { .. }, UpdateExpr::Inst(_))
        );
        if !kind_matches {
            return Err(CoreError::WalCorrupt {
                record: r.seq,
                detail: format!("record kind does not match manifest expr {idx}"),
            });
        }
        done.push(DoneRec {
            seq: r.seq,
            body: r.body.clone(),
        });
    }
    if log.committed && done.len() != manifest_exprs.len() {
        return Err(CoreError::WalCorrupt {
            record: log.next_seq.saturating_sub(1),
            detail: format!(
                "log committed with only {}/{} expressions complete",
                done.len(),
                manifest_exprs.len()
            ),
        });
    }

    // Restore the durable image and the change batch.
    w.restore_state(catalog_from_str(&log.state_text)?)?;
    w.load_changes(deltas_from_str(&log.changes_text)?)?;

    // Gate the suffix before touching anything else: the concatenation of
    // the executed prefix and the planned suffix must be a correct strategy
    // for the (about to be) partially-installed state.
    let prefix: Vec<UpdateExpr> = manifest_exprs[..done.len()]
        .iter()
        .map(|(_, e)| e.clone())
        .collect();
    let default_suffix: Vec<UpdateExpr> = manifest_exprs[done.len()..]
        .iter()
        .map(|(_, e)| e.clone())
        .collect();
    let suffix: Vec<UpdateExpr> = match suffix {
        Some(s) => s.to_vec(),
        None => default_suffix.clone(),
    };
    let mut full = prefix.clone();
    full.extend(suffix.iter().cloned());
    check_vdag_strategy(w.vdag(), &Strategy::from_exprs(full))?;
    let gate = uww_analysis::analyze_resume(w.vdag(), &prefix, &suffix);
    if gate.has_errors() {
        return Err(CoreError::Analysis(Box::new(gate)));
    }

    // Replay the completed prefix.
    let mut run_span = obs::span(obs::SpanKind::Run, "recover");
    run_span.attr_u64("replayed", done.len() as u64);
    let mut report = ExecutionReport::default();
    let mut replayed_comps = 0usize;
    let mut replayed_insts = 0usize;
    for (i, d) in done.iter().enumerate() {
        let (_, expr) = &manifest_exprs[i];
        let mut span = {
            let g = w.vdag();
            obs::span_dyn(obs::SpanKind::Replay, || expr.display(g).to_string())
        };
        if span.is_recording() {
            crate::engine::exec::expr_attrs(&mut span, w.vdag(), expr);
            span.attr_u64(obs::keys::REPLAYED, 1);
        }
        let t0 = std::time::Instant::now();
        let start_meter = *w.meter();
        match &d.body {
            RecordBody::CompDone {
                digest, payload, ..
            } => {
                if uww_relational::digest64(payload) != *digest {
                    return Err(CoreError::WalCorrupt {
                        record: d.seq,
                        detail: "fragment payload digest mismatch".to_string(),
                    });
                }
                let fragment = decode_pending(payload)?;
                let name = w.vdag().name(expr.subject()).to_string();
                w.merge_fragment(&name, fragment)?;
                w.meter_mut().comp_expressions += 1;
                replayed_comps += 1;
            }
            RecordBody::InstDone {
                delta_len,
                post_digest,
                ..
            } => {
                let installed = w.exec_inst(expr.subject())?;
                let name = w.vdag().name(expr.subject()).to_string();
                let actual = table_digest(w.table(&name)?);
                if installed != *delta_len || actual != *post_digest {
                    return Err(CoreError::WalCorrupt {
                        record: d.seq,
                        detail: format!(
                            "replay of Inst({name}) diverged: {installed} rows \
                             (logged {delta_len}), extent digest {actual:016x} \
                             (logged {post_digest:016x})"
                        ),
                    });
                }
                replayed_insts += 1;
            }
            _ => unreachable!("done list only holds Done records"),
        }
        let work = w.meter().since(&start_meter);
        crate::engine::exec::meter_attrs(&mut span, &work);
        drop(span);
        report.per_expr.push(ExprReport {
            expr: expr.clone(),
            work,
            wall: t0.elapsed(),
            replayed: true,
        });
    }

    if log.committed {
        return Ok(RecoveryOutcome {
            report,
            replayed_comps,
            replayed_insts,
            resumed: 0,
            already_committed: true,
        });
    }

    // An overridden suffix changes the plan: rewrite the manifest so the
    // continued log stays coherent (and a crash during recovery remains
    // recoverable against the *new* plan).
    let suffix_stage = match done.len() {
        0 => 0,
        n => manifest_exprs[n - 1].0,
    };
    if suffix != default_suffix {
        let mut manifest = log.manifest.clone();
        manifest.exprs.truncate(done.len());
        for e in &suffix {
            manifest.exprs.push(crate::wal::ManifestExpr::from_expr(
                w.vdag(),
                suffix_stage,
                e,
            ));
        }
        std::fs::write(dir.join(MANIFEST_FILE), manifest.render())
            .map_err(|e| CoreError::Wal(format!("rewrite manifest: {e}")))?;
    }

    // Execute the suffix fresh, journaling onto the same log.
    let cfg = WalConfig::new(dir).with_fsync(log.manifest.fsync);
    let mut wal = Some(WalWriter::resume(&cfg, &log)?);
    let last_stage = if done.is_empty() {
        None
    } else {
        Some(suffix_stage)
    };
    let items: Vec<(usize, usize, UpdateExpr)> = suffix
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let idx = done.len() + i;
            let stage = if suffix == default_suffix {
                manifest_exprs[idx].0
            } else {
                suffix_stage
            };
            (idx, stage, e.clone())
        })
        .collect();
    let resumed = items.len();
    // Resumed expressions run with the default term engine (shared,
    // inline): the fragment bytes and logical meter are independent of the
    // engine choice, so replay digests verify regardless of the options the
    // crashed run used.
    let fresh = w.run_exprs_journaled(
        &items,
        last_stage,
        &mut wal,
        crate::engine::exec::ExecOptions::default().term_options(),
        None,
        None,
    )?;
    report.per_expr.extend(fresh.per_expr);
    if let Some(writer) = &mut wal {
        writer.append(&RecordBody::Commit)?;
    }
    Ok(RecoveryOutcome {
        report,
        replayed_comps,
        replayed_insts,
        resumed,
        already_committed: false,
    })
}
