//! Update-script generation (Section 5.5, "Implementing MinWork").
//!
//! The paper's deployment story for a warehouse on a commercial RDBMS: the
//! set of 1-way expressions a VDAG can ever use is known *a priori* (one
//! `Comp(Vj, {Vi})` per edge, one `Inst(V)` per view), so a stored procedure
//! is created for each expression once, and every update window merely
//! executes the procedures in the order the planner chooses — no per-batch
//! SQL parsing or optimization.
//!
//! This module renders those procedures as ANSI-ish SQL (delta relations are
//! tables with a signed `__mult` column; aggregate deltas are summary-delta
//! tables) and renders any planned [`Strategy`] as the corresponding `EXEC`
//! script. The SQL is illustrative of the §5.5 architecture — this
//! repository's own engine executes strategies natively — but it is
//! well-formed, deterministic, and exercised by tests.

use crate::engine::Warehouse;
use crate::error::{CoreError, CoreResult};
use std::fmt::Write as _;
use uww_relational::{
    AggFunc, CmpOp, Predicate, ScalarExpr, Value, ViewDef, ViewOutput, DECIMAL_ONE,
};
use uww_vdag::{Strategy, UpdateExpr, ViewId};

/// A named stored procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlProcedure {
    /// Procedure name, e.g. `comp_Q3_from_LINEITEM` or `inst_Q3`.
    pub name: String,
    /// The `CREATE PROCEDURE` statement body.
    pub sql: String,
}

/// Renders a scalar value as a SQL literal.
pub fn value_to_sql(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Decimal(d) => {
            let sign = if *d < 0 { "-" } else { "" };
            let a = d.abs();
            format!("{sign}{}.{:02}", a / DECIMAL_ONE, a % DECIMAL_ONE)
        }
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(_) => {
            let (y, m, d) = uww_relational::days_to_ymd(v.as_date().expect("date value"));
            format!("DATE '{y:04}-{m:02}-{d:02}'")
        }
    }
}

/// Renders a scalar expression as SQL. Qualified column names pass through
/// unchanged (`L.l_extendedprice`).
pub fn expr_to_sql(e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Col(c) => c.clone(),
        ScalarExpr::Lit(v) => value_to_sql(v),
        ScalarExpr::Add(a, b) => format!("({} + {})", expr_to_sql(a), expr_to_sql(b)),
        ScalarExpr::Sub(a, b) => format!("({} - {})", expr_to_sql(a), expr_to_sql(b)),
        ScalarExpr::Mul(a, b) => format!("({} * {})", expr_to_sql(a), expr_to_sql(b)),
    }
}

/// Renders a predicate as SQL.
pub fn predicate_to_sql(p: &Predicate) -> String {
    match p {
        Predicate::Cmp(op, a, b) => {
            let op = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {op} {}", expr_to_sql(a), expr_to_sql(b))
        }
        Predicate::And(a, b) => format!("({} AND {})", predicate_to_sql(a), predicate_to_sql(b)),
        Predicate::Or(a, b) => format!("({} OR {})", predicate_to_sql(a), predicate_to_sql(b)),
        Predicate::Not(a) => format!("(NOT {})", predicate_to_sql(a)),
        Predicate::True => "1 = 1".to_string(),
    }
}

/// Script generator over one warehouse's VDAG and definitions.
pub struct ScriptGenerator<'a> {
    warehouse: &'a Warehouse,
}

impl<'a> ScriptGenerator<'a> {
    /// Creates a generator.
    pub fn new(warehouse: &'a Warehouse) -> Self {
        ScriptGenerator { warehouse }
    }

    /// The procedure name for a 1-way expression.
    pub fn procedure_name(&self, e: &UpdateExpr) -> CoreResult<String> {
        let g = self.warehouse.vdag();
        match e {
            UpdateExpr::Inst(v) => Ok(format!("inst_{}", g.name(*v))),
            UpdateExpr::Comp { view, over } => {
                if over.len() != 1 {
                    return Err(CoreError::Planner(
                        "stored procedures are generated for 1-way expressions; \
                         dual-stage comps are executed as their term set"
                            .to_string(),
                    ));
                }
                let src = *over.iter().next().expect("non-empty over");
                Ok(format!("comp_{}_from_{}", g.name(*view), g.name(src)))
            }
        }
    }

    /// The `CREATE TABLE` statements for every delta relation, emitted once
    /// at warehouse-setup time.
    pub fn delta_table_ddl(&self) -> Vec<String> {
        let g = self.warehouse.vdag();
        let mut out = Vec::new();
        for v in g.view_ids() {
            let name = g.name(v);
            let table = self.warehouse.table(name).expect("registered view");
            let mut sql = format!("CREATE TABLE delta_{name} (\n");
            for c in table.schema().columns() {
                let ty = match c.ty {
                    uww_relational::ValueType::Int => "BIGINT",
                    uww_relational::ValueType::Decimal => "DECIMAL(18,2)",
                    uww_relational::ValueType::Str => "VARCHAR(128)",
                    uww_relational::ValueType::Date => "DATE",
                };
                let _ = writeln!(sql, "  {} {ty},", c.name);
            }
            sql.push_str("  __mult BIGINT NOT NULL\n);");
            out.push(sql);
        }
        out
    }

    /// Every stored procedure the VDAG can ever need: one per 1-way
    /// expression (Section 5.5's "the set of 1-way expressions used by the
    /// MinWork VDAG strategy is known a priori").
    pub fn procedures(&self) -> CoreResult<Vec<SqlProcedure>> {
        let g = self.warehouse.vdag();
        let mut out = Vec::new();
        for v in g.view_ids() {
            for &src in g.sources(v) {
                out.push(self.comp_procedure(v, src)?);
            }
        }
        for v in g.view_ids() {
            out.push(self.inst_procedure(v)?);
        }
        Ok(out)
    }

    /// `CREATE PROCEDURE comp_W_from_V`: the single maintenance term
    /// `ΔW += π/γ( ΔV ⋈ other sources )`, with signed multiplicities.
    fn comp_procedure(&self, view: ViewId, src: ViewId) -> CoreResult<SqlProcedure> {
        let g = self.warehouse.vdag();
        let view_name = g.name(view);
        let def = self
            .warehouse
            .def(view_name)
            .ok_or_else(|| CoreError::Warehouse(format!("no definition for {view_name}")))?;
        let src_name = g.name(src).to_string();
        let name = format!("comp_{view_name}_from_{src_name}");

        let mut sql = format!("CREATE PROCEDURE {name} AS\n");
        sql.push_str(&self.term_sql(def, &src_name)?);
        Ok(SqlProcedure { name, sql })
    }

    /// The term body: FROM-list substitutes `delta_<src>` for the one delta
    /// source, multiplies multiplicities through, groups for aggregates.
    fn term_sql(&self, def: &ViewDef, delta_source: &str) -> CoreResult<String> {
        let mut from = Vec::new();
        let mut mult_factors = Vec::new();
        for s in &def.sources {
            if s.view == delta_source {
                from.push(format!("delta_{} {}", s.view, s.alias));
                mult_factors.push(format!("{}.__mult", s.alias));
            } else {
                from.push(format!("{} {}", s.view, s.alias));
            }
        }
        let mult = if mult_factors.is_empty() {
            "1".to_string()
        } else {
            mult_factors.join(" * ")
        };

        let mut conds: Vec<String> = def
            .joins
            .iter()
            .map(|j| format!("{} = {}", j.left, j.right))
            .collect();
        conds.extend(def.filters.iter().map(predicate_to_sql));
        let where_clause = if conds.is_empty() {
            String::new()
        } else {
            format!("WHERE {}\n", conds.join("\n  AND "))
        };

        let body = match &def.output {
            ViewOutput::Project(outs) => {
                let select: Vec<String> = outs
                    .iter()
                    .map(|o| format!("{} AS {}", expr_to_sql(&o.expr), o.name))
                    .collect();
                format!(
                    "INSERT INTO delta_{target} ({cols}, __mult)\n\
                     SELECT {select}, {mult}\nFROM {from}\n{where_clause};",
                    target = def.name,
                    cols = outs
                        .iter()
                        .map(|o| o.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                    select = select.join(", "),
                    from = from.join(", "),
                )
            }
            ViewOutput::Aggregate {
                group_by,
                aggregates,
            } => {
                // Summary-delta form: grouped signed contributions.
                let mut select: Vec<String> = group_by
                    .iter()
                    .map(|o| format!("{} AS {}", expr_to_sql(&o.expr), o.name))
                    .collect();
                for a in aggregates {
                    let inner = match a.func {
                        AggFunc::Sum => format!("SUM({} * ({mult}))", expr_to_sql(&a.input)),
                        AggFunc::Count => format!("SUM({mult})"),
                        // Extremum deltas ignore multiplicities (insert-only).
                        AggFunc::Min => format!("MIN({})", expr_to_sql(&a.input)),
                        AggFunc::Max => format!("MAX({})", expr_to_sql(&a.input)),
                    };
                    select.push(format!("{inner} AS {}", a.name));
                }
                select.push(format!("SUM({mult}) AS __mult"));
                let group_cols: Vec<String> =
                    group_by.iter().map(|o| expr_to_sql(&o.expr)).collect();
                format!(
                    "INSERT INTO delta_{target} ({cols}, __mult)\n\
                     SELECT {select}\nFROM {from}\n{where_clause}GROUP BY {group};",
                    target = def.name,
                    cols = group_by
                        .iter()
                        .map(|o| o.name.as_str())
                        .chain(aggregates.iter().map(|a| a.name.as_str()))
                        .collect::<Vec<_>>()
                        .join(", "),
                    select = select.join(", "),
                    from = from.join(", "),
                    group = group_cols.join(", "),
                )
            }
        };
        Ok(body)
    }

    /// `CREATE PROCEDURE inst_V`: delete minus tuples, insert plus tuples,
    /// clear the delta table.
    fn inst_procedure(&self, view: ViewId) -> CoreResult<SqlProcedure> {
        let g = self.warehouse.vdag();
        let view_name = g.name(view);
        let name = format!("inst_{view_name}");
        let table = self.warehouse.table(view_name)?;
        let cols: Vec<&str> = table
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        let key_match = cols
            .iter()
            .map(|c| format!("t.{c} = d.{c}"))
            .collect::<Vec<_>>()
            .join(" AND ");
        let sql = format!(
            "CREATE PROCEDURE {name} AS\n\
             DELETE FROM {view_name} t\n\
             WHERE EXISTS (SELECT 1 FROM delta_{view_name} d\n\
                           WHERE d.__mult < 0 AND {key_match});\n\
             INSERT INTO {view_name} ({cols})\n\
             SELECT {cols} FROM delta_{view_name} WHERE __mult > 0;\n\
             DELETE FROM delta_{view_name};",
            cols = cols.join(", "),
        );
        Ok(SqlProcedure { name, sql })
    }

    /// Renders a planned strategy as the per-window `EXEC` script. Dual-stage
    /// comps expand into their 1-way procedures' terms? No — per §5.5 the
    /// procedure set is the 1-way set, so the strategy must be 1-way.
    pub fn strategy_script(&self, strategy: &Strategy) -> CoreResult<String> {
        if !strategy.is_one_way() {
            return Err(CoreError::Planner(
                "§5.5 scripts are generated for 1-way strategies (the set MinWork/Prune emit)"
                    .to_string(),
            ));
        }
        let mut out = String::from("-- update window script (regenerated per change batch)\n");
        for e in &strategy.exprs {
            let _ = writeln!(out, "EXEC {};", self.procedure_name(e)?);
        }
        Ok(out)
    }

    /// The one-time setup script: delta DDL + all procedures.
    pub fn setup_script(&self) -> CoreResult<String> {
        let mut out = String::from("-- one-time warehouse setup (Section 5.5, step 2)\n\n");
        for ddl in self.delta_table_ddl() {
            out.push_str(&ddl);
            out.push_str("\n\n");
        }
        for p in self.procedures()? {
            out.push_str(&p.sql);
            out.push_str("\n\n");
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Warehouse;
    use crate::planner::min_work;
    use crate::sizes::SizeCatalog;
    use uww_relational::{
        tup, AggregateColumn, EquiJoin, OutputColumn, Schema, Table, ValueType, ViewSource,
    };

    fn warehouse() -> Warehouse {
        let mut r = Table::new(
            "R",
            Schema::of(&[("rk", ValueType::Int), ("rv", ValueType::Decimal)]),
        );
        r.insert(tup![Value::Int(1), Value::Decimal(100)]).unwrap();
        let mut s = Table::new(
            "S",
            Schema::of(&[("sk", ValueType::Int), ("tag", ValueType::Str)]),
        );
        s.insert(tup![Value::Int(1), Value::str("x")]).unwrap();
        let def = ViewDef {
            name: "V".into(),
            sources: vec![ViewSource::named("R"), ViewSource::named("S")],
            joins: vec![EquiJoin::new("R.rk", "S.sk")],
            filters: vec![Predicate::col_eq("S.tag", Value::str("x"))],
            output: ViewOutput::Aggregate {
                group_by: vec![OutputColumn::col("k", "R.rk")],
                aggregates: vec![AggregateColumn {
                    name: "total".into(),
                    func: AggFunc::Sum,
                    input: ScalarExpr::col("R.rv"),
                }],
            },
        };
        Warehouse::builder()
            .base_table(r)
            .base_table(s)
            .view(def)
            .build()
            .unwrap()
    }

    #[test]
    fn literals_render() {
        assert_eq!(value_to_sql(&Value::Int(-3)), "-3");
        assert_eq!(value_to_sql(&Value::Decimal(1234)), "12.34");
        assert_eq!(value_to_sql(&Value::Decimal(-5)), "-0.05");
        assert_eq!(value_to_sql(&Value::str("O'Hare")), "'O''Hare'");
        assert_eq!(
            value_to_sql(&uww_relational::date(1995, 3, 15)),
            "DATE '1995-03-15'"
        );
    }

    #[test]
    fn expressions_and_predicates_render() {
        let e = ScalarExpr::col("L.p")
            .mul(ScalarExpr::lit(Value::Decimal(100)).sub(ScalarExpr::col("L.d")));
        assert_eq!(expr_to_sql(&e), "(L.p * (1.00 - L.d))");
        let p = Predicate::col_gt("O.d", Value::Int(3)).and(Predicate::True);
        assert_eq!(predicate_to_sql(&p), "(O.d > 3 AND 1 = 1)");
    }

    #[test]
    fn procedure_set_covers_all_one_way_expressions() {
        let w = warehouse();
        let gen = ScriptGenerator::new(&w);
        let procs = gen.procedures().unwrap();
        let names: Vec<&str> = procs.iter().map(|p| p.name.as_str()).collect();
        // 2 edges + 3 views.
        assert_eq!(procs.len(), 5);
        assert!(names.contains(&"comp_V_from_R"));
        assert!(names.contains(&"comp_V_from_S"));
        assert!(names.contains(&"inst_R"));
        assert!(names.contains(&"inst_V"));
    }

    #[test]
    fn comp_procedure_substitutes_delta_table_and_multiplies() {
        let w = warehouse();
        let gen = ScriptGenerator::new(&w);
        let procs = gen.procedures().unwrap();
        let comp_r = procs.iter().find(|p| p.name == "comp_V_from_R").unwrap();
        assert!(comp_r.sql.contains("FROM delta_R R, S S"), "{}", comp_r.sql);
        assert!(
            comp_r.sql.contains("SUM(R.rv * (R.__mult))"),
            "{}",
            comp_r.sql
        );
        assert!(comp_r.sql.contains("GROUP BY R.rk"), "{}", comp_r.sql);
        assert!(comp_r.sql.contains("R.rk = S.sk"));
        assert!(comp_r.sql.contains("S.tag = 'x'"));
        let comp_s = procs.iter().find(|p| p.name == "comp_V_from_S").unwrap();
        assert!(comp_s.sql.contains("FROM R R, delta_S S"), "{}", comp_s.sql);
        assert!(comp_s.sql.contains("SUM(S.__mult)"), "{}", comp_s.sql);
    }

    #[test]
    fn inst_procedure_deletes_then_inserts_then_clears() {
        let w = warehouse();
        let gen = ScriptGenerator::new(&w);
        let procs = gen.procedures().unwrap();
        let inst = procs.iter().find(|p| p.name == "inst_V").unwrap();
        let del = inst.sql.find("DELETE FROM V").unwrap();
        let ins = inst.sql.find("INSERT INTO V").unwrap();
        let clr = inst.sql.find("DELETE FROM delta_V").unwrap();
        assert!(del < ins && ins < clr, "{}", inst.sql);
        // The hidden count column participates in the install.
        assert!(inst.sql.contains("__count"));
    }

    #[test]
    fn ddl_covers_every_view() {
        let w = warehouse();
        let gen = ScriptGenerator::new(&w);
        let ddl = gen.delta_table_ddl();
        assert_eq!(ddl.len(), 3);
        assert!(ddl.iter().any(|d| d.contains("CREATE TABLE delta_V")));
        assert!(ddl.iter().all(|d| d.contains("__mult BIGINT NOT NULL")));
    }

    #[test]
    fn strategy_script_matches_plan_order() {
        let mut w = warehouse();
        // Load a change so planning has something to order.
        let mut d = uww_relational::DeltaRelation::new(w.table("R").unwrap().schema().clone());
        d.add(tup![Value::Int(1), Value::Decimal(100)], -1);
        let mut m = std::collections::BTreeMap::new();
        m.insert("R".to_string(), d);
        w.load_changes(m).unwrap();
        let sizes = SizeCatalog::estimate(&w).unwrap();
        let plan = min_work(w.vdag(), &sizes).unwrap();
        let gen = ScriptGenerator::new(&w);
        let script = gen.strategy_script(&plan.strategy).unwrap();
        let exec_lines: Vec<&str> = script.lines().filter(|l| l.starts_with("EXEC")).collect();
        assert_eq!(exec_lines.len(), plan.strategy.len());
        // Execution order in the script mirrors the plan exactly.
        for (line, expr) in exec_lines.iter().zip(&plan.strategy.exprs) {
            assert_eq!(
                *line,
                format!("EXEC {};", gen.procedure_name(expr).unwrap())
            );
        }
    }

    #[test]
    fn dual_stage_strategy_rejected() {
        let w = warehouse();
        let gen = ScriptGenerator::new(&w);
        let dual = uww_vdag::dual_stage_strategy(w.vdag());
        assert!(gen.strategy_script(&dual).is_err());
    }

    #[test]
    fn setup_script_is_complete() {
        let w = warehouse();
        let gen = ScriptGenerator::new(&w);
        let setup = gen.setup_script().unwrap();
        assert!(setup.contains("CREATE TABLE delta_R"));
        assert!(setup.contains("CREATE PROCEDURE comp_V_from_S"));
        assert!(setup.contains("CREATE PROCEDURE inst_S"));
    }
}
