//! View sizes and size estimation (Section 5.5, "Computing a desired view
//! ordering").
//!
//! The planners need, per view `V`: its current size `|V|`, the size of its
//! pending delta `|ΔV|`, and its post-install size `|V'|`. For base views
//! these are exact (the changes arrive before the update window starts). For
//! derived views the paper prescribes standard result-size estimation; we
//! implement a selectivity-independence heuristic that propagates per-source
//! change fractions bottom-up.

use crate::engine::Warehouse;
use crate::error::CoreResult;
use uww_vdag::{Vdag, ViewId, ViewOrdering};

/// Size triple for one view.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SizeInfo {
    /// `|V|`: rows currently stored.
    pub pre: f64,
    /// `|V'|`: rows after the delta installs.
    pub post: f64,
    /// `|ΔV|`: plus + minus rows of the delta.
    pub delta: f64,
}

impl SizeInfo {
    /// The ordering key of Theorem 4.2: `|V'| − |V|`.
    pub fn growth(&self) -> f64 {
        self.post - self.pre
    }
}

/// Sizes for every view of a VDAG, indexed by [`ViewId`].
#[derive(Clone, Debug, Default)]
pub struct SizeCatalog {
    infos: Vec<SizeInfo>,
}

impl SizeCatalog {
    /// Builds from explicit per-view sizes (tests, synthetic scenarios).
    pub fn from_infos(infos: Vec<SizeInfo>) -> Self {
        SizeCatalog { infos }
    }

    /// The size triple of `v`.
    pub fn info(&self, v: ViewId) -> SizeInfo {
        self.infos.get(v.0).copied().unwrap_or_default()
    }

    /// Sets the size triple of `v`, growing the catalog as needed.
    pub fn set(&mut self, v: ViewId, info: SizeInfo) {
        if self.infos.len() <= v.0 {
            self.infos.resize(v.0 + 1, SizeInfo::default());
        }
        self.infos[v.0] = info;
    }

    /// `|ΔV|`.
    pub fn delta(&self, v: ViewId) -> f64 {
        self.info(v).delta
    }

    /// `|V|` or `|V'|` depending on whether `v` is installed.
    pub fn state_size(&self, v: ViewId, installed: bool) -> f64 {
        let i = self.info(v);
        if installed {
            i.post
        } else {
            i.pre
        }
    }

    /// The **desired view ordering** (Section 5): all views by increasing
    /// `|V'| − |V|`, ties broken by view id.
    pub fn desired_ordering(&self, g: &Vdag) -> ViewOrdering {
        ViewOrdering::by_key(g, |v| self.info(v).growth())
    }

    /// Estimates sizes for every view of `warehouse` from its stored state
    /// and pending (base) deltas.
    ///
    /// Base views are exact. For a derived view the heuristic assumes
    /// uniform, independent changes: if source `s` deletes a fraction `d_s`
    /// and inserts a fraction `i_s`, the view retains `Π(1 − d_s)` of its
    /// rows and gains `Σ i_s` of its size in new rows:
    ///
    /// * `|V'| ≈ |V| · Π(1 − d_s) + |V| · Σ i_s`
    /// * `|ΔV| ≈ |V| · (1 − Π(1 − d_s)) + |V| · Σ i_s`
    ///
    /// Views with no changed source get `delta = 0, post = pre`. The
    /// estimates only drive *ordering* decisions; the experiments show the
    /// ordering is robust to their roughness (and for level-1 summary views,
    /// which nothing consumes, they do not matter at all — only base-view
    /// sizes, which are exact, decide the TPC-D orderings).
    pub fn estimate(warehouse: &Warehouse) -> CoreResult<SizeCatalog> {
        let g = warehouse.vdag();
        let mut cat = SizeCatalog::default();
        // Change fractions per view (deletes, inserts), filled bottom-up.
        let mut fractions: Vec<(f64, f64)> = vec![(0.0, 0.0); g.len()];

        for v in g.view_ids() {
            let name = g.name(v);
            let pre = warehouse.table(name)?.len() as f64;
            if g.is_base(v) {
                let rows = warehouse.pending_rows(name)?;
                let minus = rows.minus_len() as f64;
                let plus = rows.plus_len() as f64;
                let post = pre - minus + plus;
                cat.set(
                    v,
                    SizeInfo {
                        pre,
                        post,
                        delta: minus + plus,
                    },
                );
                if pre > 0.0 {
                    fractions[v.0] = (minus / pre, plus / pre);
                }
            } else {
                let mut keep = 1.0;
                let mut gain = 0.0;
                for &s in g.sources(v) {
                    let (d, i) = fractions[s.0];
                    keep *= 1.0 - d.min(1.0);
                    gain += i;
                }
                let deleted = pre * (1.0 - keep);
                let inserted = pre * gain;
                let post = pre - deleted + inserted;
                cat.set(
                    v,
                    SizeInfo {
                        pre,
                        post,
                        delta: deleted + inserted,
                    },
                );
                if pre > 0.0 {
                    fractions[v.0] = (deleted / pre, inserted / pre);
                }
            }
        }
        Ok(cat)
    }

    /// Exact sizes, obtained by actually expanding every pending delta
    /// (including derived ones accumulated mid-strategy). Expensive — used
    /// by tests and the metric-validation experiments, not by the planners.
    pub fn exact(warehouse: &Warehouse) -> CoreResult<SizeCatalog> {
        let g = warehouse.vdag();
        let expected = warehouse.expected_final_state()?;
        let mut cat = SizeCatalog::default();
        for v in g.view_ids() {
            let name = g.name(v);
            let pre = warehouse.table(name)?.len() as f64;
            let post = expected.get(name)?.len() as f64;
            let delta = if g.is_base(v) {
                warehouse.pending_len(name)? as f64
            } else {
                // Exact derived delta size: diff the extents.
                warehouse.table(name)?.diff(expected.get(name)?)?.len() as f64
            };
            cat.set(v, SizeInfo { pre, post, delta });
        }
        Ok(cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uww_vdag::figure3_vdag;

    #[test]
    fn growth_and_ordering() {
        let g = figure3_vdag();
        let mut cat = SizeCatalog::default();
        // V1 grows, V2 shrinks a lot, V3 shrinks a little, V4/V5 unchanged.
        cat.set(
            ViewId(0),
            SizeInfo {
                pre: 100.0,
                post: 120.0,
                delta: 20.0,
            },
        );
        cat.set(
            ViewId(1),
            SizeInfo {
                pre: 100.0,
                post: 50.0,
                delta: 50.0,
            },
        );
        cat.set(
            ViewId(2),
            SizeInfo {
                pre: 100.0,
                post: 90.0,
                delta: 10.0,
            },
        );
        cat.set(
            ViewId(3),
            SizeInfo {
                pre: 40.0,
                post: 40.0,
                delta: 0.0,
            },
        );
        cat.set(
            ViewId(4),
            SizeInfo {
                pre: 10.0,
                post: 10.0,
                delta: 0.0,
            },
        );
        let ord = cat.desired_ordering(&g);
        let names: Vec<&str> = ord.views().iter().map(|v| g.name(*v)).collect();
        // -50 < -10 < 0 (V4 before V5 by id) < +20.
        assert_eq!(names, vec!["V2", "V3", "V4", "V5", "V1"]);
        assert_eq!(cat.info(ViewId(1)).growth(), -50.0);
        assert_eq!(cat.state_size(ViewId(1), false), 100.0);
        assert_eq!(cat.state_size(ViewId(1), true), 50.0);
        assert_eq!(cat.delta(ViewId(1)), 50.0);
    }

    #[test]
    fn missing_views_default_to_zero() {
        let cat = SizeCatalog::default();
        assert_eq!(cat.info(ViewId(7)), SizeInfo::default());
    }
}
