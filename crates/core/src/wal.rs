//! The install write-ahead log: crash-safe journaling of strategy execution.
//!
//! The paper's update window is a long-running batch job — a crash halfway
//! through a multi-hour install would otherwise force a full rerun, exactly
//! the cost the strategies were chosen to avoid. This module makes execution
//! *resumable*: a WAL directory holds everything needed to redo a crashed
//! run from its last durable record (see [`crate::recovery`]).
//!
//! # Directory layout
//!
//! | file           | contents                                              |
//! |----------------|-------------------------------------------------------|
//! | `state.snap`   | catalog snapshot of the warehouse **before** the run  |
//! | `changes.snap` | the batch of base-view deltas being installed         |
//! | `manifest`     | VDAG fingerprint, snapshot digests, strategy hash, and the strategy itself in canonical execution order |
//! | `wal.log`      | append-only, checksummed records, one per line        |
//!
//! This is a **redo log**: the durable image is the snapshot, and recovery
//! re-applies completed work from the log (journaled ΔV fragments for
//! `Comp`, re-executed installs for `Inst`) before running the remaining
//! suffix fresh.
//!
//! # Record framing
//!
//! Every record is one line, `R <seq> <fnv64-of-body> <body>`. Bodies map
//! 1:1 onto the paper's expression boundaries:
//!
//! | body                                 | meaning                         |
//! |--------------------------------------|---------------------------------|
//! | `BEGIN`                              | run started                     |
//! | `STG <stage>`                        | parallel stage barrier entered  |
//! | `CS <idx>`                           | `Comp` expression started       |
//! | `CD <idx> <digest> <payload>`        | `Comp` done; ΔV fragment + digest |
//! | `IS <idx>`                           | `Inst` expression started       |
//! | `ID <idx> <rows> <post-digest>`      | `Inst` done; installed row count and digest of the view's new extent |
//! | `COMMIT`                             | run completed                   |
//!
//! `<idx>` indexes the manifest's canonical expression order. The log is
//! written *ahead*: `CD` is appended before the fragment is merged into the
//! warehouse's pending ΔV, and `IS` before the extent is touched, so every
//! effect on warehouse state is covered by a durable record.
//!
//! # Reader tolerance
//!
//! [`WalLog::open`] drops a torn final record (the expected shape of a crash
//! mid-append), skips exact duplicate records idempotently, and refuses —
//! with [`CoreError::WalCorrupt`] — any interior checksum failure or
//! sequence anomaly, which can only mean damage or tampering.
//!
//! # Deterministic fault injection
//!
//! A [`FaultPlan`] makes crash testing exact rather than statistical: it
//! fires at a chosen record sequence number inside [`WalWriter::append`],
//! either refusing to write (`crash_before`), writing a truncated record
//! (`torn_at`), or writing the record twice (`duplicate_at`). The first two
//! surface as [`CoreError::InjectedCrash`], stopping the run at precisely
//! that boundary.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use uww_relational::{delta_from_str, delta_to_string, digest64, DeltaRelation};
use uww_vdag::{UpdateExpr, Vdag};

use crate::engine::{PendingDelta, SummaryDelta};
use crate::error::{CoreError, CoreResult};

/// First line of the manifest file.
pub const MANIFEST_HEADER: &str = "# uww wal manifest v1";
/// Catalog snapshot file name inside a WAL directory.
pub const STATE_SNAP: &str = "state.snap";
/// Base-delta snapshot file name inside a WAL directory.
pub const CHANGES_SNAP: &str = "changes.snap";
/// Manifest file name inside a WAL directory.
pub const MANIFEST_FILE: &str = "manifest";
/// Log file name inside a WAL directory.
pub const LOG_FILE: &str = "wal.log";

fn io_err(ctx: &str, e: std::io::Error) -> CoreError {
    CoreError::Wal(format!("{ctx}: {e}"))
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// When the writer calls `fsync` on the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every record — every acknowledged record survives a crash.
    #[default]
    Always,
    /// Never sync — fast, suitable for tests and fault-injection runs where
    /// the "crash" is simulated and the OS keeps running.
    Never,
}

impl FsyncPolicy {
    /// Wire name (`always` / `never`).
    pub fn as_str(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> CoreResult<Self> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => Err(CoreError::Wal(format!("unknown fsync policy {s:?}"))),
        }
    }
}

/// A deterministic, seedless fault schedule, keyed by record sequence
/// number. At most one fault fires per plan in practice, but the fields are
/// independent so a test can combine them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Crash *before* writing the record with this sequence number: the
    /// record is never written and [`CoreError::InjectedCrash`] is returned.
    pub crash_before: Option<u64>,
    /// Write only a truncated prefix of this record (a torn write), then
    /// crash.
    pub torn_at: Option<u64>,
    /// Write this record twice (a retried append), then continue normally.
    pub duplicate_at: Option<u64>,
    /// Crash at the WAL-directory fsync point of [`WalWriter::create`],
    /// immediately after the directory entries are made durable and before
    /// the `BEGIN` record is appended. Fires only under
    /// [`FsyncPolicy::Always`] — which doubles as the regression check that
    /// the directory fsync actually happens on that policy.
    pub crash_at_dir_sync: bool,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Crash before record `k` is written.
    pub fn crash_before(k: u64) -> Self {
        FaultPlan {
            crash_before: Some(k),
            ..FaultPlan::default()
        }
    }

    /// Tear record `k` (write a truncated prefix, then crash).
    pub fn torn_at(k: u64) -> Self {
        FaultPlan {
            torn_at: Some(k),
            ..FaultPlan::default()
        }
    }

    /// Duplicate record `k` (write it twice, keep going).
    pub fn duplicate_at(k: u64) -> Self {
        FaultPlan {
            duplicate_at: Some(k),
            ..FaultPlan::default()
        }
    }

    /// Crash at the directory-fsync point of WAL creation.
    pub fn crash_at_dir_sync() -> Self {
        FaultPlan {
            crash_at_dir_sync: true,
            ..FaultPlan::default()
        }
    }

    /// True when no fault is scheduled.
    pub fn is_none(&self) -> bool {
        self.crash_before.is_none()
            && self.torn_at.is_none()
            && self.duplicate_at.is_none()
            && !self.crash_at_dir_sync
    }
}

/// Where and how to journal an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// The WAL directory (created on begin; must not already hold a log).
    pub dir: PathBuf,
    /// Fsync policy for appended records.
    pub fsync: FsyncPolicy,
    /// Fault schedule for deterministic crash testing.
    pub faults: FaultPlan,
    /// Free-form `key value` context recorded in the manifest (e.g. the CLI
    /// scenario and scale, so `uww recover` can rebuild the warehouse).
    pub ctx: Vec<(String, String)>,
}

impl WalConfig {
    /// A config with the default (safe) fsync policy and no faults.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
            faults: FaultPlan::none(),
            ctx: Vec::new(),
        }
    }

    /// Sets the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Appends a manifest context pair.
    pub fn with_ctx(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.ctx.push((key.into(), value.into()));
        self
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// The payload of one WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordBody {
    /// Execution started.
    Begin,
    /// A parallel stage barrier was entered.
    Stage(usize),
    /// `Comp` expression `idx` (manifest order) started.
    CompStart(usize),
    /// `Comp` expression `idx` finished; the journaled ΔV fragment.
    CompDone {
        /// Manifest expression index.
        idx: usize,
        /// `digest64` of the encoded fragment (verified on replay).
        digest: u64,
        /// The encoded [`PendingDelta`] fragment ([`encode_pending`]).
        payload: String,
    },
    /// `Inst` expression `idx` started (the extent may be half-written
    /// after this point — recovery restores from the snapshot).
    InstStart(usize),
    /// `Inst` expression `idx` finished.
    InstDone {
        /// Manifest expression index.
        idx: usize,
        /// Number of delta rows installed (verified on replay).
        delta_len: u64,
        /// `digest64` of the view's stored extent after the install.
        post_digest: u64,
    },
    /// Execution completed; the log is closed.
    Commit,
}

impl RecordBody {
    /// The record's wire tag (the first token of its encoded form).
    pub fn tag(&self) -> &'static str {
        match self {
            RecordBody::Begin => "BEGIN",
            RecordBody::Stage(_) => "STG",
            RecordBody::CompStart(_) => "CS",
            RecordBody::CompDone { .. } => "CD",
            RecordBody::InstStart(_) => "IS",
            RecordBody::InstDone { .. } => "ID",
            RecordBody::Commit => "COMMIT",
        }
    }

    /// Serializes the body to its wire form (no framing).
    pub fn encode(&self) -> String {
        match self {
            RecordBody::Begin => "BEGIN".to_string(),
            RecordBody::Stage(s) => format!("STG {s}"),
            RecordBody::CompStart(i) => format!("CS {i}"),
            RecordBody::CompDone {
                idx,
                digest,
                payload,
            } => format!("CD {idx} {digest:016x} {}", escape(payload)),
            RecordBody::InstStart(i) => format!("IS {i}"),
            RecordBody::InstDone {
                idx,
                delta_len,
                post_digest,
            } => format!("ID {idx} {delta_len} {post_digest:016x}"),
            RecordBody::Commit => "COMMIT".to_string(),
        }
    }

    /// Parses a wire-form body.
    pub fn decode(s: &str) -> Result<RecordBody, String> {
        let (tag, rest) = match s.split_once(' ') {
            Some((t, r)) => (t, r),
            None => (s, ""),
        };
        match tag {
            "BEGIN" => Ok(RecordBody::Begin),
            "COMMIT" => Ok(RecordBody::Commit),
            "STG" => Ok(RecordBody::Stage(
                rest.parse().map_err(|_| format!("bad stage {rest:?}"))?,
            )),
            "CS" => Ok(RecordBody::CompStart(
                rest.parse().map_err(|_| format!("bad index {rest:?}"))?,
            )),
            "IS" => Ok(RecordBody::InstStart(
                rest.parse().map_err(|_| format!("bad index {rest:?}"))?,
            )),
            "CD" => {
                let mut parts = rest.splitn(3, ' ');
                let idx = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or("bad CD index")?;
                let digest = parts
                    .next()
                    .and_then(|p| u64::from_str_radix(p, 16).ok())
                    .ok_or("bad CD digest")?;
                let payload = unescape(parts.next().ok_or("missing CD payload")?)?;
                Ok(RecordBody::CompDone {
                    idx,
                    digest,
                    payload,
                })
            }
            "ID" => {
                let mut parts = rest.split(' ');
                let idx = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or("bad ID index")?;
                let delta_len = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or("bad ID row count")?;
                let post_digest = parts
                    .next()
                    .and_then(|p| u64::from_str_radix(p, 16).ok())
                    .ok_or("bad ID digest")?;
                Ok(RecordBody::InstDone {
                    idx,
                    delta_len,
                    post_digest,
                })
            }
            _ => Err(format!("unknown record tag {tag:?}")),
        }
    }
}

/// One parsed, checksum-verified WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Sequence number (0-based, dense).
    pub seq: u64,
    /// The payload.
    pub body: RecordBody,
}

/// Escapes a payload so it fits in a single record line (`\` and newline).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Pending-delta payloads
// ---------------------------------------------------------------------------

/// Serializes a ΔV fragment for journaling in a `CD` record.
pub fn encode_pending(p: &PendingDelta) -> String {
    match p {
        PendingDelta::Rows(d) => format!("ROWS\n{}", delta_to_string(d)),
        PendingDelta::Summary(s) => format!("SUMM\n{}", s.to_wire()),
    }
}

/// Parses a fragment serialized by [`encode_pending`].
pub fn decode_pending(s: &str) -> CoreResult<PendingDelta> {
    let (tag, body) = s
        .split_once('\n')
        .ok_or_else(|| CoreError::Wal("truncated fragment payload".to_string()))?;
    match tag {
        "ROWS" => Ok(PendingDelta::Rows(delta_from_str(body)?)),
        "SUMM" => Ok(PendingDelta::Summary(SummaryDelta::from_wire(body)?)),
        _ => Err(CoreError::Wal(format!("unknown fragment tag {tag:?}"))),
    }
}

/// Content digest of a ΔV fragment (digest of its encoding).
pub fn pending_digest(p: &PendingDelta) -> u64 {
    digest64(&encode_pending(p))
}

/// Content digest of an installed delta's rows.
pub fn delta_digest_of(d: &DeltaRelation) -> u64 {
    digest64(&delta_to_string(d))
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One strategy expression in the manifest's canonical execution order.
///
/// Expressions are stored by view *name* (`C <view> <over,...>` /
/// `I <view>`), so the manifest is self-contained and human-readable; the
/// VDAG fingerprint pins the graph the names resolve against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestExpr {
    /// Parallel stage this expression runs in (0 for sequential runs).
    pub stage: usize,
    /// Wire form of the expression.
    pub wire: String,
}

impl ManifestExpr {
    /// Renders an [`UpdateExpr`] into manifest wire form.
    pub fn from_expr(g: &Vdag, stage: usize, e: &UpdateExpr) -> ManifestExpr {
        let wire = match e {
            UpdateExpr::Comp { view, over } => {
                let names: Vec<&str> = over.iter().map(|v| g.name(*v)).collect();
                format!("C {} {}", g.name(*view), names.join(","))
            }
            UpdateExpr::Inst(v) => format!("I {}", g.name(*v)),
        };
        ManifestExpr { stage, wire }
    }

    /// Resolves the wire form back to an [`UpdateExpr`] against `g`.
    pub fn to_expr(&self, g: &Vdag) -> CoreResult<UpdateExpr> {
        let mut parts = self.wire.split(' ');
        let tag = parts.next().unwrap_or("");
        let view = parts
            .next()
            .ok_or_else(|| CoreError::Wal(format!("bad manifest expr {:?}", self.wire)))?;
        let view = g.id_of(view)?;
        match tag {
            "I" => Ok(UpdateExpr::Inst(view)),
            "C" => {
                let over = parts
                    .next()
                    .ok_or_else(|| CoreError::Wal(format!("bad manifest expr {:?}", self.wire)))?;
                let over = over
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|n| g.id_of(n).map_err(CoreError::from))
                    .collect::<CoreResult<_>>()?;
                Ok(UpdateExpr::Comp { view, over })
            }
            _ => Err(CoreError::Wal(format!("bad manifest expr {:?}", self.wire))),
        }
    }

    /// True for `Comp` expressions.
    pub fn is_comp(&self) -> bool {
        self.wire.starts_with("C ")
    }
}

/// The WAL manifest: what run this log belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// [`Vdag::fingerprint`] of the graph the strategy runs against.
    pub vdag_fingerprint: u64,
    /// `digest64` of `state.snap`.
    pub state_digest: u64,
    /// `digest64` of `changes.snap`.
    pub changes_digest: u64,
    /// Fsync policy the run was started with.
    pub fsync: FsyncPolicy,
    /// Free-form context (`key value` pairs) — e.g. the CLI records the
    /// scenario name and scale so `uww recover` can rebuild the warehouse.
    pub ctx: Vec<(String, String)>,
    /// The strategy in canonical execution order. For parallel runs this is
    /// the stage-by-stage linearization: each stage's `Comp`s (in stage
    /// order), then its `Inst`s.
    pub exprs: Vec<ManifestExpr>,
}

impl Manifest {
    /// Hash of the canonical expression sequence (order-sensitive).
    pub fn strategy_hash(&self) -> u64 {
        let joined: Vec<&str> = self.exprs.iter().map(|e| e.wire.as_str()).collect();
        digest64(&joined.join("\n"))
    }

    /// A context value by key.
    pub fn ctx(&self, key: &str) -> Option<&str> {
        self.ctx
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders the manifest file.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{MANIFEST_HEADER}");
        let _ = writeln!(out, "vdag {:016x}", self.vdag_fingerprint);
        let _ = writeln!(out, "state {:016x}", self.state_digest);
        let _ = writeln!(out, "changes {:016x}", self.changes_digest);
        let _ = writeln!(out, "strategy {:016x}", self.strategy_hash());
        let _ = writeln!(out, "fsync {}", self.fsync.as_str());
        for (k, v) in &self.ctx {
            let _ = writeln!(out, "ctx {k} {v}");
        }
        for (i, e) in self.exprs.iter().enumerate() {
            let _ = writeln!(out, "expr {i} {} {}", e.stage, e.wire);
        }
        out
    }

    /// Parses a manifest file, verifying the embedded strategy hash.
    pub fn parse(s: &str) -> CoreResult<Manifest> {
        let bad = |d: String| CoreError::Wal(format!("manifest: {d}"));
        let mut lines = s.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(bad("missing header".to_string()));
        }
        let mut vdag_fingerprint = None;
        let mut state_digest = None;
        let mut changes_digest = None;
        let mut strategy = None;
        let mut fsync = FsyncPolicy::default();
        let mut ctx = Vec::new();
        let mut exprs: Vec<ManifestExpr> = Vec::new();
        for line in lines {
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| bad(format!("bad line {line:?}")))?;
            match key {
                "vdag" => vdag_fingerprint = u64::from_str_radix(rest, 16).ok(),
                "state" => state_digest = u64::from_str_radix(rest, 16).ok(),
                "changes" => changes_digest = u64::from_str_radix(rest, 16).ok(),
                "strategy" => strategy = u64::from_str_radix(rest, 16).ok(),
                "fsync" => fsync = FsyncPolicy::parse(rest)?,
                "ctx" => {
                    let (k, v) = rest
                        .split_once(' ')
                        .ok_or_else(|| bad(format!("bad ctx line {line:?}")))?;
                    ctx.push((k.to_string(), v.to_string()));
                }
                "expr" => {
                    let mut parts = rest.splitn(3, ' ');
                    let idx: usize = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| bad(format!("bad expr index in {line:?}")))?;
                    let stage: usize = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| bad(format!("bad expr stage in {line:?}")))?;
                    let wire = parts
                        .next()
                        .ok_or_else(|| bad(format!("bad expr line {line:?}")))?;
                    if idx != exprs.len() {
                        return Err(bad(format!(
                            "expr index {idx} out of order (expected {})",
                            exprs.len()
                        )));
                    }
                    exprs.push(ManifestExpr {
                        stage,
                        wire: wire.to_string(),
                    });
                }
                _ => return Err(bad(format!("unknown key {key:?}"))),
            }
        }
        let m = Manifest {
            vdag_fingerprint: vdag_fingerprint.ok_or_else(|| bad("missing vdag".to_string()))?,
            state_digest: state_digest.ok_or_else(|| bad("missing state".to_string()))?,
            changes_digest: changes_digest.ok_or_else(|| bad("missing changes".to_string()))?,
            fsync,
            ctx,
            exprs,
        };
        let declared = strategy.ok_or_else(|| bad("missing strategy hash".to_string()))?;
        if declared != m.strategy_hash() {
            return Err(bad(format!(
                "strategy hash mismatch: declared {declared:016x}, computed {:016x}",
                m.strategy_hash()
            )));
        }
        Ok(m)
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends checksummed records to `wal.log`, with fsync and fault injection.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    next_seq: u64,
    fsync: FsyncPolicy,
    faults: FaultPlan,
}

impl WalWriter {
    /// Creates a fresh WAL directory — snapshots, manifest, and a log opened
    /// with a `BEGIN` record — and returns the writer positioned after it.
    ///
    /// Refuses to overwrite a directory that already holds a log: a crashed
    /// run's WAL is evidence, and clobbering it silently would defeat the
    /// point.
    pub fn create(
        cfg: &WalConfig,
        manifest: &Manifest,
        state_text: &str,
        changes_text: &str,
    ) -> CoreResult<WalWriter> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("create wal dir", e))?;
        let log_path = cfg.dir.join(LOG_FILE);
        if log_path.exists() {
            return Err(CoreError::Wal(format!(
                "refusing to overwrite existing log {}",
                log_path.display()
            )));
        }
        if digest64(state_text) != manifest.state_digest
            || digest64(changes_text) != manifest.changes_digest
        {
            return Err(CoreError::Wal(
                "manifest digests do not match snapshot contents".to_string(),
            ));
        }
        let write = |name: &str, text: &str| -> CoreResult<()> {
            let path = cfg.dir.join(name);
            fs::write(&path, text).map_err(|e| io_err(&format!("write {name}"), e))?;
            if cfg.fsync == FsyncPolicy::Always {
                File::open(&path)
                    .and_then(|f| f.sync_all())
                    .map_err(|e| io_err(&format!("sync {name}"), e))?;
            }
            Ok(())
        };
        write(STATE_SNAP, state_text)?;
        write(CHANGES_SNAP, changes_text)?;
        write(MANIFEST_FILE, &manifest.render())?;
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| io_err("open wal.log", e))?;
        if cfg.fsync == FsyncPolicy::Always {
            // Syncing the files is not enough: their directory entries live
            // in the parent directory's metadata, and a crash before that
            // metadata reaches disk can leave a fully-synced snapshot with
            // no name — recovery would find an empty or partial WAL dir.
            // One directory fsync after the last create makes the whole set
            // (snapshots, manifest, empty log) durable as a unit.
            File::open(&cfg.dir)
                .and_then(|d| d.sync_all())
                .map_err(|e| io_err("sync wal dir", e))?;
            if cfg.faults.crash_at_dir_sync {
                // The directory entries are durable; BEGIN (seq 0) is not.
                return Err(CoreError::InjectedCrash { record: 0 });
            }
        }
        let mut w = WalWriter {
            file,
            next_seq: 0,
            fsync: cfg.fsync,
            faults: cfg.faults,
        };
        w.append(&RecordBody::Begin)?;
        Ok(w)
    }

    /// Reopens an existing log for continuation after recovery: truncates
    /// the torn tail (if any) and appends at the next sequence number.
    pub fn resume(cfg: &WalConfig, log: &WalLog) -> CoreResult<WalWriter> {
        let path = cfg.dir.join(LOG_FILE);
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open wal.log", e))?;
        file.set_len(log.valid_len)
            .map_err(|e| io_err("truncate torn tail", e))?;
        drop(file);
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open wal.log", e))?;
        Ok(WalWriter {
            file,
            next_seq: log.next_seq,
            fsync: cfg.fsync,
            faults: cfg.faults,
        })
    }

    /// Sequence number the next record will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record (write-ahead: call *before* applying its effect).
    /// Returns the record's sequence number, or the injected crash.
    pub fn append(&mut self, body: &RecordBody) -> CoreResult<u64> {
        let mut span = uww_obs::span(uww_obs::SpanKind::WalRecord, body.tag());
        let seq = self.next_seq;
        if self.faults.crash_before == Some(seq) {
            return Err(CoreError::InjectedCrash { record: seq });
        }
        let body_s = body.encode();
        let line = format!("R {seq} {:016x} {body_s}\n", digest64(&body_s));
        if span.is_recording() {
            span.attr_u64(uww_obs::keys::SEQ, seq);
            span.attr_u64(uww_obs::keys::BYTES, line.len() as u64);
        }
        if self.faults.torn_at == Some(seq) {
            let cut = (line.len() / 2).max(1);
            self.file
                .write_all(&line.as_bytes()[..cut])
                .map_err(|e| io_err("append (torn)", e))?;
            let _ = self.file.sync_all();
            return Err(CoreError::InjectedCrash { record: seq });
        }
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| io_err("append", e))?;
        if self.faults.duplicate_at == Some(seq) {
            self.file
                .write_all(line.as_bytes())
                .map_err(|e| io_err("append (duplicate)", e))?;
        }
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_all().map_err(|e| io_err("fsync", e))?;
        }
        self.next_seq = seq + 1;
        Ok(seq)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A fully read and verified WAL directory.
#[derive(Debug, Clone)]
pub struct WalLog {
    /// The parsed manifest.
    pub manifest: Manifest,
    /// Contents of `state.snap` (digest-verified against the manifest).
    pub state_text: String,
    /// Contents of `changes.snap` (digest-verified against the manifest).
    pub changes_text: String,
    /// Verified records in sequence order (duplicates collapsed).
    pub records: Vec<Record>,
    /// Sequence number for the next appended record.
    pub next_seq: u64,
    /// Byte length of the valid log prefix (everything after is torn tail).
    pub valid_len: u64,
    /// True when a torn final record was dropped.
    pub torn_tail: bool,
    /// True when the log ends in `COMMIT` (the run finished).
    pub committed: bool,
}

impl WalLog {
    /// Opens and verifies a WAL directory.
    ///
    /// * a torn final record is tolerated and dropped ([`Self::torn_tail`]);
    /// * exact duplicate records are skipped idempotently;
    /// * any interior checksum failure, sequence anomaly, or record after
    ///   `COMMIT` is [`CoreError::WalCorrupt`].
    pub fn open(dir: &Path) -> CoreResult<WalLog> {
        let read = |name: &str| -> CoreResult<String> {
            fs::read_to_string(dir.join(name)).map_err(|e| io_err(&format!("read {name}"), e))
        };
        let manifest = Manifest::parse(&read(MANIFEST_FILE)?)?;
        let state_text = read(STATE_SNAP)?;
        let changes_text = read(CHANGES_SNAP)?;
        if digest64(&state_text) != manifest.state_digest {
            return Err(CoreError::Wal(format!(
                "{STATE_SNAP} digest mismatch (snapshot damaged or swapped)"
            )));
        }
        if digest64(&changes_text) != manifest.changes_digest {
            return Err(CoreError::Wal(format!(
                "{CHANGES_SNAP} digest mismatch (snapshot damaged or swapped)"
            )));
        }

        let bytes = fs::read(dir.join(LOG_FILE)).map_err(|e| io_err("read wal.log", e))?;
        let mut records: Vec<Record> = Vec::new();
        let mut prev_raw: Option<Vec<u8>> = None;
        let mut valid_len: u64 = 0;
        let mut torn_tail = false;
        let mut committed = false;

        // Split into newline-terminated lines plus an optional unterminated
        // tail, tracking byte offsets so the torn tail can be truncated.
        let mut start = 0usize;
        let mut pieces: Vec<(usize, &[u8], bool)> = Vec::new(); // (offset, line, terminated)
        for (i, b) in bytes.iter().enumerate() {
            if *b == b'\n' {
                pieces.push((start, &bytes[start..i], true));
                start = i + 1;
            }
        }
        if start < bytes.len() {
            pieces.push((start, &bytes[start..], false));
        }

        let n = pieces.len();
        for (li, (offset, raw, terminated)) in pieces.into_iter().enumerate() {
            let last = li + 1 == n;
            let expected = records.last().map(|r| r.seq + 1).unwrap_or(0);
            match parse_record_line(raw) {
                Ok((seq, body)) => {
                    if Some(raw) == prev_raw.as_deref() && seq + 1 == expected {
                        // Exact duplicate of the previous record: idempotent.
                        valid_len = (offset + raw.len() + usize::from(terminated)) as u64;
                        continue;
                    }
                    if committed {
                        return Err(CoreError::WalCorrupt {
                            record: seq,
                            detail: "record after COMMIT".to_string(),
                        });
                    }
                    if seq != expected {
                        return Err(CoreError::WalCorrupt {
                            record: seq,
                            detail: format!("sequence gap: expected {expected}"),
                        });
                    }
                    committed = body == RecordBody::Commit;
                    records.push(Record { seq, body });
                    prev_raw = Some(raw.to_vec());
                    valid_len = (offset + raw.len() + usize::from(terminated)) as u64;
                }
                Err(detail) => {
                    if last {
                        // The expected shape of a crash mid-append.
                        torn_tail = true;
                        break;
                    }
                    return Err(CoreError::WalCorrupt {
                        record: expected,
                        detail,
                    });
                }
            }
        }

        let next_seq = records.last().map(|r| r.seq + 1).unwrap_or(0);
        Ok(WalLog {
            manifest,
            state_text,
            changes_text,
            records,
            next_seq,
            valid_len,
            torn_tail,
            committed,
        })
    }
}

/// Parses one framed record line (without trailing newline).
fn parse_record_line(raw: &[u8]) -> Result<(u64, RecordBody), String> {
    let s = std::str::from_utf8(raw).map_err(|_| "not utf-8".to_string())?;
    let rest = s.strip_prefix("R ").ok_or("missing R prefix")?;
    let (seq, rest) = rest.split_once(' ').ok_or("missing sequence number")?;
    let seq: u64 = seq.parse().map_err(|_| format!("bad sequence {seq:?}"))?;
    let (crc, body) = rest.split_once(' ').ok_or("missing checksum")?;
    let crc = u64::from_str_radix(crc, 16).map_err(|_| format!("bad checksum {crc:?}"))?;
    if digest64(body) != crc {
        return Err(format!(
            "checksum mismatch: header {crc:016x}, body hashes to {:016x}",
            digest64(body)
        ));
    }
    let body = RecordBody::decode(body)?;
    Ok((seq, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use uww_relational::{deltas_to_string, Catalog};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("uww-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn test_manifest() -> (Manifest, String, String) {
        let state = uww_relational::catalog_to_string(&Catalog::new());
        let changes = deltas_to_string(&BTreeMap::new());
        let m = Manifest {
            vdag_fingerprint: 7,
            state_digest: digest64(&state),
            changes_digest: digest64(&changes),
            fsync: FsyncPolicy::Never,
            ctx: vec![("scenario".to_string(), "unit test run".to_string())],
            exprs: vec![
                ManifestExpr {
                    stage: 0,
                    wire: "C V A,B".to_string(),
                },
                ManifestExpr {
                    stage: 0,
                    wire: "I V".to_string(),
                },
            ],
        };
        (m, state, changes)
    }

    fn cfg(dir: &Path) -> WalConfig {
        WalConfig::new(dir).with_fsync(FsyncPolicy::Never)
    }

    #[test]
    fn create_syncs_wal_directory_under_always() {
        // The crash_at_dir_sync fault fires *at* the directory-fsync point,
        // so an injected crash under `always` proves the fsync call is
        // reached after every file exists — the durability fix. Under
        // `never` the sync (and the fault) must be skipped entirely.
        let d = tmpdir("dirsync-always");
        let (m, state, changes) = test_manifest();
        let c = WalConfig::new(&d)
            .with_fsync(FsyncPolicy::Always)
            .with_faults(FaultPlan::crash_at_dir_sync());
        let err = WalWriter::create(&c, &m, &state, &changes).unwrap_err();
        assert!(matches!(err, CoreError::InjectedCrash { record: 0 }));
        // The crash happens after the directory entries are durable: every
        // file exists, the log is empty, and the state left behind is
        // exactly the crash-before-BEGIN state recovery already handles.
        for f in [STATE_SNAP, CHANGES_SNAP, MANIFEST_FILE, LOG_FILE] {
            assert!(d.join(f).exists(), "{f} missing after dir-sync crash");
        }
        assert_eq!(fs::metadata(d.join(LOG_FILE)).unwrap().len(), 0);
        let log = WalLog::open(&d).unwrap();
        assert_eq!(log.records.len(), 0);
        let _ = fs::remove_dir_all(&d);

        // FsyncPolicy::Never skips the directory sync, so the same fault
        // plan never fires and creation completes.
        let d2 = tmpdir("dirsync-never");
        let c2 = cfg(&d2).with_faults(FaultPlan::crash_at_dir_sync());
        let w = WalWriter::create(&c2, &m, &state, &changes).unwrap();
        assert_eq!(w.next_seq(), 1); // BEGIN written
        let _ = fs::remove_dir_all(&d2);
    }

    #[test]
    fn dir_sync_fault_plan_is_a_scheduled_fault() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::crash_at_dir_sync().is_none());
    }

    #[test]
    fn record_bodies_round_trip() {
        let bodies = [
            RecordBody::Begin,
            RecordBody::Stage(3),
            RecordBody::CompStart(7),
            RecordBody::CompDone {
                idx: 7,
                digest: 0xdead_beef,
                payload: "ROWS\nline one\ttab \\ backslash\nline two\n".to_string(),
            },
            RecordBody::InstStart(8),
            RecordBody::InstDone {
                idx: 8,
                delta_len: 42,
                post_digest: 1,
            },
            RecordBody::Commit,
        ];
        for b in bodies {
            let enc = b.encode();
            assert!(!enc.contains('\n'), "encoded body must be one line: {enc}");
            assert_eq!(RecordBody::decode(&enc).unwrap(), b);
        }
        assert!(RecordBody::decode("XX 1").is_err());
        assert!(RecordBody::decode("CD 1 zz p").is_err());
    }

    #[test]
    fn manifest_round_trip_and_tamper_detection() {
        let (m, _, _) = test_manifest();
        let text = m.render();
        let back = Manifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.ctx("scenario"), Some("unit test run"));
        // Reordering the strategy breaks the embedded hash.
        let tampered = text.replace("expr 0 0 C V A,B", "expr 0 0 C V B,A");
        assert!(matches!(
            Manifest::parse(&tampered),
            Err(CoreError::Wal(d)) if d.contains("strategy hash mismatch")
        ));
        assert!(Manifest::parse("not a manifest").is_err());
    }

    #[test]
    fn write_then_read_round_trips() {
        let dir = tmpdir("rt");
        let (m, state, changes) = test_manifest();
        let mut w = WalWriter::create(&cfg(&dir), &m, &state, &changes).unwrap();
        w.append(&RecordBody::CompStart(0)).unwrap();
        w.append(&RecordBody::CompDone {
            idx: 0,
            digest: 9,
            payload: "ROWS\nx\n".to_string(),
        })
        .unwrap();
        w.append(&RecordBody::Commit).unwrap();
        let log = WalLog::open(&dir).unwrap();
        assert_eq!(log.records.len(), 4);
        assert!(log.committed);
        assert!(!log.torn_tail);
        assert_eq!(log.next_seq, 4);
        assert_eq!(log.manifest, m);
        // A second create refuses to clobber the log.
        assert!(matches!(
            WalWriter::create(&cfg(&dir), &m, &state, &changes),
            Err(CoreError::Wal(d)) if d.contains("refusing to overwrite")
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_before_writes_nothing() {
        let dir = tmpdir("crash");
        let (m, state, changes) = test_manifest();
        let c = cfg(&dir).with_faults(FaultPlan::crash_before(2));
        let mut w = WalWriter::create(&c, &m, &state, &changes).unwrap();
        w.append(&RecordBody::CompStart(0)).unwrap();
        assert_eq!(
            w.append(&RecordBody::CompDone {
                idx: 0,
                digest: 0,
                payload: String::new()
            }),
            Err(CoreError::InjectedCrash { record: 2 })
        );
        let log = WalLog::open(&dir).unwrap();
        assert_eq!(log.records.len(), 2); // BEGIN + CS only
        assert!(!log.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_resume_truncates_it() {
        let dir = tmpdir("torn");
        let (m, state, changes) = test_manifest();
        let c = cfg(&dir).with_faults(FaultPlan::torn_at(2));
        let mut w = WalWriter::create(&c, &m, &state, &changes).unwrap();
        w.append(&RecordBody::CompStart(0)).unwrap();
        assert!(matches!(
            w.append(&RecordBody::CompDone {
                idx: 0,
                digest: 0,
                payload: "ROWS\nx\n".to_string()
            }),
            Err(CoreError::InjectedCrash { record: 2 })
        ));
        drop(w);
        let log = WalLog::open(&dir).unwrap();
        assert_eq!(log.records.len(), 2);
        assert!(log.torn_tail);
        assert_eq!(log.next_seq, 2);
        // Resume truncates the torn bytes and continues the sequence.
        let mut w = WalWriter::resume(&cfg(&dir), &log).unwrap();
        assert_eq!(w.append(&RecordBody::Commit).unwrap(), 2);
        let log = WalLog::open(&dir).unwrap();
        assert!(!log.torn_tail);
        assert!(log.committed);
        assert_eq!(log.records.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_records_are_idempotent() {
        let dir = tmpdir("dup");
        let (m, state, changes) = test_manifest();
        let c = cfg(&dir).with_faults(FaultPlan::duplicate_at(1));
        let mut w = WalWriter::create(&c, &m, &state, &changes).unwrap();
        w.append(&RecordBody::CompStart(0)).unwrap();
        w.append(&RecordBody::Commit).unwrap();
        let log = WalLog::open(&dir).unwrap();
        assert_eq!(log.records.len(), 3); // duplicate CS collapsed
        assert!(log.committed);
        assert!(!log.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_is_loud() {
        let dir = tmpdir("corrupt");
        let (m, state, changes) = test_manifest();
        let mut w = WalWriter::create(&cfg(&dir), &m, &state, &changes).unwrap();
        w.append(&RecordBody::CompStart(0)).unwrap();
        w.append(&RecordBody::Commit).unwrap();
        drop(w);
        // Flip a byte in the middle record's body.
        let path = dir.join(LOG_FILE);
        let text = fs::read_to_string(&path).unwrap();
        let bad = text.replace("CS 0", "CS 1");
        assert_ne!(text, bad);
        fs::write(&path, bad).unwrap();
        assert!(matches!(
            WalLog::open(&dir),
            Err(CoreError::WalCorrupt { record: 1, .. })
        ));
        // Damaging the state snapshot is also loud.
        fs::write(&path, text).unwrap();
        fs::write(dir.join(STATE_SNAP), "# not the snapshot\n").unwrap();
        assert!(matches!(WalLog::open(&dir), Err(CoreError::Wal(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_gap_is_corrupt_even_at_tail() {
        let dir = tmpdir("gap");
        let (m, state, changes) = test_manifest();
        let mut w = WalWriter::create(&cfg(&dir), &m, &state, &changes).unwrap();
        w.append(&RecordBody::CompStart(0)).unwrap();
        drop(w);
        let path = dir.join(LOG_FILE);
        let mut text = fs::read_to_string(&path).unwrap();
        // Append a validly-checksummed record with a skipped sequence number.
        let body = RecordBody::Commit.encode();
        text.push_str(&format!("R 5 {:016x} {body}\n", digest64(&body)));
        fs::write(&path, text).unwrap();
        assert!(matches!(
            WalLog::open(&dir),
            Err(CoreError::WalCorrupt { record: 5, .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pending_payloads_round_trip() {
        use uww_relational::{tup, DeltaRelation, Schema, Value, ValueType};
        let schema = Schema::of(&[("k", ValueType::Int), ("s", ValueType::Str)]);
        let mut d = DeltaRelation::new(schema);
        d.add(tup![Value::Int(1), Value::Str("a\nb\\c\td".into())], 2);
        d.add(tup![Value::Int(2), Value::Str("plain".into())], -1);
        let p = PendingDelta::Rows(d);
        let enc = encode_pending(&p);
        let back = decode_pending(&enc).unwrap();
        assert_eq!(encode_pending(&back), enc);
        assert_eq!(pending_digest(&back), pending_digest(&p));
        // And survives record framing (escape/unescape).
        let rec = RecordBody::CompDone {
            idx: 0,
            digest: pending_digest(&p),
            payload: enc.clone(),
        };
        match RecordBody::decode(&rec.encode()).unwrap() {
            RecordBody::CompDone { payload, .. } => assert_eq!(payload, enc),
            other => panic!("unexpected {other:?}"),
        }
        assert!(decode_pending("BOGUS\nx").is_err());
    }
}
