//! Chrome trace-event exporter and validator.
//!
//! Emits the JSON-object form of the [trace-event format] that Perfetto and
//! `chrome://tracing` load directly: one complete event (`"ph":"X"`) per
//! span with microsecond `ts`/`dur`, the span kind as `cat`, the lane as
//! `tid` (one row per OS thread, so `--term-threads` overlap is visible),
//! and span id/parent plus all attributes under `args`. A `thread_name`
//! metadata event labels each lane.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! The validator re-parses exporter output with the in-crate JSON parser and
//! checks the event-shape contract; the golden tests and the CI bench-smoke
//! job both run it against freshly produced traces.

use crate::json::{self, JsonValue};
use crate::span::{AttrValue, SpanRecord};

/// Renders `spans` as a Chrome trace-event JSON document.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(spans.len() * 128 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut lanes: Vec<u64> = spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in lanes {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{lane},\
             \"args\":{{\"name\":\"lane-{lane}\"}}}}"
            ),
        );
    }
    for s in spans {
        let mut ev = format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"span_id\":{},\"parent_id\":{}",
            json::escape(&s.name),
            s.kind.as_str(),
            s.start_us,
            s.dur_us(),
            s.lane,
            s.id,
            s.parent,
        );
        for (k, v) in &s.attrs {
            ev.push_str(",\"");
            ev.push_str(&json::escape(k));
            ev.push_str("\":");
            match v {
                AttrValue::U64(n) => ev.push_str(&n.to_string()),
                AttrValue::F64(x) if x.is_finite() => ev.push_str(&x.to_string()),
                // JSON has no NaN/Inf; stringify so the document stays valid.
                AttrValue::F64(x) => ev.push_str(&format!("\"{x}\"")),
                AttrValue::Str(t) => {
                    ev.push('"');
                    ev.push_str(&json::escape(t));
                    ev.push('"');
                }
            }
        }
        ev.push_str("}}");
        push_event(&mut out, &mut first, &ev);
    }
    out.push_str("]}");
    out
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(event);
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events, metadata included.
    pub events: usize,
    /// Complete (`ph == "X"`) events.
    pub complete_events: usize,
    /// Complete events per category (span kind), sorted by name.
    pub by_category: Vec<(String, usize)>,
    /// Distinct lanes (`tid` values) seen on complete events.
    pub lanes: usize,
    /// Largest `ts + dur` over complete events, µs.
    pub span_end_us: u64,
}

/// Parses `text` as a Chrome trace and checks the shape every consumer
/// (Perfetto, the timeline, the golden tests) relies on: a `traceEvents`
/// array whose members carry a one-char `ph`, and for `X` events a nonempty
/// `name`, numeric nonnegative `ts`/`dur`, and numeric `pid`/`tid`.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    let mut cats: Vec<(String, usize)> = Vec::new();
    let mut lanes: Vec<u64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event {i}: bad {field}");
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("ph"))?;
        if ph.chars().count() != 1 {
            return Err(ctx("ph (must be one character)"));
        }
        if ph != "X" {
            continue;
        }
        stats.complete_events += 1;
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("name"))?;
        if name.is_empty() {
            return Err(ctx("name (empty)"));
        }
        let num = |field: &str| -> Result<f64, String> {
            ev.get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| ctx(field))
        };
        let ts = num("ts")?;
        let dur = num("dur")?;
        if ts < 0.0 || dur < 0.0 {
            return Err(ctx("ts/dur (negative)"));
        }
        num("pid")?;
        let tid = num("tid")?;
        stats.span_end_us = stats.span_end_us.max((ts + dur) as u64);
        let lane = tid as u64;
        if !lanes.contains(&lane) {
            lanes.push(lane);
        }
        if let Some(cat) = ev.get("cat").and_then(JsonValue::as_str) {
            match cats.iter_mut().find(|(c, _)| c == cat) {
                Some((_, n)) => *n += 1,
                None => cats.push((cat.to_string(), 1)),
            }
        }
    }
    cats.sort();
    stats.by_category = cats;
    stats.lanes = lanes.len();
    Ok(stats)
}

/// Per-expression counters extracted from a Chrome trace — the runtime side
/// of the sharing-conformance check (`uww analyze --sharing
/// --verify-against`). One entry per expression span, in timeline order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExprCounters {
    /// Target view name (`keys::VIEW`).
    pub view: String,
    /// `"comp"` or `"inst"` (`keys::EXPR_KIND`).
    pub kind: String,
    /// Measured `hash_tables_built` for the expression.
    pub hash_builds: u64,
    /// Measured `hash_tables_reused` for the expression.
    pub hash_reuses: u64,
    /// Measured `hash_tables_cross_reused` (strategy-scope cache hits).
    /// Zero when the trace predates the counter.
    pub cross_reuses: u64,
    /// Measured `operand_reads_cached` (strategy-scope raw-read hits).
    /// Zero when the trace predates the counter.
    pub cached_reads: u64,
}

/// Extracts the expression-level hash-table counters from a Chrome trace
/// produced by `uww run --trace-out`: every complete event whose category
/// is `expression`, ordered by start timestamp (sequential execution closes
/// expression spans in strategy order, so this is execution order).
pub fn expression_counters(text: &str) -> Result<Vec<ExprCounters>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    let mut out: Vec<(f64, ExprCounters)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        if ev.get("ph").and_then(JsonValue::as_str) != Some("X")
            || ev.get("cat").and_then(JsonValue::as_str) != Some("expression")
        {
            continue;
        }
        let args = ev
            .get("args")
            .ok_or_else(|| format!("event {i}: no args"))?;
        let text_of = |key: &str| -> Result<String, String> {
            args.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event {i}: expression span lacks {key}"))
        };
        let count_of = |key: &str| -> Result<u64, String> {
            args.get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("event {i}: expression span lacks {key}"))
        };
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: bad ts"))?;
        out.push((
            ts,
            ExprCounters {
                view: text_of(crate::span::keys::VIEW)?,
                kind: text_of(crate::span::keys::EXPR_KIND)?,
                hash_builds: count_of(crate::span::keys::HASH_BUILDS)?,
                hash_reuses: count_of(crate::span::keys::HASH_REUSES)?,
                // Optional so traces recorded before the strategy-scope
                // cache existed still parse.
                cross_reuses: args
                    .get(crate::span::keys::HASH_CROSS_REUSES)
                    .and_then(JsonValue::as_f64)
                    .map_or(0, |n| n as u64),
                cached_reads: args
                    .get(crate::span::keys::CACHED_READS)
                    .and_then(JsonValue::as_f64)
                    .map_or(0, |n| n as u64),
            },
        ));
    }
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    Ok(out.into_iter().map(|(_, c)| c).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn rec(id: u64, parent: u64, kind: SpanKind, name: &str, lane: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind,
            name: name.to_string(),
            lane,
            start_us: 10 * id,
            end_us: 10 * id + 5,
            attrs: vec![
                ("rows".to_string(), AttrValue::U64(7)),
                ("predicted_work".to_string(), AttrValue::F64(1.5)),
                ("view".to_string(), AttrValue::Str("Q3 \"x\"".to_string())),
            ],
        }
    }

    #[test]
    fn export_validates_and_counts_categories() {
        let spans = vec![
            rec(1, 0, SpanKind::Run, "run", 1),
            rec(2, 1, SpanKind::Expression, "Comp(Q3)", 1),
            rec(3, 2, SpanKind::Term, "d_LINEITEM", 2),
        ];
        let text = chrome_trace(&spans);
        let stats = validate_chrome_trace(&text).unwrap();
        assert_eq!(stats.complete_events, 3);
        assert_eq!(stats.lanes, 2);
        // 2 thread_name metadata events + 3 complete events.
        assert_eq!(stats.events, 5);
        assert!(stats
            .by_category
            .iter()
            .any(|(c, n)| c == "expression" && *n == 1));
        assert_eq!(stats.span_end_us, 35);
    }

    #[test]
    fn validator_rejects_broken_events() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"other\":1}").is_err());
        let missing_ts = r#"{"traceEvents":[{"ph":"X","name":"a","dur":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(missing_ts).is_err());
        let long_ph = r#"{"traceEvents":[{"ph":"XY","name":"a"}]}"#;
        assert!(validate_chrome_trace(long_ph).is_err());
    }

    #[test]
    fn nan_attr_degrades_to_string_but_stays_valid_json() {
        let mut r = rec(1, 0, SpanKind::Operator, "op", 1);
        r.attrs = vec![("x".to_string(), AttrValue::F64(f64::NAN))];
        let text = chrome_trace(&[r]);
        validate_chrome_trace(&text).unwrap();
        assert!(text.contains("\"NaN\""));
    }
}
