//! Partition critical-path derivation from span records.
//!
//! A partition-parallel fan-out opens one `Operator` span per partition
//! (named `"{label}[p{i}]"`, carrying a `partition` attribute). On a
//! single timeline the fan-out costs `Σ dur`; with perfect parallelism it
//! costs `max dur` — so each fan-out saves `Σ − max`, and the run's
//! critical path is its wall time minus the total saving.
//!
//! The subtlety is what "each fan-out" means. Keying the per-fan-out max
//! by *thread lane* is wrong twice over: work stealing migrates a chunk
//! to another worker's lane mid-fan-out (splitting one fan-out into
//! several groups, double-counting its max), and two *sequential*
//! fan-outs under the same parent (a split stage feeding a probe stage)
//! collapse into one group when keyed by parent alone, crediting the run
//! with savings it never had. The correct key is **task identity**: the
//! parent span plus the fan-out's base label with the `[pN]` suffix
//! stripped — stable across lanes and distinct across stages.

use crate::span::{keys, SpanKind, SpanRecord};

/// Strips the `[pN]` partition suffix from a fan-out span name:
/// `"probe hash[p3]"` → `"probe hash"`. Names without the suffix are
/// returned unchanged.
pub fn fan_out_label(name: &str) -> &str {
    if let Some(idx) = name.rfind("[p") {
        let inner = &name[idx + 2..];
        if let Some(stripped) = inner.strip_suffix(']') {
            if !stripped.is_empty() && stripped.bytes().all(|b| b.is_ascii_digit()) {
                return &name[..idx];
            }
        }
    }
    name
}

/// Derives the critical path of a run from its span records: `wall_us`
/// minus the parallelism saving of every per-partition fan-out, with
/// fan-outs keyed by task identity (parent span + base label), **not**
/// thread lane — see the module docs for why lane keying double-counts
/// under work stealing.
pub fn critical_path_us(wall_us: u64, spans: &[SpanRecord]) -> u64 {
    let mut groups: std::collections::BTreeMap<(u64, &str), (u64, u64)> =
        std::collections::BTreeMap::new();
    for s in spans {
        if s.kind != SpanKind::Operator || s.attr_u64(keys::PARTITION).is_none() {
            continue;
        }
        let entry = groups
            .entry((s.parent, fan_out_label(&s.name)))
            .or_insert((0, 0));
        entry.0 += s.dur_us();
        entry.1 = entry.1.max(s.dur_us());
    }
    let saved: u64 = groups.values().map(|(sum, max)| sum - max).sum();
    wall_us.saturating_sub(saved)
}

/// The number of distinct partition fan-outs in `spans`, keyed the same way
/// [`critical_path_us`] groups them (parent span + base label). The bench
/// reports this next to the derived critical path.
pub fn fan_out_count(spans: &[SpanRecord]) -> usize {
    let mut groups = std::collections::BTreeSet::new();
    for s in spans {
        if s.kind != SpanKind::Operator || s.attr_u64(keys::PARTITION).is_none() {
            continue;
        }
        groups.insert((s.parent, fan_out_label(&s.name)));
    }
    groups.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AttrValue;

    fn part_span(id: u64, parent: u64, name: &str, lane: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind: SpanKind::Operator,
            name: name.to_string(),
            lane,
            start_us: 0,
            end_us: dur,
            attrs: vec![(keys::PARTITION.to_string(), AttrValue::U64(0))],
        }
    }

    #[test]
    fn strips_partition_suffixes_only() {
        assert_eq!(fan_out_label("probe hash[p3]"), "probe hash");
        assert_eq!(fan_out_label("split[p12]"), "split");
        assert_eq!(fan_out_label("plain"), "plain");
        assert_eq!(fan_out_label("weird[px]"), "weird[px]");
        assert_eq!(fan_out_label("empty[p]"), "empty[p]");
    }

    #[test]
    fn sequential_fan_outs_under_one_parent_stay_separate() {
        // Two back-to-back fan-out stages under the same parent span:
        // split (30+30) then probe (20+20), wall 100. Keyed by parent
        // alone they merge into one group (sum 100, max 30 → saved 70,
        // critical 30) — the regression. Task-identity keying gives
        // saved (60−30)+(40−20)=50, critical 50.
        let spans = vec![
            part_span(2, 1, "split[p0]", 1, 30),
            part_span(3, 1, "split[p1]", 2, 30),
            part_span(4, 1, "probe[p0]", 1, 20),
            part_span(5, 1, "probe[p1]", 2, 20),
        ];
        assert_eq!(critical_path_us(100, &spans), 50);
    }

    #[test]
    fn stolen_chunks_on_foreign_lanes_stay_in_their_fan_out() {
        // One probe fan-out whose second chunk was stolen onto another
        // worker's lane. Keyed by lane the fan-out splits into two groups
        // with zero saving; task identity keeps it whole: saved 10.
        let spans = vec![
            part_span(2, 1, "probe[p0]", 1, 10),
            part_span(3, 1, "probe[p1]", 2, 40),
        ];
        assert_eq!(critical_path_us(60, &spans), 50);
    }

    #[test]
    fn non_partition_spans_and_empty_input_are_ignored() {
        let mut plain = part_span(2, 1, "scan", 1, 40);
        plain.attrs.clear();
        assert_eq!(critical_path_us(80, &[plain]), 80);
        assert_eq!(critical_path_us(80, &[]), 80);
    }

    #[test]
    fn fan_out_count_keys_by_task_identity() {
        // Two stages (split/probe) under one parent, probe's second chunk
        // stolen onto a foreign lane: 2 fan-outs, not 1 (parent keying)
        // and not 3 (lane keying).
        let spans = vec![
            part_span(2, 1, "split[p0]", 1, 30),
            part_span(3, 1, "split[p1]", 2, 30),
            part_span(4, 1, "probe[p0]", 1, 20),
            part_span(5, 1, "probe[p1]", 3, 20),
        ];
        assert_eq!(fan_out_count(&spans), 2);
        assert_eq!(fan_out_count(&[]), 0);
    }

    #[test]
    fn saving_never_underflows_wall() {
        // Fan-out savings measured on finer clocks than the wall figure
        // must clamp at zero, not wrap.
        let spans = vec![
            part_span(2, 1, "probe[p0]", 1, 50),
            part_span(3, 1, "probe[p1]", 2, 50),
        ];
        assert_eq!(critical_path_us(10, &spans), 0);
    }
}
