//! Trace-to-trace regression localization.
//!
//! Two Chrome traces of the same workload should tell the same story; when
//! a run regresses, the interesting question is *which operator* got
//! slower or started touching more rows. [`diff_traces`] aligns two traces
//! span-by-span using the span tree's stable identity — the path of span
//! names from the root (`window 3 / Comp(Q3; …) / d_LINEITEM / probe
//! hash[p1]`) — aggregates wall time, span counts, and row counters per
//! path, and reports every path whose deltas are significant.
//!
//! Two kinds of delta are distinguished deliberately. **Deterministic**
//! deltas — span counts and row counters — come straight from the
//! executor's meters and must be zero between runs of the same
//! seed/strategy; any difference is reported unconditionally. **Wall**
//! deltas are real time and therefore noisy; a path is only reported for
//! wall when the change clears both a relative threshold and an absolute
//! floor ([`DiffConfig`]), so a self-comparison or a re-run of an
//! identical workload produces an *empty* delta list — the property the
//! CI gate asserts.

use crate::json::{self, JsonValue};

/// Noise thresholds for wall-clock deltas.
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Minimum relative wall change (vs the larger side) to report.
    pub wall_rel_threshold: f64,
    /// Minimum absolute wall change in microseconds to report. Both
    /// gates must clear.
    pub wall_abs_floor_us: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            wall_rel_threshold: 0.25,
            wall_abs_floor_us: 5_000,
        }
    }
}

/// One aligned span path with per-side aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanDelta {
    /// Slash-joined span-name path from the root.
    pub path: String,
    /// Span kind (Chrome `cat`) of the path's spans.
    pub cat: String,
    /// Spans under this path, A then B.
    pub count: (u64, u64),
    /// Total wall microseconds, A then B.
    pub wall_us: (u64, u64),
    /// Total row counters (`rows`, falling back to `physical_rows`),
    /// A then B.
    pub rows: (u64, u64),
}

impl SpanDelta {
    /// Wall delta in microseconds (B − A).
    pub fn wall_delta_us(&self) -> i64 {
        self.wall_us.1 as i64 - self.wall_us.0 as i64
    }

    /// Row delta (B − A).
    pub fn rows_delta(&self) -> i64 {
        self.rows.1 as i64 - self.rows.0 as i64
    }

    /// True when the span *structure* differs (count mismatch, including
    /// paths present on only one side).
    pub fn structural(&self) -> bool {
        self.count.0 != self.count.1
    }

    /// True when the deterministic row counters differ.
    pub fn rows_differ(&self) -> bool {
        self.rows.0 != self.rows.1
    }
}

/// The aligned comparison of two traces.
#[derive(Clone, Debug, Default)]
pub struct TraceDiff {
    /// Complete spans in trace A.
    pub spans_a: usize,
    /// Complete spans in trace B.
    pub spans_b: usize,
    /// Distinct span paths across both traces.
    pub paths: usize,
    /// Significant deltas, deterministic differences first, then by
    /// wall-delta magnitude.
    pub deltas: Vec<SpanDelta>,
}

impl TraceDiff {
    /// True when nothing significant changed between the traces.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// True when the traces agree on every deterministic quantity (span
    /// structure and row counters) — wall noise aside.
    pub fn deterministic_match(&self) -> bool {
        self.deltas
            .iter()
            .all(|d| !d.structural() && !d.rows_differ())
    }

    /// Machine-readable JSON for CI gating.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"spans_a\":{},\"spans_b\":{},\"paths\":{},\"deterministic_match\":{},\
             \"deltas\":[",
            self.spans_a,
            self.spans_b,
            self.paths,
            self.deterministic_match(),
        );
        for (i, d) in self.deltas.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"path\":\"{}\",\"cat\":\"{}\",\"count_a\":{},\"count_b\":{},\
                 \"wall_us_a\":{},\"wall_us_b\":{},\"wall_delta_us\":{},\"rows_a\":{},\
                 \"rows_b\":{},\"rows_delta\":{},\"structural\":{}}}",
                json::escape(&d.path),
                json::escape(&d.cat),
                d.count.0,
                d.count.1,
                d.wall_us.0,
                d.wall_us.1,
                d.wall_delta_us(),
                d.rows.0,
                d.rows.1,
                d.rows_delta(),
                d.structural(),
            ));
        }
        s.push_str("]}");
        s
    }
}

struct Node {
    id: u64,
    parent: u64,
    name: String,
    cat: String,
    dur_us: u64,
    rows: u64,
}

fn nodes_of(text: &str) -> Result<Vec<Node>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    let mut out = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        if ev.get("ph").and_then(JsonValue::as_str) != Some("X") {
            continue;
        }
        let args = ev
            .get("args")
            .ok_or_else(|| format!("event {i}: no args"))?;
        let num = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("event {i}: bad {key}"))
        };
        out.push(Node {
            id: num(args, "span_id")?,
            parent: num(args, "parent_id")?,
            name: ev
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("event {i}: bad name"))?
                .to_string(),
            cat: ev
                .get("cat")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            dur_us: num(ev, "dur")?,
            rows: args
                .get(crate::span::keys::ROWS)
                .or_else(|| args.get(crate::span::keys::PHYSICAL_ROWS))
                .and_then(JsonValue::as_f64)
                .map_or(0, |n| n as u64),
        })
    }
    Ok(out)
}

/// Aggregates one trace's spans by identity path.
fn aggregate(nodes: &[Node]) -> std::collections::BTreeMap<String, (String, u64, u64, u64)> {
    let by_id: std::collections::HashMap<u64, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
    let mut out: std::collections::BTreeMap<String, (String, u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for n in nodes {
        let mut parts = vec![n.name.as_str()];
        let mut cur = n.parent;
        // Walk to the root; depth-bounded so a malformed cyclic trace
        // cannot hang the differ.
        for _ in 0..64 {
            match by_id.get(&cur) {
                Some(&i) => {
                    parts.push(nodes[i].name.as_str());
                    cur = nodes[i].parent;
                }
                None => break,
            }
        }
        parts.reverse();
        let path = parts.join(" / ");
        let e = out.entry(path).or_insert_with(|| (n.cat.clone(), 0, 0, 0));
        e.1 += 1;
        e.2 += n.dur_us;
        e.3 += n.rows;
    }
    out
}

/// Aligns two Chrome traces and reports significant per-path deltas —
/// see the module docs for the significance rules.
pub fn diff_traces(a_text: &str, b_text: &str, cfg: &DiffConfig) -> Result<TraceDiff, String> {
    let a_nodes = nodes_of(a_text).map_err(|e| format!("trace A: {e}"))?;
    let b_nodes = nodes_of(b_text).map_err(|e| format!("trace B: {e}"))?;
    let a = aggregate(&a_nodes);
    let b = aggregate(&b_nodes);
    let mut paths: Vec<&String> = a.keys().chain(b.keys()).collect();
    paths.sort();
    paths.dedup();
    let mut diff = TraceDiff {
        spans_a: a_nodes.len(),
        spans_b: b_nodes.len(),
        paths: paths.len(),
        deltas: Vec::new(),
    };
    for path in paths {
        let ea = a.get(path);
        let eb = b.get(path);
        let d = SpanDelta {
            path: path.clone(),
            cat: ea.or(eb).map(|e| e.0.clone()).unwrap_or_default(),
            count: (ea.map_or(0, |e| e.1), eb.map_or(0, |e| e.1)),
            wall_us: (ea.map_or(0, |e| e.2), eb.map_or(0, |e| e.2)),
            rows: (ea.map_or(0, |e| e.3), eb.map_or(0, |e| e.3)),
        };
        let wall_delta = d.wall_delta_us().unsigned_abs();
        let wall_base = d.wall_us.0.max(d.wall_us.1).max(1);
        let wall_significant = wall_delta >= cfg.wall_abs_floor_us
            && wall_delta as f64 / wall_base as f64 >= cfg.wall_rel_threshold;
        if d.structural() || d.rows_differ() || wall_significant {
            diff.deltas.push(d);
        }
    }
    // Deterministic differences lead; within each class, biggest wall
    // movement first.
    diff.deltas.sort_by(|x, y| {
        let det = |d: &SpanDelta| !(d.structural() || d.rows_differ());
        det(x)
            .cmp(&det(y))
            .then(y.wall_delta_us().abs().cmp(&x.wall_delta_us().abs()))
    });
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::chrome_trace;
    use crate::span::{keys, AttrValue, SpanKind, SpanRecord};

    fn rec(id: u64, parent: u64, kind: SpanKind, name: &str, dur: u64, rows: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind,
            name: name.to_string(),
            lane: 1,
            start_us: 0,
            end_us: dur,
            attrs: vec![(keys::ROWS.to_string(), AttrValue::U64(rows))],
        }
    }

    fn trace(straggler_us: u64, probe_rows: u64) -> String {
        chrome_trace(&[
            rec(2, 1, SpanKind::Expression, "Comp(Q3)", 90, 0),
            rec(3, 2, SpanKind::Operator, "probe[p0]", 20, probe_rows),
            rec(
                4,
                2,
                SpanKind::Operator,
                "probe[p1]",
                straggler_us,
                probe_rows,
            ),
            rec(1, 0, SpanKind::Run, "window 0", 100 + straggler_us, 0),
        ])
    }

    #[test]
    fn self_comparison_is_empty() {
        let t = trace(20, 50);
        let d = diff_traces(&t, &t, &DiffConfig::default()).unwrap();
        assert!(d.is_empty(), "self diff must be empty: {:?}", d.deltas);
        assert!(d.deterministic_match());
        assert_eq!(d.spans_a, d.spans_b);
    }

    #[test]
    fn wall_regression_localizes_to_the_operator_span() {
        // Same structure and rows, but partition 1 straggles 40ms in B.
        let a = trace(20, 50);
        let b = trace(40_020, 50);
        let d = diff_traces(&a, &b, &DiffConfig::default()).unwrap();
        assert!(!d.is_empty());
        assert!(
            d.deterministic_match(),
            "wall-only change is not structural"
        );
        // Every reported path lies on the straggler's ancestry chain —
        // the regression is localized, not smeared across siblings.
        for delta in &d.deltas {
            assert!("window 0 / Comp(Q3) / probe[p1]".starts_with(&delta.path));
        }
        let op = d
            .deltas
            .iter()
            .find(|x| x.path.ends_with("probe[p1]"))
            .expect("operator span must be localized");
        assert_eq!(op.cat, "operator");
        assert!(op.wall_delta_us() >= 40_000);
    }

    #[test]
    fn row_deltas_are_reported_regardless_of_wall_noise() {
        let a = trace(20, 50);
        let b = trace(20, 51);
        let d = diff_traces(&a, &b, &DiffConfig::default()).unwrap();
        assert!(!d.deterministic_match());
        assert!(d
            .deltas
            .iter()
            .any(|x| x.rows_differ() && x.rows_delta() == 1));
    }

    #[test]
    fn missing_spans_are_structural() {
        let a = trace(20, 50);
        let b = chrome_trace(&[
            rec(2, 1, SpanKind::Expression, "Comp(Q3)", 90, 0),
            rec(3, 2, SpanKind::Operator, "probe[p0]", 20, 50),
            rec(1, 0, SpanKind::Run, "window 0", 120, 0),
        ]);
        let d = diff_traces(&a, &b, &DiffConfig::default()).unwrap();
        let gone = d
            .deltas
            .iter()
            .find(|x| x.path.ends_with("probe[p1]"))
            .expect("missing span must surface");
        assert!(gone.structural());
        assert_eq!(gone.count, (1, 0));
        // Structural deltas sort ahead of wall-only ones.
        assert!(d.deltas[0].structural() || d.deltas[0].rows_differ());
    }

    #[test]
    fn json_output_parses_and_carries_the_verdict() {
        let a = trace(20, 50);
        let b = trace(20, 51);
        let d = diff_traces(&a, &b, &DiffConfig::default()).unwrap();
        let doc = json::parse(&d.to_json()).unwrap();
        assert_eq!(
            doc.get("deterministic_match"),
            Some(&JsonValue::Bool(false))
        );
        assert!(!doc
            .get("deltas")
            .and_then(JsonValue::as_array)
            .unwrap()
            .is_empty());
        assert!(diff_traces("not json", &a, &DiffConfig::default()).is_err());
    }
}
