//! Cost-model drift detection.
//!
//! The scheduler steers every window off the planner's predicted linear
//! work and the controller's EWMA estimates (arrival rate λ, cost per
//! event c). Those estimates are only trustworthy while the workload they
//! were calibrated on still resembles the workload being served; nothing
//! in the paper's §4 validation covers a *moving* distribution. This
//! module watches the residuals online: for each completed window it
//! folds the relative error between what the model predicted and what the
//! executor measured into a per-channel EWMA, and flags a channel once the
//! smoothed residual stays beyond a threshold for a sustained run of
//! windows. One noisy window never flags; a real mis-calibration (say the
//! service-time constant drifting 2×) flags within a handful of windows
//! and clears again once the estimate is re-calibrated.
//!
//! The tracker is pure observation: it never feeds back into scheduling
//! by itself. The optional feedback path is [`Recalibrator`], an EWMA of
//! the measured/predicted work ratio the scheduler can (opt-in,
//! `--recalibrate`) multiply into the controller's predicted-work
//! observations — deterministic, since it is built only from planner
//! predictions and measured row counts, never wall time.

/// Tuning for one residual channel (and the tracker's default for all).
#[derive(Clone, Copy, Debug)]
pub struct DriftConfig {
    /// EWMA smoothing factor for the residual (0 < α ≤ 1).
    pub alpha: f64,
    /// Absolute smoothed relative error beyond which a window counts as
    /// mis-calibrated.
    pub threshold: f64,
    /// Consecutive beyond-threshold windows required before flagging.
    pub sustain: u32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            alpha: 0.35,
            threshold: 0.2,
            sustain: 3,
        }
    }
}

/// One channel: an EWMA of signed relative errors plus the sustained-run
/// flag logic.
#[derive(Clone, Copy, Debug)]
pub struct ResidualEwma {
    cfg: DriftConfig,
    ewma: f64,
    primed: bool,
    beyond: u32,
    flagged: bool,
}

impl ResidualEwma {
    /// A channel with no observations yet (unflagged, residual 0).
    pub fn new(cfg: DriftConfig) -> ResidualEwma {
        ResidualEwma {
            cfg,
            ewma: 0.0,
            primed: false,
            beyond: 0,
            flagged: false,
        }
    }

    /// Folds one window's signed relative error in and re-evaluates the
    /// flag. Non-finite samples are ignored (a zero-denominator window
    /// says nothing about calibration).
    pub fn observe(&mut self, rel_err: f64) {
        if !rel_err.is_finite() {
            return;
        }
        if self.primed {
            self.ewma = self.cfg.alpha * rel_err + (1.0 - self.cfg.alpha) * self.ewma;
        } else {
            self.ewma = rel_err;
            self.primed = true;
        }
        if self.ewma.abs() > self.cfg.threshold {
            self.beyond = self.beyond.saturating_add(1);
            if self.beyond >= self.cfg.sustain {
                self.flagged = true;
            }
        } else {
            self.beyond = 0;
            self.flagged = false;
        }
    }

    /// The smoothed signed relative error.
    pub fn residual(&self) -> f64 {
        self.ewma
    }

    /// True while mis-calibration has been sustained for `sustain`
    /// consecutive windows and the residual has not yet returned under
    /// threshold.
    pub fn flagged(&self) -> bool {
        self.flagged
    }
}

/// One completed window's model-vs-measurement facts, as the scheduler
/// (or a ledger replay) sees them.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriftObservation {
    /// Planner-predicted linear work (after any recalibration the
    /// scheduler applied — residuals then measure the *effective* model).
    pub predicted_work: f64,
    /// Measured linear work.
    pub measured_work: f64,
    /// Events in the batch.
    pub events: u64,
    /// Ticks the window accumulated for.
    pub window_ticks: u64,
    /// The controller's smoothed cost-per-event estimate.
    pub est_cost_per_event: f64,
    /// The controller's smoothed arrival-rate estimate (events/tick).
    pub est_arrival_rate: f64,
}

/// Which channels are currently flagged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriftFlags {
    /// Predicted-vs-measured linear work.
    pub work: bool,
    /// Controller cost-per-event estimate vs the measured work per event.
    pub cost: bool,
    /// Controller arrival-rate estimate vs the window's observed rate.
    pub rate: bool,
}

impl DriftFlags {
    /// True when any channel is flagged.
    pub fn any(&self) -> bool {
        self.work || self.cost || self.rate
    }
}

/// The drift detector: one residual channel per model quantity.
#[derive(Clone, Copy, Debug)]
pub struct DriftTracker {
    work: ResidualEwma,
    cost: ResidualEwma,
    rate: ResidualEwma,
    windows: u64,
}

impl DriftTracker {
    /// A tracker with the given per-channel tuning.
    pub fn new(cfg: DriftConfig) -> DriftTracker {
        DriftTracker {
            work: ResidualEwma::new(cfg),
            cost: ResidualEwma::new(cfg),
            rate: ResidualEwma::new(cfg),
            windows: 0,
        }
    }

    /// Folds one completed window in. Zero-event windows are skipped —
    /// they carry no calibration information (mirroring the controller,
    /// which also ignores them).
    pub fn observe(&mut self, o: &DriftObservation) {
        if o.events == 0 {
            return;
        }
        self.windows += 1;
        let work_err = (o.measured_work - o.predicted_work) / o.predicted_work.abs().max(1.0);
        self.work.observe(work_err);
        let measured_cpe = o.measured_work / o.events as f64;
        let cost_err = (measured_cpe - o.est_cost_per_event) / o.est_cost_per_event.abs().max(1.0);
        self.cost.observe(cost_err);
        let sample_rate = o.events as f64 / o.window_ticks.max(1) as f64;
        let rate_err = (sample_rate - o.est_arrival_rate) / o.est_arrival_rate.abs().max(1e-9);
        self.rate.observe(rate_err);
    }

    /// Windows observed (zero-event windows excluded).
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Smoothed relative error of measured vs predicted linear work.
    pub fn work_residual(&self) -> f64 {
        self.work.residual()
    }

    /// Smoothed relative error of measured work/event vs the controller's
    /// cost-per-event estimate.
    pub fn cost_residual(&self) -> f64 {
        self.cost.residual()
    }

    /// Smoothed relative error of the window's arrival rate vs the
    /// controller's EWMA estimate.
    pub fn rate_residual(&self) -> f64 {
        self.rate.residual()
    }

    /// Current flag state of all channels.
    pub fn flags(&self) -> DriftFlags {
        DriftFlags {
            work: self.work.flagged(),
            cost: self.cost.flagged(),
            rate: self.rate.flagged(),
        }
    }
}

impl Default for DriftTracker {
    fn default() -> Self {
        DriftTracker::new(DriftConfig::default())
    }
}

/// EWMA of the measured/predicted work ratio — the `--recalibrate`
/// feedback hook. The scheduler multiplies [`factor`](Recalibrator::factor)
/// into the raw prediction before the controller observes it, so a
/// persistently 2×-wrong cost constant converges back onto the measured
/// truth within a few windows. Built from row counts only: deterministic,
/// but it *does* change the window schedule, hence opt-in.
#[derive(Clone, Copy, Debug)]
pub struct Recalibrator {
    gamma: f64,
    alpha: f64,
    primed: bool,
}

impl Recalibrator {
    /// A recalibrator with smoothing factor `alpha`; `factor()` is `1.0`
    /// until the first observation.
    pub fn new(alpha: f64) -> Recalibrator {
        Recalibrator {
            gamma: 1.0,
            alpha,
            primed: false,
        }
    }

    /// Folds one window's measured/raw-predicted work ratio in.
    pub fn observe(&mut self, predicted_raw: f64, measured: f64) {
        let ratio = measured / predicted_raw.abs().max(1e-9);
        if !ratio.is_finite() {
            return;
        }
        if self.primed {
            self.gamma = self.alpha * ratio + (1.0 - self.alpha) * self.gamma;
        } else {
            self.gamma = ratio;
            self.primed = true;
        }
    }

    /// The multiplicative correction to apply to raw predictions.
    pub fn factor(&self) -> f64 {
        self.gamma
    }
}

impl Default for Recalibrator {
    fn default() -> Self {
        Recalibrator::new(0.35)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stationary_window(i: u64) -> DriftObservation {
        // A perfectly calibrated, mildly noisy workload: measured work
        // wobbles ±4% around prediction, deterministic in `i`.
        let predicted = 1000.0;
        let noise = 1.0 + 0.04 * (((i * 7919) % 13) as f64 - 6.0) / 6.0;
        DriftObservation {
            predicted_work: predicted,
            measured_work: predicted * noise,
            events: 50,
            window_ticks: 10,
            est_cost_per_event: predicted * noise / 50.0,
            est_arrival_rate: 5.0,
        }
    }

    #[test]
    fn stationary_workload_never_flags() {
        let mut t = DriftTracker::default();
        for i in 0..64 {
            t.observe(&stationary_window(i));
            assert!(!t.flags().any(), "spurious flag at window {i}: {t:?}");
        }
        assert_eq!(t.windows(), 64);
        assert!(t.work_residual().abs() < 0.1);
    }

    #[test]
    fn cost_perturbation_flags_within_five_windows() {
        let mut t = DriftTracker::default();
        for i in 0..20 {
            t.observe(&stationary_window(i));
        }
        assert!(!t.flags().any());
        // The model's cost constant is suddenly 2× wrong: predictions are
        // half of what actually runs.
        let mut flagged_at = None;
        for i in 0..10 {
            t.observe(&DriftObservation {
                predicted_work: 1000.0,
                measured_work: 2000.0,
                events: 50,
                window_ticks: 10,
                est_cost_per_event: 20.0,
                est_arrival_rate: 5.0,
            });
            if t.flags().work && flagged_at.is_none() {
                flagged_at = Some(i + 1);
            }
        }
        let n = flagged_at.expect("2x perturbation must flag");
        assert!(n <= 5, "flagged only after {n} windows");
        assert!(t.flags().cost, "cost channel should flag too");
    }

    #[test]
    fn recalibration_converges_residual_back_under_threshold() {
        let cfg = DriftConfig::default();
        let mut t = DriftTracker::new(cfg);
        let mut cal = Recalibrator::default();
        // Perturbed model, with the feedback hook active: the tracker sees
        // the *calibrated* prediction, exactly as the scheduler feeds it.
        for _ in 0..30 {
            let raw = 1000.0;
            let measured = 2000.0;
            let calibrated = raw * cal.factor();
            t.observe(&DriftObservation {
                predicted_work: calibrated,
                measured_work: measured,
                events: 50,
                window_ticks: 10,
                est_cost_per_event: calibrated / 50.0,
                est_arrival_rate: 5.0,
            });
            cal.observe(raw, measured);
        }
        assert!((cal.factor() - 2.0).abs() < 0.05, "gamma={}", cal.factor());
        assert!(
            t.work_residual().abs() < cfg.threshold,
            "residual EWMA must converge under threshold, got {}",
            t.work_residual()
        );
        assert!(!t.flags().work, "flag must clear after convergence");
    }

    #[test]
    fn flags_clear_when_residual_returns_under_threshold() {
        let mut ch = ResidualEwma::new(DriftConfig {
            alpha: 1.0,
            threshold: 0.2,
            sustain: 2,
        });
        ch.observe(0.5);
        assert!(!ch.flagged(), "one bad window must not flag");
        ch.observe(0.5);
        assert!(ch.flagged());
        ch.observe(0.0);
        assert!(!ch.flagged());
        assert_eq!(ch.residual(), 0.0);
    }

    #[test]
    fn zero_event_windows_and_nonfinite_samples_are_ignored() {
        let mut t = DriftTracker::default();
        t.observe(&DriftObservation::default());
        assert_eq!(t.windows(), 0);
        let mut ch = ResidualEwma::new(DriftConfig::default());
        ch.observe(f64::NAN);
        assert_eq!(ch.residual(), 0.0);
        let mut cal = Recalibrator::default();
        cal.observe(0.0, f64::INFINITY);
        assert_eq!(cal.factor(), 1.0);
    }
}
