//! Minimal JSON parser.
//!
//! The workspace builds offline (no serde); this recursive-descent parser
//! covers the full JSON grammar and exists so the Chrome-trace validator and
//! the golden tests can check exporter output without external crates. It is
//! a validator's parser: strict about structure, not tuned for speed.

use std::fmt;

/// A parsed JSON value. Objects preserve key order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects; `None` on other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

/// Parses `text` as a single JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not reassembled — the
                            // exporter never emits them; map lone units to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, -2.5, 3e2], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "\"abc", "{\"a\" 1}", "01x", "[1] trailing"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_round_trip_through_escape() {
        let original = "tab\there \"quoted\" \\slash\u{0007}";
        let quoted = format!("\"{}\"", escape(original));
        let v = parse(&quoted).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }
}
