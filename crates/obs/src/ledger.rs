//! The window-health flight-recorder ledger.
//!
//! One JSONL line per completed update window, written by the continuous
//! scheduler *after* the window's WAL commit — so the ledger is crash
//! consistent by construction: a window that crashed mid-execution has a
//! WAL directory (recovery finishes it from the journal) but **no** ledger
//! record, and the set difference between WAL windows and ledger windows
//! is exactly the crash points. Each record carries everything §4-style
//! metric validation needs to re-litigate a run after the fact: the full
//! work meter, per-expression predicted-vs-measured work, staleness, the
//! window-policy inputs (EWMA λ, cost-per-event c, service rate μ, the
//! chosen next window), carry/sharing counters, cache hit rate, and the
//! partition critical path.
//!
//! The schema is versioned ([`LEDGER_VERSION`]); [`validate_ledger`]
//! checks every line against the internal-consistency contract (monotone
//! windows, meter arithmetic, per-expression sums) so CI can gate on a
//! freshly produced ledger the same way it gates on traces.

use crate::json::{self, JsonValue};
use std::io::Write;
use std::path::Path;

/// Current ledger schema version; bump on any field change.
pub const LEDGER_VERSION: u64 = 1;

/// The full work meter of one window, flattened to plain counters (this
/// crate sits below `uww-relational`, so it mirrors `WorkMeter` field by
/// field rather than depending on it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerMeter {
    /// Operand rows scanned (logical reads).
    pub operand_rows_scanned: u64,
    /// Rows installed into views.
    pub rows_installed: u64,
    /// Intermediate rows emitted.
    pub rows_emitted: u64,
    /// Maintenance terms evaluated.
    pub terms_evaluated: u64,
    /// `Comp` expressions executed.
    pub comp_expressions: u64,
    /// `Inst` expressions executed.
    pub inst_expressions: u64,
    /// Rows the executor physically touched.
    pub physical_rows_touched: u64,
    /// Hash tables built from scratch.
    pub hash_tables_built: u64,
    /// Hash tables served from a cache (any scope).
    pub hash_tables_reused: u64,
    /// Hash tables served from an earlier expression's build.
    pub hash_tables_cross_reused: u64,
    /// Raw operand reads served from the strategy-scope cache.
    pub operand_reads_cached: u64,
}

impl LedgerMeter {
    /// The paper's linear work metric: scanned + installed.
    pub fn linear_work(&self) -> u64 {
        self.operand_rows_scanned + self.rows_installed
    }
}

/// One expression's slice of a window: predicted vs measured.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerExpr {
    /// Rendered update expression, e.g. `Comp(Q3; {LINEITEM})`.
    pub expr: String,
    /// `"comp"` or `"inst"`.
    pub kind: String,
    /// Target view name.
    pub view: String,
    /// Planner-predicted linear work for this expression.
    pub predicted: f64,
    /// Measured operand rows scanned.
    pub scanned: u64,
    /// Measured rows installed.
    pub installed: u64,
    /// Measured physical rows touched.
    pub physical: u64,
    /// Wall-clock microseconds spent in this expression.
    pub wall_us: u64,
}

/// One window's flight-recorder record (one JSONL line).
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerRecord {
    /// Schema version ([`LEDGER_VERSION`]).
    pub version: u64,
    /// Window index (0-based, global across crash resume).
    pub window: u64,
    /// Tick the batch was cut at.
    pub cut: u64,
    /// Ticks the window accumulated for.
    pub window_ticks: u64,
    /// Tick the install completed at.
    pub done: u64,
    /// Events in the batch.
    pub events: u64,
    /// Mean event staleness in ticks.
    pub staleness: f64,
    /// Window-cut policy name (`fixed`/`greedy`/`adaptive`).
    pub policy: String,
    /// Controller's EWMA arrival rate λ after observing this window.
    pub arrival_rate: f64,
    /// Controller's EWMA cost-per-event c after observing this window.
    pub cost_per_event: f64,
    /// Effective service rate μ (per-worker rate × partitions).
    pub service_rate: f64,
    /// Window span the controller chose for the *next* cut.
    pub next_window: u64,
    /// Recalibration factor γ applied to predictions (1.0 when off).
    pub calibration: f64,
    /// Planner-predicted linear work for the window (raw, uncalibrated).
    pub predicted_work: f64,
    /// Measured linear work.
    pub measured_work: u64,
    /// Full measured work meter.
    pub meter: LedgerMeter,
    /// Per-expression predicted-vs-measured breakdown.
    pub per_expr: Vec<LedgerExpr>,
    /// Strategy-cache tables carried in from the previous window.
    pub carry_in_tables: u64,
    /// Strategy-cache raw operands carried in from the previous window.
    pub carry_in_raws: u64,
    /// Measured cross-expression hash-table reuses.
    pub cross_reuses: u64,
    /// Measured strategy-cache raw-read hits.
    pub cached_reads: u64,
    /// Measured hits on tables carried from the previous window.
    pub carried_table_hits: u64,
    /// Measured hits on raw operands carried from the previous window.
    pub carried_raw_hits: u64,
    /// True when the sharing counters matched the static plan exactly.
    pub conformant: bool,
    /// Hash-table cache hit rate: reuses / (builds + reuses), 0 if none.
    pub cache_hit_rate: f64,
    /// Configured partition count.
    pub partitions: u64,
    /// Wall-clock microseconds for the window's execution.
    pub wall_us: u64,
    /// Partition critical path in microseconds (wall minus the time saved
    /// by fan-out parallelism); equals `wall_us` when untraced.
    pub critical_path_us: u64,
    /// This window's WAL directory, when journaling.
    pub wal_dir: Option<String>,
}

fn num(x: f64) -> String {
    if x.is_finite() {
        x.to_string()
    } else {
        "0".to_string()
    }
}

impl LedgerRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"v\":{},\"window\":{},\"cut\":{},\"window_ticks\":{},\"done\":{},\
             \"events\":{},\"staleness\":{},\"policy\":\"{}\",\"arrival_rate\":{},\
             \"cost_per_event\":{},\"service_rate\":{},\"next_window\":{},\
             \"calibration\":{},\"predicted_work\":{},\"measured_work\":{}",
            self.version,
            self.window,
            self.cut,
            self.window_ticks,
            self.done,
            self.events,
            num(self.staleness),
            json::escape(&self.policy),
            num(self.arrival_rate),
            num(self.cost_per_event),
            num(self.service_rate),
            self.next_window,
            num(self.calibration),
            num(self.predicted_work),
            self.measured_work,
        ));
        let m = &self.meter;
        s.push_str(&format!(
            ",\"meter\":{{\"scanned\":{},\"installed\":{},\"emitted\":{},\"terms\":{},\
             \"comps\":{},\"insts\":{},\"physical\":{},\"hash_builds\":{},\
             \"hash_reuses\":{},\"cross_reuses\":{},\"cached_reads\":{}}}",
            m.operand_rows_scanned,
            m.rows_installed,
            m.rows_emitted,
            m.terms_evaluated,
            m.comp_expressions,
            m.inst_expressions,
            m.physical_rows_touched,
            m.hash_tables_built,
            m.hash_tables_reused,
            m.hash_tables_cross_reused,
            m.operand_reads_cached,
        ));
        s.push_str(",\"per_expr\":[");
        for (i, e) in self.per_expr.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"expr\":\"{}\",\"kind\":\"{}\",\"view\":\"{}\",\"predicted\":{},\
                 \"scanned\":{},\"installed\":{},\"physical\":{},\"wall_us\":{}}}",
                json::escape(&e.expr),
                json::escape(&e.kind),
                json::escape(&e.view),
                num(e.predicted),
                e.scanned,
                e.installed,
                e.physical,
                e.wall_us,
            ));
        }
        s.push(']');
        s.push_str(&format!(
            ",\"carry_in_tables\":{},\"carry_in_raws\":{},\"cross_reuses\":{},\
             \"cached_reads\":{},\"carried_table_hits\":{},\"carried_raw_hits\":{},\
             \"conformant\":{},\"cache_hit_rate\":{},\"partitions\":{},\"wall_us\":{},\
             \"critical_path_us\":{}",
            self.carry_in_tables,
            self.carry_in_raws,
            self.cross_reuses,
            self.cached_reads,
            self.carried_table_hits,
            self.carried_raw_hits,
            self.conformant,
            num(self.cache_hit_rate),
            self.partitions,
            self.wall_us,
            self.critical_path_us,
        ));
        match &self.wal_dir {
            Some(d) => s.push_str(&format!(",\"wal_dir\":\"{}\"}}", json::escape(d))),
            None => s.push_str(",\"wal_dir\":null}"),
        }
        s
    }

    /// Parses one JSONL line back into a record.
    pub fn parse_line(line: &str) -> Result<LedgerRecord, String> {
        let doc = json::parse(line).map_err(|e| e.to_string())?;
        let u = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("ledger record lacks numeric {key}"))
        };
        let f = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("ledger record lacks numeric {key}"))
        };
        let meter_doc = doc.get("meter").ok_or("ledger record lacks meter")?;
        let mu = |key: &str| -> Result<u64, String> {
            meter_doc
                .get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("ledger meter lacks {key}"))
        };
        let meter = LedgerMeter {
            operand_rows_scanned: mu("scanned")?,
            rows_installed: mu("installed")?,
            rows_emitted: mu("emitted")?,
            terms_evaluated: mu("terms")?,
            comp_expressions: mu("comps")?,
            inst_expressions: mu("insts")?,
            physical_rows_touched: mu("physical")?,
            hash_tables_built: mu("hash_builds")?,
            hash_tables_reused: mu("hash_reuses")?,
            hash_tables_cross_reused: mu("cross_reuses")?,
            operand_reads_cached: mu("cached_reads")?,
        };
        let mut per_expr = Vec::new();
        for (i, e) in doc
            .get("per_expr")
            .and_then(JsonValue::as_array)
            .ok_or("ledger record lacks per_expr array")?
            .iter()
            .enumerate()
        {
            let es = |key: &str| -> Result<String, String> {
                e.get(key)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("per_expr[{i}] lacks {key}"))
            };
            let eu = |key: &str| -> Result<u64, String> {
                e.get(key)
                    .and_then(JsonValue::as_f64)
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("per_expr[{i}] lacks {key}"))
            };
            per_expr.push(LedgerExpr {
                expr: es("expr")?,
                kind: es("kind")?,
                view: es("view")?,
                predicted: e
                    .get("predicted")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("per_expr[{i}] lacks predicted"))?,
                scanned: eu("scanned")?,
                installed: eu("installed")?,
                physical: eu("physical")?,
                wall_us: eu("wall_us")?,
            });
        }
        Ok(LedgerRecord {
            version: u("v")?,
            window: u("window")?,
            cut: u("cut")?,
            window_ticks: u("window_ticks")?,
            done: u("done")?,
            events: u("events")?,
            staleness: f("staleness")?,
            policy: doc
                .get("policy")
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or("ledger record lacks policy")?,
            arrival_rate: f("arrival_rate")?,
            cost_per_event: f("cost_per_event")?,
            service_rate: f("service_rate")?,
            next_window: u("next_window")?,
            calibration: f("calibration")?,
            predicted_work: f("predicted_work")?,
            measured_work: u("measured_work")?,
            meter,
            per_expr,
            carry_in_tables: u("carry_in_tables")?,
            carry_in_raws: u("carry_in_raws")?,
            cross_reuses: u("cross_reuses")?,
            cached_reads: u("cached_reads")?,
            carried_table_hits: u("carried_table_hits")?,
            carried_raw_hits: u("carried_raw_hits")?,
            conformant: matches!(doc.get("conformant"), Some(JsonValue::Bool(true))),
            cache_hit_rate: f("cache_hit_rate")?,
            partitions: u("partitions")?,
            wall_us: u("wall_us")?,
            critical_path_us: u("critical_path_us")?,
            wal_dir: match doc.get("wal_dir") {
                Some(JsonValue::Str(s)) => Some(s.clone()),
                _ => None,
            },
        })
    }
}

/// Appends one record to the ledger file (created if missing). When
/// `sync`, the file is fsynced after the write — pair with the WAL's
/// `FsyncPolicy::Always` so the ledger is as durable as the journal it
/// annotates.
pub fn append_record(path: &Path, rec: &LedgerRecord, sync: bool) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut line = rec.to_json_line();
    line.push('\n');
    file.write_all(line.as_bytes())?;
    file.flush()?;
    if sync {
        file.sync_all()?;
    }
    Ok(())
}

/// Parses a full ledger document (one JSON object per line; blank lines
/// ignored) without consistency checks.
pub fn read_ledger(text: &str) -> Result<Vec<LedgerRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec =
            LedgerRecord::parse_line(line).map_err(|e| format!("ledger line {}: {e}", i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

/// Summary returned by [`validate_ledger`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LedgerSummary {
    /// Records in the ledger.
    pub records: usize,
    /// First and last window index.
    pub windows: (u64, u64),
    /// Total events across all windows.
    pub events: u64,
    /// Total planner-predicted linear work.
    pub predicted_work: f64,
    /// Total measured linear work.
    pub measured_work: u64,
    /// Event-weighted mean staleness in ticks.
    pub mean_staleness: f64,
    /// Total wall-clock microseconds across windows.
    pub wall_us: u64,
    /// True when every window's sharing counters matched the plan.
    pub conformant: bool,
}

/// Parses and consistency-checks a ledger: known schema version on every
/// line, strictly increasing window indices, monotone virtual time,
/// nonempty batches, finite staleness, meter arithmetic
/// (`linear_work == measured_work`), and per-expression sums matching the
/// window meter.
pub fn validate_ledger(text: &str) -> Result<LedgerSummary, String> {
    let records = read_ledger(text)?;
    if records.is_empty() {
        return Err("empty ledger".to_string());
    }
    let mut sum = LedgerSummary {
        records: records.len(),
        windows: (records[0].window, records[0].window),
        conformant: true,
        ..LedgerSummary::default()
    };
    let mut weighted_staleness = 0.0;
    let mut prev: Option<&LedgerRecord> = None;
    for r in &records {
        let ctx = |msg: &str| format!("window {}: {msg}", r.window);
        if r.version != LEDGER_VERSION {
            return Err(ctx(&format!(
                "unsupported schema version {} (expected {LEDGER_VERSION})",
                r.version
            )));
        }
        if let Some(p) = prev {
            if r.window <= p.window {
                return Err(ctx("window indices must be strictly increasing"));
            }
            if r.cut < p.done {
                return Err(ctx(
                    "cut tick regressed before the previous window's install",
                ));
            }
        }
        if r.events == 0 {
            return Err(ctx("zero-event windows are never recorded"));
        }
        if r.window_ticks == 0 {
            return Err(ctx("window_ticks must be positive"));
        }
        if r.done < r.cut {
            return Err(ctx("done tick precedes cut tick"));
        }
        if !r.staleness.is_finite() || r.staleness < 0.0 {
            return Err(ctx("staleness must be finite and nonnegative"));
        }
        if r.meter.linear_work() != r.measured_work {
            return Err(ctx(&format!(
                "meter linear work {} disagrees with measured_work {}",
                r.meter.linear_work(),
                r.measured_work
            )));
        }
        let scanned: u64 = r.per_expr.iter().map(|e| e.scanned).sum();
        let installed: u64 = r.per_expr.iter().map(|e| e.installed).sum();
        if scanned != r.meter.operand_rows_scanned || installed != r.meter.rows_installed {
            return Err(ctx("per-expression meters do not sum to the window meter"));
        }
        if !(0.0..=1.0).contains(&r.cache_hit_rate) {
            return Err(ctx("cache_hit_rate outside [0, 1]"));
        }
        if r.meter.hash_tables_cross_reused > r.meter.hash_tables_reused {
            return Err(ctx("cross-reuses exceed total reuses"));
        }
        sum.windows.1 = r.window;
        sum.events += r.events;
        sum.predicted_work += r.predicted_work;
        sum.measured_work += r.measured_work;
        sum.wall_us += r.wall_us;
        sum.conformant &= r.conformant;
        weighted_staleness += r.staleness * r.events as f64;
        prev = Some(r);
    }
    sum.mean_staleness = weighted_staleness / sum.events.max(1) as f64;
    Ok(sum)
}

/// A per-window delta between two ledgers, aligned by window index — the
/// ledger half of the regression localizer.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerDelta {
    /// Window index (present in both ledgers).
    pub window: u64,
    /// Measured linear work, A then B.
    pub measured: (u64, u64),
    /// Predicted linear work, A then B.
    pub predicted: (f64, f64),
    /// Staleness, A then B.
    pub staleness: (f64, f64),
    /// Wall-clock microseconds, A then B.
    pub wall_us: (u64, u64),
}

impl LedgerDelta {
    /// Measured-work delta (B − A).
    pub fn measured_delta(&self) -> i64 {
        self.measured.1 as i64 - self.measured.0 as i64
    }
}

/// Aligns two ledgers window-by-window and returns every window whose
/// deterministic quantities (measured or predicted work) differ. Windows
/// present in only one ledger are reported with the other side zeroed.
pub fn diff_ledgers(a: &[LedgerRecord], b: &[LedgerRecord]) -> Vec<LedgerDelta> {
    let mut windows: Vec<u64> = a.iter().chain(b).map(|r| r.window).collect();
    windows.sort_unstable();
    windows.dedup();
    let mut out = Vec::new();
    for w in windows {
        let ra = a.iter().find(|r| r.window == w);
        let rb = b.iter().find(|r| r.window == w);
        let m = (
            ra.map_or(0, |r| r.measured_work),
            rb.map_or(0, |r| r.measured_work),
        );
        let p = (
            ra.map_or(0.0, |r| r.predicted_work),
            rb.map_or(0.0, |r| r.predicted_work),
        );
        if m.0 != m.1 || p.0 != p.1 || ra.is_none() || rb.is_none() {
            out.push(LedgerDelta {
                window: w,
                measured: m,
                predicted: p,
                staleness: (
                    ra.map_or(0.0, |r| r.staleness),
                    rb.map_or(0.0, |r| r.staleness),
                ),
                wall_us: (ra.map_or(0, |r| r.wall_us), rb.map_or(0, |r| r.wall_us)),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(window: u64) -> LedgerRecord {
        LedgerRecord {
            version: LEDGER_VERSION,
            window,
            cut: 10 * window,
            window_ticks: 10,
            done: 10 * window + 4,
            events: 20,
            staleness: 7.5,
            policy: "adaptive".to_string(),
            arrival_rate: 2.0,
            cost_per_event: 12.5,
            service_rate: 400.0,
            next_window: 9,
            calibration: 1.0,
            predicted_work: 250.0,
            measured_work: 240,
            meter: LedgerMeter {
                operand_rows_scanned: 200,
                rows_installed: 40,
                rows_emitted: 60,
                terms_evaluated: 6,
                comp_expressions: 2,
                inst_expressions: 3,
                physical_rows_touched: 500,
                hash_tables_built: 4,
                hash_tables_reused: 2,
                hash_tables_cross_reused: 1,
                operand_reads_cached: 3,
            },
            per_expr: vec![
                LedgerExpr {
                    expr: "Comp(Q3; {LINEITEM})".to_string(),
                    kind: "comp".to_string(),
                    view: "Q3".to_string(),
                    predicted: 200.0,
                    scanned: 180,
                    installed: 10,
                    physical: 400,
                    wall_us: 90,
                },
                LedgerExpr {
                    expr: "Inst(Q3)".to_string(),
                    kind: "inst".to_string(),
                    view: "Q3".to_string(),
                    predicted: 50.0,
                    scanned: 20,
                    installed: 30,
                    physical: 100,
                    wall_us: 40,
                },
            ],
            carry_in_tables: 1,
            carry_in_raws: 2,
            cross_reuses: 1,
            cached_reads: 3,
            carried_table_hits: 1,
            carried_raw_hits: 2,
            conformant: true,
            cache_hit_rate: 2.0 / 6.0,
            partitions: 1,
            wall_us: 130,
            critical_path_us: 130,
            wal_dir: Some(format!("/tmp/wal/window_{window:04}")),
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let rec = sample(3);
        let line = rec.to_json_line();
        let back = LedgerRecord::parse_line(&line).unwrap();
        assert_eq!(back, rec);
        let mut no_wal = sample(4);
        no_wal.wal_dir = None;
        assert_eq!(
            LedgerRecord::parse_line(&no_wal.to_json_line()).unwrap(),
            no_wal
        );
    }

    #[test]
    fn validate_accepts_consistent_ledgers_and_sums_them() {
        let text = format!(
            "{}\n{}\n",
            sample(0).to_json_line(),
            sample(1).to_json_line()
        );
        let sum = validate_ledger(&text).unwrap();
        assert_eq!(sum.records, 2);
        assert_eq!(sum.windows, (0, 1));
        assert_eq!(sum.events, 40);
        assert_eq!(sum.measured_work, 480);
        assert!(sum.conformant);
        assert!((sum.mean_staleness - 7.5).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_inconsistencies() {
        // Wrong version.
        let mut r = sample(0);
        r.version = 99;
        assert!(validate_ledger(&r.to_json_line()).is_err());
        // Meter arithmetic broken.
        let mut r = sample(0);
        r.measured_work += 1;
        assert!(validate_ledger(&r.to_json_line()).is_err());
        // Per-expression sums broken.
        let mut r = sample(0);
        r.per_expr[0].scanned += 5;
        assert!(validate_ledger(&r.to_json_line()).is_err());
        // Non-monotone windows.
        let text = format!(
            "{}\n{}\n",
            sample(2).to_json_line(),
            sample(1).to_json_line()
        );
        assert!(validate_ledger(&text).is_err());
        // Empty input.
        assert!(validate_ledger("").is_err());
    }

    #[test]
    fn append_builds_a_valid_jsonl_file() {
        let dir = std::env::temp_dir().join(format!("uww_ledger_test_{}", std::process::id()));
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        append_record(&path, &sample(0), false).unwrap();
        append_record(&path, &sample(1), true).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let sum = validate_ledger(&text).unwrap();
        assert_eq!(sum.records, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_diff_localizes_changed_windows() {
        let a = vec![sample(0), sample(1), sample(2)];
        let mut b = a.clone();
        assert!(
            diff_ledgers(&a, &b).is_empty(),
            "identical ledgers diff empty"
        );
        b[1].measured_work += 100;
        b[1].meter.operand_rows_scanned += 100;
        let d = diff_ledgers(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].window, 1);
        assert_eq!(d[0].measured_delta(), 100);
        // A window missing on one side is reported too.
        b.truncate(2);
        let d = diff_ledgers(&a, &b);
        assert!(d.iter().any(|x| x.window == 2));
    }
}
