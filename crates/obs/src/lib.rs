//! Observability for the update window.
//!
//! The paper's argument is about *where* work goes during the warehouse
//! update window; this crate makes that visible. It provides a
//! dependency-free, lock-cheap hierarchical span engine
//! (`run → expression → term → operator`, plus WAL-record, recovery-replay
//! and serve-request spans), two exporters, and a text timeline report:
//!
//! * [`span`] — the engine itself: a process-global subscriber guarded by a
//!   single relaxed atomic, a thread-local current-span stack for parenting,
//!   and a bounded in-memory ring buffer of finished [`SpanRecord`]s. When no
//!   subscriber is installed every instrumentation point is one atomic load
//!   and an early return: no allocation, no lock, no clock read.
//! * [`chrome`] — Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`), with one lane per OS thread so `--term-threads`
//!   overlap is visible, and a validator used by the golden tests and CI.
//! * [`prom`] — a Prometheus text-format registry (counters, gauges,
//!   histograms) plus a minimal scrape parser for round-trip tests.
//! * [`timeline`] — the "update-window timeline": per-expression bars over
//!   the window, each `Comp` annotated with planner-predicted vs measured
//!   work (the paper's §4 metric, made falsifiable).
//! * [`json`] — a minimal JSON parser (the workspace is offline; no serde)
//!   backing the Chrome-trace validator.
//! * [`ledger`] — the window-health flight recorder: one versioned JSONL
//!   record per update window (full meter, per-expression
//!   predicted-vs-measured work, policy inputs, carry counters), appended
//!   crash-consistently after the window's WAL commit, with a
//!   [`validate_ledger`](ledger::validate_ledger) consistency checker.
//! * [`drift`] — online cost-model drift detection: per-window relative
//!   error EWMAs over predicted-vs-measured work and the controller's
//!   λ/c estimates, with sustained-mis-calibration flags and the opt-in
//!   [`Recalibrator`](drift::Recalibrator) feedback hook.
//! * [`critical`] — partition critical-path derivation keyed by task
//!   identity (stable under work stealing).
//! * [`diff`] — the trace-to-trace regression localizer behind
//!   `uww diff`: aligns two Chrome traces by span-tree path and reports
//!   structural, row-counter, and wall-clock deltas.
//!
//! Spans carry wall-clock intervals *and* the executor's logical/physical
//! `WorkMeter` deltas as generic attributes — this crate knows nothing about
//! the meter type itself, only `u64`/`f64`/string attribute values, so it
//! sits below every other crate in the workspace.

pub mod chrome;
pub mod critical;
pub mod diff;
pub mod drift;
pub mod json;
pub mod ledger;
pub mod prom;
pub mod span;
pub mod timeline;

pub use span::{
    current_span_id, enabled, install, keys, span, span_dyn, span_under, span_under_dyn,
    subscriber, suppress, uninstall, AttrValue, Span, SpanKind, SpanRecord, SuppressGuard,
    TraceBuffer, DEFAULT_CAPACITY,
};
