//! Prometheus text-format registry and scrape parser.
//!
//! The serve subsystem computes metric values at scrape time; this module
//! only renders them. A [`Registry`] is built per scrape, filled with
//! counter/gauge/histogram families, and rendered to the [text exposition
//! format]. The rendered body ends with a `# EOF` line — valid OpenMetrics,
//! ignored by classic Prometheus parsers — which doubles as the framing
//! terminator for the serve protocol's multi-line `METRICS` response.
//!
//! [text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/
//!
//! [`parse_text`] is the minimal consumer-side parser the golden tests use
//! to prove a `METRICS` scrape round-trips: names, label sets, and values
//! survive render → parse exactly.

use std::fmt::Write as _;

/// Metric family kind, for the `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample line: `name<suffix>{labels} value`.
#[derive(Clone, Debug)]
struct Sample {
    suffix: &'static str,
    labels: Vec<(String, String)>,
    value: f64,
}

/// A named family of samples sharing HELP/TYPE metadata.
pub struct MetricFamily {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<Sample>,
}

impl MetricFamily {
    /// Adds an unlabeled sample.
    pub fn sample(&mut self, value: f64) -> &mut Self {
        self.labeled(&[], value)
    }

    /// Adds a sample with the given label pairs.
    pub fn labeled(&mut self, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.samples.push(Sample {
            suffix: "",
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
        self
    }
}

/// An ordered collection of metric families, rendered in insertion order.
#[derive(Default)]
pub struct Registry {
    families: Vec<MetricFamily>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new family; fill it through the returned handle.
    pub fn family(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut MetricFamily {
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().unwrap()
    }

    /// Shorthand for a single-sample counter.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.family(name, help, MetricKind::Counter).sample(value);
    }

    /// Shorthand for a single-sample gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.family(name, help, MetricKind::Gauge).sample(value);
    }

    /// Adds a cumulative histogram over `observations` (µs) with the given
    /// upper bounds (µs), producing `_bucket{le=…}` samples (including
    /// `+Inf`), `_sum`, and `_count`.
    pub fn histogram_us(&mut self, name: &str, help: &str, observations: &[u64], bounds: &[u64]) {
        let mut samples = Vec::with_capacity(bounds.len() + 3);
        for &b in bounds {
            let n = observations.iter().filter(|&&o| o <= b).count();
            samples.push(Sample {
                suffix: "_bucket",
                labels: vec![("le".to_string(), b.to_string())],
                value: n as f64,
            });
        }
        samples.push(Sample {
            suffix: "_bucket",
            labels: vec![("le".to_string(), "+Inf".to_string())],
            value: observations.len() as f64,
        });
        samples.push(Sample {
            suffix: "_sum",
            labels: Vec::new(),
            value: observations.iter().sum::<u64>() as f64,
        });
        samples.push(Sample {
            suffix: "_count",
            labels: Vec::new(),
            value: observations.len() as f64,
        });
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Histogram,
            samples,
        });
    }

    /// Renders the text exposition, terminated by a `# EOF` line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
            for s in &f.samples {
                out.push_str(&f.name);
                out.push_str(s.suffix);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                    }
                    out.push('}');
                }
                let _ = writeln!(out, " {}", format_value(s.value));
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        // Rust's f64 Display is the shortest round-trip decimal form,
        // which the parser side reads back exactly.
        v.to_string()
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

// ---------------------------------------------------------------------------
// Scrape parser.

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSample {
    /// Full sample name including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// A parsed scrape body.
#[derive(Clone, Debug, Default)]
pub struct ParsedScrape {
    pub samples: Vec<ParsedSample>,
    /// `(name, kind)` pairs from `# TYPE` lines, in order.
    pub types: Vec<(String, String)>,
    /// Whether a terminating `# EOF` line was present.
    pub saw_eof: bool,
}

impl ParsedScrape {
    /// Finds a sample by exact name and label set (order-insensitive).
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&ParsedSample> {
        self.samples.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
    }

    /// Value of a sample found via [`ParsedScrape::find`].
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.find(name, labels).map(|s| s.value)
    }
}

/// Parses a Prometheus/OpenMetrics text scrape. Comment lines other than
/// `# TYPE`/`# EOF` are validated for form and skipped; sample lines must be
/// `name[{labels}] value`.
pub fn parse_text(text: &str) -> Result<ParsedScrape, String> {
    let mut scrape = ParsedScrape::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 1);
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if comment == "EOF" {
                scrape.saw_eof = true;
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or_else(|| err("TYPE missing name"))?;
                let kind = it.next().ok_or_else(|| err("TYPE missing kind"))?;
                scrape.types.push((name.to_string(), kind.to_string()));
            } else if comment.starts_with("HELP ") && comment.split_whitespace().nth(1).is_none() {
                return Err(err("HELP missing name"));
            }
            // Other comments are legal and ignored.
            continue;
        }
        scrape
            .samples
            .push(parse_sample(line).map_err(|m| err(&m))?);
    }
    Ok(scrape)
}

fn parse_sample(line: &str) -> Result<ParsedSample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line[brace..]
                .find('}')
                .map(|i| brace + i)
                .ok_or("unterminated label set")?;
            (&line[..brace], &line[close + 1..])
        }
        None => {
            let sp = line.find(' ').ok_or("missing value")?;
            (&line[..sp], &line[sp..])
        }
    };
    let name = name_part.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let labels = match line.find('{') {
        Some(brace) => {
            let close = line[brace..].find('}').map(|i| brace + i).unwrap();
            parse_labels(&line[brace + 1..close])?
        }
        None => Vec::new(),
    };
    let value_text = rest.trim();
    let value_text = value_text
        .split_whitespace()
        .next()
        .ok_or("missing value")?;
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        t => t.parse::<f64>().map_err(|_| format!("bad value {t:?}"))?,
    };
    Ok(ParsedSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?}: expected opening quote"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err(format!("label {key:?}: unterminated value")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("label {key:?}: bad escape {other:?}")),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((key.trim().to_string(), value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip_preserves_names_labels_values() {
        let mut reg = Registry::new();
        reg.counter("uww_requests_total", "Total requests.", 42.0);
        reg.family(
            "uww_requests_by_verb_total",
            "Requests per verb.",
            MetricKind::Counter,
        )
        .labeled(&[("verb", "query")], 40.0)
        .labeled(&[("verb", "stats")], 2.0);
        reg.gauge("uww_epoch", "Catalog epoch.", 7.0);
        reg.histogram_us(
            "uww_latency_us",
            "Latency (µs).",
            &[50, 150, 150, 9000],
            &[100, 1000],
        );
        let text = reg.render();
        let scrape = parse_text(&text).unwrap();
        assert!(scrape.saw_eof);
        assert_eq!(scrape.value("uww_requests_total", &[]), Some(42.0));
        assert_eq!(
            scrape.value("uww_requests_by_verb_total", &[("verb", "query")]),
            Some(40.0)
        );
        assert_eq!(scrape.value("uww_epoch", &[]), Some(7.0));
        assert_eq!(
            scrape.value("uww_latency_us_bucket", &[("le", "100")]),
            Some(1.0)
        );
        assert_eq!(
            scrape.value("uww_latency_us_bucket", &[("le", "1000")]),
            Some(3.0)
        );
        assert_eq!(
            scrape.value("uww_latency_us_bucket", &[("le", "+Inf")]),
            Some(4.0)
        );
        assert_eq!(scrape.value("uww_latency_us_sum", &[]), Some(9350.0));
        assert_eq!(scrape.value("uww_latency_us_count", &[]), Some(4.0));
        assert!(scrape
            .types
            .iter()
            .any(|(n, k)| n == "uww_latency_us" && k == "histogram"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_text("bad name 1").is_err());
        assert!(parse_text("name{l=\"v\" 1").is_err());
        assert!(parse_text("name{l=\"v\"} notanumber").is_err());
        assert!(parse_text("name").is_err());
    }

    #[test]
    fn label_values_with_escapes_round_trip() {
        let mut reg = Registry::new();
        reg.family("m", "h", MetricKind::Gauge)
            .labeled(&[("path", "a\\b\"c\nd")], 1.0);
        let scrape = parse_text(&reg.render()).unwrap();
        assert_eq!(scrape.value("m", &[("path", "a\\b\"c\nd")]), Some(1.0));
    }
}
