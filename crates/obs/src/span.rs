//! Hierarchical span engine.
//!
//! A *span* is a named wall-clock interval with a kind, a parent, a lane
//! (one per OS thread — the Chrome exporter maps lanes to trace rows), and a
//! bag of attributes. Finished spans land in a bounded ring buffer owned by
//! the installed [`TraceBuffer`]; when the ring is full the *oldest* span is
//! evicted, so the coarse run/expression spans — which finish last — survive
//! a flood of fine-grained operator spans.
//!
//! # Cost model
//!
//! Instrumentation points call [`span`] unconditionally. With no subscriber
//! installed that is a single relaxed atomic load followed by an early
//! return: no allocation, no lock, no `Instant::now()`. The
//! disabled-subscriber equivalence tests in the workspace rely on this.
//!
//! # Parenting across threads
//!
//! The current span is tracked in a thread local, so nesting is automatic
//! within one thread. Scoped worker threads (the term-sharing pool, the
//! parallel stage executor) do not inherit the spawning thread's stack;
//! callers capture [`current_span_id`] before spawning and open worker spans
//! with [`span_under`].

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a span measures. The hierarchy in a normal run is
/// `Run → Stage? → Expression → Term → Operator`, with `WalRecord` spans
/// interleaved under the run/expression that wrote them, `Replay` spans under
/// a recovery run, and `ServeRequest` spans root-level in the query server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One whole strategy execution (the update window).
    Run,
    /// One stage of a parallel (staged) execution.
    Stage,
    /// One update expression: a `Comp` or an `Inst`.
    Expression,
    /// One maintenance term of a `Comp`.
    Term,
    /// One relational operator step inside a term (hash build, probe, …).
    Operator,
    /// One record appended to the write-ahead log.
    WalRecord,
    /// One expression replayed from the WAL during recovery.
    Replay,
    /// One request served by the online query server.
    ServeRequest,
}

impl SpanKind {
    /// Stable lowercase name, used as the Chrome-trace `cat` field.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Stage => "stage",
            SpanKind::Expression => "expression",
            SpanKind::Term => "term",
            SpanKind::Operator => "operator",
            SpanKind::WalRecord => "wal_record",
            SpanKind::Replay => "replay",
            SpanKind::ServeRequest => "serve_request",
        }
    }
}

/// A span attribute value. The engine is deliberately ignorant of domain
/// types (`WorkMeter`, strategies, …); callers flatten them to these.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    U64(u64),
    F64(f64),
    Str(String),
}

/// Well-known attribute keys, shared between the instrumentation sites in
/// `uww-core`/`uww-serve` and the exporters/timeline in this crate.
pub mod keys {
    /// `"comp"` or `"inst"` on expression spans.
    pub const EXPR_KIND: &str = "expr_kind";
    /// Target view name of an expression.
    pub const VIEW: &str = "view";
    /// Planner-predicted linear work for the expression (`CostModel`).
    pub const PREDICTED_WORK: &str = "predicted_work";
    /// Measured linear work (operand rows scanned + rows installed).
    pub const MEASURED_WORK: &str = "measured_work";
    /// Meter delta: operand rows scanned (logical).
    pub const ROWS_SCANNED: &str = "rows_scanned";
    /// Meter delta: rows installed.
    pub const ROWS_INSTALLED: &str = "rows_installed";
    /// Meter delta: intermediate rows emitted.
    pub const ROWS_EMITTED: &str = "rows_emitted";
    /// Meter delta: maintenance terms evaluated.
    pub const TERMS: &str = "terms";
    /// Meter delta: rows the executor physically touched.
    pub const PHYSICAL_ROWS: &str = "physical_rows";
    /// Meter delta: hash tables built from scratch.
    pub const HASH_BUILDS: &str = "hash_builds";
    /// Meter delta: hash tables served from the intern cache.
    pub const HASH_REUSES: &str = "hash_reuses";
    /// Meter delta: hash tables served from a table built by an *earlier
    /// expression* (strategy-scope cache). Subset of `hash_reuses`.
    pub const HASH_CROSS_REUSES: &str = "hash_cross_reuses";
    /// Meter delta: raw operand reads served from the strategy-scope cache.
    pub const CACHED_READS: &str = "cached_reads";
    /// Statically predicted hash-table builds for a `Comp`'s term set.
    pub const PREDICTED_HASH_BUILDS: &str = "predicted_hash_builds";
    /// Statically predicted hash-table reuses for a `Comp`'s term set.
    pub const PREDICTED_HASH_REUSES: &str = "predicted_hash_reuses";
    /// Statically predicted cross-expression hash-table reuses for a `Comp`.
    pub const PREDICTED_HASH_CROSS_REUSES: &str = "predicted_hash_cross_reuses";
    /// Statically predicted strategy-cache-served raw operand reads.
    pub const PREDICTED_CACHED_READS: &str = "predicted_cached_reads";
    /// `1` on expression spans reconstructed from the WAL during recovery.
    pub const REPLAYED: &str = "replayed";
    /// WAL record sequence number.
    pub const SEQ: &str = "seq";
    /// WAL record length in bytes.
    pub const BYTES: &str = "bytes";
    /// Generic row count (operator outputs, query results).
    pub const ROWS: &str = "rows";
    /// Serve-protocol verb on request spans.
    pub const VERB: &str = "verb";
    /// Stage index on stage spans.
    pub const STAGE: &str = "stage";
    /// Continuous-ingest window index on window run spans.
    pub const WINDOW: &str = "window";
    /// Accumulation ticks of a continuous-ingest window.
    pub const WINDOW_TICKS: &str = "window_ticks";
    /// Delta events batched into a continuous-ingest window.
    pub const EVENTS: &str = "events";
    /// Mean event staleness (ticks, arrival → install) of a window.
    pub const STALENESS: &str = "staleness";
    /// Events still queued when a window was cut.
    pub const QUEUE_DEPTH: &str = "queue_depth";
    /// Partition index on a per-partition operator span (partition-parallel
    /// term execution); the timeline uses these to attribute skew.
    pub const PARTITION: &str = "partition";
    /// Partition count on the operator span that fanned out per-partition
    /// children.
    pub const PARTITIONS: &str = "partitions";
}

/// A finished span as stored in the ring buffer.
///
/// Timestamps are microseconds since the owning buffer's creation instant.
/// `end_us` is captured with the same monotone clock after every child has
/// ended, so `child.end_us <= parent.end_us` holds exactly (flooring a
/// monotone clock preserves order) — the span-tree invariant tests assert
/// this without tolerance.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique nonzero id.
    pub id: u64,
    /// Parent span id, `0` for roots.
    pub parent: u64,
    pub kind: SpanKind,
    pub name: String,
    /// Lane (one per OS thread that recorded spans); Chrome `tid`.
    pub lane: u64,
    /// Start, µs since buffer epoch.
    pub start_us: u64,
    /// End, µs since buffer epoch; `>= start_us`.
    pub end_us: u64,
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }

    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Convenience: attribute as `u64` if present and of that type.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: attribute as `f64` (accepts `U64` too).
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        match self.attr(key) {
            Some(AttrValue::F64(v)) => Some(*v),
            Some(AttrValue::U64(v)) => Some(*v as f64),
            _ => None,
        }
    }
}

struct Ring {
    spans: VecDeque<SpanRecord>,
    dropped: u64,
    pushed: u64,
}

/// Bounded sink for finished spans.
pub struct TraceBuffer {
    epoch: Instant,
    capacity: usize,
    /// Record one in `N` operator spans (1 = all). Coarser kinds are never
    /// sampled: dropping a parent would orphan its children.
    operator_sampling: u64,
    op_seen: AtomicU64,
    next_id: AtomicU64,
    inner: Mutex<Ring>,
}

/// Default ring capacity: enough for every span of a paper-scale run while
/// bounding memory under adversarial operator counts.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

impl TraceBuffer {
    /// A buffer holding at most `capacity` spans, recording every span.
    pub fn new(capacity: usize) -> Self {
        Self::with_operator_sampling(capacity, 1)
    }

    /// Like [`TraceBuffer::new`] but recording only one in `sampling`
    /// operator spans (coarser kinds are always recorded).
    pub fn with_operator_sampling(capacity: usize, sampling: u64) -> Self {
        TraceBuffer {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            operator_sampling: sampling.max(1),
            op_seen: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            inner: Mutex::new(Ring {
                spans: VecDeque::new(),
                dropped: 0,
                pushed: 0,
            }),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, rec: SpanRecord) {
        let mut g = self.inner.lock().unwrap();
        g.pushed += 1;
        if g.spans.len() >= self.capacity {
            g.spans.pop_front();
            g.dropped += 1;
        }
        g.spans.push_back(rec);
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().spans.len()
    }

    /// True when no span has been recorded (or all were drained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Total spans ever pushed (recorded), including later-evicted ones.
    pub fn span_count(&self) -> u64 {
        self.inner.lock().unwrap().pushed
    }

    /// Clones the held spans, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Drains the held spans, oldest first.
    pub fn take_records(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().spans.drain(..).collect()
    }
}

// ---------------------------------------------------------------------------
// Global subscriber.

/// Fast-path gate: instrumentation checks only this before touching the
/// subscriber lock. Relaxed ordering suffices — a call racing with
/// `install` may miss the first spans, which is inherent to dynamic
/// enabling, and the `Mutex` below orders access to the buffer itself.
static ENABLED: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: Mutex<Option<Arc<TraceBuffer>>> = Mutex::new(None);
/// Process-wide lane allocator; lanes identify OS threads in exports.
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost live span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Lane assigned to this thread (0 = not yet assigned).
    static THREAD_LANE: Cell<u64> = const { Cell::new(0) };
    /// Nesting depth of [`suppress`] guards on this thread.
    static SUPPRESSED: Cell<u64> = const { Cell::new(0) };
}

/// RAII guard from [`suppress`]: spans opened on this thread while the
/// guard lives are inert.
pub struct SuppressGuard(());

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESSED.with(|s| s.set(s.get() - 1));
    }
}

/// Suppresses span recording on the current thread until the returned guard
/// drops (nestable). Use around internal replays — e.g. a planner
/// re-executing a strategy on a scratch warehouse to predict its behavior —
/// so their spans don't pollute the real run's trace.
pub fn suppress() -> SuppressGuard {
    SUPPRESSED.with(|s| s.set(s.get() + 1));
    SuppressGuard(())
}

/// Installs `buf` as the process-global subscriber and enables tracing.
/// Replaces any previous subscriber.
pub fn install(buf: Arc<TraceBuffer>) {
    *SUBSCRIBER.lock().unwrap() = Some(buf);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disables tracing and returns the previously installed buffer, if any.
/// Spans already open keep a handle to their buffer and still record on
/// drop; spans opened after this call are no-ops.
pub fn uninstall() -> Option<Arc<TraceBuffer>> {
    ENABLED.store(false, Ordering::Relaxed);
    SUBSCRIBER.lock().unwrap().take()
}

/// True when a subscriber is installed. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed subscriber, if any.
pub fn subscriber() -> Option<Arc<TraceBuffer>> {
    SUBSCRIBER.lock().unwrap().clone()
}

/// The innermost live span id on this thread (0 if none, or if tracing is
/// disabled). Capture this before spawning scoped workers and pass it to
/// [`span_under`] so worker spans parent correctly.
pub fn current_span_id() -> u64 {
    if !enabled() {
        return 0;
    }
    CURRENT.with(|c| c.get())
}

fn thread_lane() -> u64 {
    THREAD_LANE.with(|l| {
        let v = l.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            l.set(v);
            v
        }
    })
}

// ---------------------------------------------------------------------------
// Span guards.

struct Active {
    buf: Arc<TraceBuffer>,
    id: u64,
    parent: u64,
    kind: SpanKind,
    name: String,
    lane: u64,
    start_us: u64,
    /// Thread-local `CURRENT` value to restore on drop.
    prev: u64,
    attrs: Vec<(String, AttrValue)>,
}

/// RAII guard for an in-flight span. Records on drop; a guard created while
/// tracing is disabled (or sampled out) is inert and allocation-free.
pub struct Span(Option<Active>);

fn start(kind: SpanKind, explicit_parent: Option<u64>, name: impl FnOnce() -> String) -> Span {
    if !enabled() || SUPPRESSED.with(|s| s.get()) > 0 {
        return Span(None);
    }
    let Some(buf) = subscriber() else {
        return Span(None);
    };
    if kind == SpanKind::Operator && buf.operator_sampling > 1 {
        let n = buf.op_seen.fetch_add(1, Ordering::Relaxed);
        if n % buf.operator_sampling != 0 {
            return Span(None);
        }
    }
    let id = buf.next_id.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| c.get());
    let parent = explicit_parent.unwrap_or(prev);
    CURRENT.with(|c| c.set(id));
    let lane = thread_lane();
    let start_us = buf.now_us();
    Span(Some(Active {
        buf,
        id,
        parent,
        kind,
        name: name(),
        lane,
        start_us,
        prev,
        attrs: Vec::new(),
    }))
}

/// Opens a span parented to the innermost live span on this thread.
pub fn span(kind: SpanKind, name: &str) -> Span {
    start(kind, None, || name.to_string())
}

/// Like [`span`] but the name is built lazily — use when the name requires
/// formatting, so disabled tracing allocates nothing.
pub fn span_dyn(kind: SpanKind, name: impl FnOnce() -> String) -> Span {
    start(kind, None, name)
}

/// Opens a span under an explicit parent id (use 0 for a root). For worker
/// threads that do not inherit the spawner's thread-local stack.
pub fn span_under(kind: SpanKind, parent: u64, name: &str) -> Span {
    start(kind, Some(parent), || name.to_string())
}

/// [`span_under`] with a lazily built name.
pub fn span_under_dyn(kind: SpanKind, parent: u64, name: impl FnOnce() -> String) -> Span {
    start(kind, Some(parent), name)
}

impl Span {
    /// True when this guard will record a span on drop.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// This span's id (0 when inert). Pass to [`span_under`] from workers.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.id)
    }

    /// Attaches a `u64` attribute. No-op when inert.
    pub fn attr_u64(&mut self, key: &str, value: u64) {
        if let Some(a) = self.0.as_mut() {
            a.attrs.push((key.to_string(), AttrValue::U64(value)));
        }
    }

    /// Attaches an `f64` attribute. No-op when inert.
    pub fn attr_f64(&mut self, key: &str, value: f64) {
        if let Some(a) = self.0.as_mut() {
            a.attrs.push((key.to_string(), AttrValue::F64(value)));
        }
    }

    /// Attaches a string attribute. No-op when inert.
    pub fn attr_str(&mut self, key: &str, value: &str) {
        if let Some(a) = self.0.as_mut() {
            a.attrs
                .push((key.to_string(), AttrValue::Str(value.to_string())));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else {
            return;
        };
        CURRENT.with(|c| c.set(a.prev));
        let end_us = a.buf.now_us().max(a.start_us);
        let rec = SpanRecord {
            id: a.id,
            parent: a.parent,
            kind: a.kind,
            name: a.name,
            lane: a.lane,
            start_us: a.start_us,
            end_us,
            attrs: a.attrs,
        };
        a.buf.push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The subscriber is process-global; tests that install one serialize
    /// through this lock so `cargo test`'s parallel runner cannot interleave
    /// their spans.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_records_nothing_and_reports_inert() {
        let _g = locked();
        uninstall();
        let mut s = span(SpanKind::Run, "nothing");
        assert!(!s.is_recording());
        assert_eq!(s.id(), 0);
        s.attr_u64("k", 1);
        drop(s);
        assert_eq!(current_span_id(), 0);
    }

    #[test]
    fn spans_nest_via_thread_local_and_record_on_drop() {
        let _g = locked();
        let buf = Arc::new(TraceBuffer::new(64));
        install(buf.clone());
        {
            let run = span(SpanKind::Run, "run");
            let run_id = run.id();
            assert_eq!(current_span_id(), run_id);
            {
                let mut e = span(SpanKind::Expression, "expr");
                e.attr_u64(keys::ROWS_SCANNED, 42);
                assert_eq!(current_span_id(), e.id());
            }
            assert_eq!(current_span_id(), run_id);
        }
        uninstall();
        let recs = buf.records();
        assert_eq!(recs.len(), 2);
        // Children drop (and record) before parents.
        assert_eq!(recs[0].kind, SpanKind::Expression);
        assert_eq!(recs[1].kind, SpanKind::Run);
        assert_eq!(recs[0].parent, recs[1].id);
        assert_eq!(recs[1].parent, 0);
        assert_eq!(recs[0].attr_u64(keys::ROWS_SCANNED), Some(42));
        assert!(recs[0].start_us >= recs[1].start_us);
        assert!(recs[0].end_us <= recs[1].end_us);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let _g = locked();
        let buf = Arc::new(TraceBuffer::new(2));
        install(buf.clone());
        for i in 0..5 {
            let _s = span_dyn(SpanKind::Operator, || format!("op{i}"));
        }
        uninstall();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        assert_eq!(buf.span_count(), 5);
        let names: Vec<_> = buf.records().iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, ["op3", "op4"]);
    }

    #[test]
    fn operator_sampling_skips_but_keeps_coarse_kinds() {
        let _g = locked();
        let buf = Arc::new(TraceBuffer::with_operator_sampling(64, 4));
        install(buf.clone());
        for _ in 0..8 {
            let _s = span(SpanKind::Operator, "op");
        }
        for _ in 0..8 {
            let _s = span(SpanKind::Term, "t");
        }
        uninstall();
        let recs = buf.records();
        let ops = recs.iter().filter(|r| r.kind == SpanKind::Operator).count();
        let terms = recs.iter().filter(|r| r.kind == SpanKind::Term).count();
        assert_eq!(ops, 2);
        assert_eq!(terms, 8);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _g = locked();
        let buf = Arc::new(TraceBuffer::new(64));
        install(buf.clone());
        {
            let run = span(SpanKind::Run, "run");
            let parent = run.id();
            std::thread::scope(|s| {
                for w in 0..2 {
                    s.spawn(move || {
                        let _t = span_under_dyn(SpanKind::Term, parent, || format!("w{w}"));
                    });
                }
            });
        }
        uninstall();
        let recs = buf.records();
        let run = recs.iter().find(|r| r.kind == SpanKind::Run).unwrap();
        let terms: Vec<_> = recs.iter().filter(|r| r.kind == SpanKind::Term).collect();
        assert_eq!(terms.len(), 2);
        for t in &terms {
            assert_eq!(t.parent, run.id);
            assert_ne!(t.lane, run.lane, "workers get their own lanes");
        }
    }
}
