//! The update-window timeline report.
//!
//! Renders one bar per executed expression across the update window, in
//! start order, annotated with planner-predicted vs measured work — the
//! paper's §4 linear metric on both sides, so a strategy run shows at a
//! glance where the window went and where the cost model was wrong.

use crate::span::{keys, SpanKind, SpanRecord};

/// One row of the timeline: an expression's interval plus work attribution.
#[derive(Clone, Debug)]
pub struct TimelineRow {
    pub label: String,
    pub start_us: u64,
    pub end_us: u64,
    /// Planner-predicted linear work, when the caller supplied a cost model.
    pub predicted: Option<f64>,
    /// Measured linear work (rows scanned + rows installed).
    pub measured: Option<u64>,
    /// `1` when the expression was replayed from the WAL during recovery.
    pub replayed: bool,
}

impl TimelineRow {
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// Extracts timeline rows from recorded spans: every `Expression` and
/// `Replay` span, in start order.
pub fn expression_rows(spans: &[SpanRecord]) -> Vec<TimelineRow> {
    let mut rows: Vec<TimelineRow> = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Expression | SpanKind::Replay))
        .map(|s| TimelineRow {
            label: s.name.clone(),
            start_us: s.start_us,
            end_us: s.end_us,
            predicted: s.attr_f64(keys::PREDICTED_WORK),
            measured: s.attr_u64(keys::MEASURED_WORK),
            replayed: s.kind == SpanKind::Replay || s.attr_u64(keys::REPLAYED) == Some(1),
        })
        .collect();
    rows.sort_by_key(|r| (r.start_us, r.end_us));
    rows
}

/// Renders `rows` as a fixed-width text timeline. `width` is the bar width
/// in characters (clamped to at least 10).
pub fn render_timeline(rows: &[TimelineRow], width: usize) -> String {
    let width = width.max(10);
    let mut out = String::new();
    if rows.is_empty() {
        out.push_str("update-window timeline: no expression spans recorded\n");
        return out;
    }
    let t0 = rows.iter().map(|r| r.start_us).min().unwrap();
    let t1 = rows.iter().map(|r| r.end_us).max().unwrap();
    let window = (t1 - t0).max(1);
    out.push_str(&format!(
        "update-window timeline: {} expression(s), window {} µs\n",
        rows.len(),
        t1 - t0
    ));
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap().min(40);
    for r in rows {
        let off = ((r.start_us - t0) as u128 * width as u128 / window as u128) as usize;
        let mut len = (r.dur_us() as u128 * width as u128 / window as u128) as usize;
        len = len.max(1).min(width.saturating_sub(off).max(1));
        let mut bar = String::with_capacity(width);
        bar.extend(std::iter::repeat_n('.', off));
        bar.extend(std::iter::repeat_n('#', len));
        while bar.len() < width {
            bar.push('.');
        }
        let mut label = r.label.clone();
        if label.len() > label_w {
            label.truncate(label_w);
        }
        out.push_str(&format!("  {label:<label_w$} |{bar}| {:>8} µs", r.dur_us()));
        match (r.predicted, r.measured) {
            (Some(p), Some(m)) => {
                let err = if p > 0.0 {
                    (m as f64 - p) / p * 100.0
                } else if m == 0 {
                    0.0
                } else {
                    f64::INFINITY
                };
                out.push_str(&format!(
                    "  work pred={p:.0} meas={m} ({}{err:.1}%)",
                    if err >= 0.0 { "+" } else { "" }
                ));
            }
            (None, Some(m)) => out.push_str(&format!("  work meas={m}")),
            (Some(p), None) => out.push_str(&format!("  work pred={p:.0}")),
            (None, None) => {}
        }
        if r.replayed {
            out.push_str("  [replayed]");
        }
        out.push('\n');
    }
    let pred: f64 = rows.iter().filter_map(|r| r.predicted).sum();
    let meas: u64 = rows.iter().filter_map(|r| r.measured).sum();
    if pred > 0.0 || meas > 0 {
        out.push_str(&format!(
            "  total predicted work = {pred:.0}, measured work = {meas}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AttrValue;

    fn expr(name: &str, start: u64, end: u64, pred: f64, meas: u64) -> SpanRecord {
        SpanRecord {
            id: start + 1,
            parent: 0,
            kind: SpanKind::Expression,
            name: name.to_string(),
            lane: 1,
            start_us: start,
            end_us: end,
            attrs: vec![
                (keys::PREDICTED_WORK.to_string(), AttrValue::F64(pred)),
                (keys::MEASURED_WORK.to_string(), AttrValue::U64(meas)),
            ],
        }
    }

    #[test]
    fn rows_sorted_by_start_and_carry_attribution() {
        let spans = vec![
            expr("Inst(Q3)", 50, 60, 10.0, 12),
            expr("Comp(Q3; {LINEITEM})", 0, 50, 100.0, 90),
        ];
        let rows = expression_rows(&spans);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "Comp(Q3; {LINEITEM})");
        assert_eq!(rows[0].predicted, Some(100.0));
        assert_eq!(rows[1].measured, Some(12));
    }

    #[test]
    fn render_shows_bars_and_totals() {
        let spans = vec![
            expr("Comp(Q3; {LINEITEM})", 0, 50, 100.0, 90),
            expr("Inst(Q3)", 50, 60, 10.0, 12),
        ];
        let rows = expression_rows(&spans);
        let text = render_timeline(&rows, 20);
        assert!(text.contains("2 expression(s)"));
        assert!(text.contains("window 60 µs"));
        assert!(text.contains("work pred=100 meas=90 (-10.0%)"));
        assert!(text.contains("total predicted work = 110, measured work = 102"));
        // First bar starts at the left edge, second bar is offset.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("|#"));
        assert!(lines[2].contains("|."));
    }

    #[test]
    fn empty_rows_render_placeholder() {
        assert!(render_timeline(&[], 20).contains("no expression spans"));
    }
}
