//! A named collection of tables: the stored state of the warehouse.

use crate::error::{RelError, RelResult};
use crate::table::Table;
use std::collections::BTreeMap;

/// Maps view names to their stored extents.
///
/// Uses a `BTreeMap` so iteration order (and therefore every report and test
/// that walks the catalog) is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table under its own name, replacing any previous entry.
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Looks up a table.
    pub fn get(&self, name: &str) -> RelResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| RelError::UnknownRelation(name.to_string()))
    }

    /// Looks up a table mutably.
    pub fn get_mut(&mut self, name: &str) -> RelResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RelError::UnknownRelation(name.to_string()))
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Iterates tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueType;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register(Table::new("T", Schema::of(&[("a", ValueType::Int)])));
        assert!(c.contains("T"));
        assert!(c.get("T").is_ok());
        assert!(c.get_mut("T").is_ok());
        assert!(matches!(c.get("U"), Err(RelError::UnknownRelation(_))));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Catalog::new();
        for n in ["Z", "A", "M"] {
            c.register(Table::new(n, Schema::of(&[("a", ValueType::Int)])));
        }
        let names: Vec<&str> = c.names().collect();
        assert_eq!(names, vec!["A", "M", "Z"]);
    }
}
