//! A named collection of tables: the stored state of the warehouse.

use crate::error::{RelError, RelResult};
use crate::table::Table;
use std::collections::BTreeMap;

/// Maps view names to their stored extents.
///
/// Uses a `BTreeMap` so iteration order (and therefore every report and test
/// that walks the catalog) is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table under its own name.
    ///
    /// Refuses to clobber: registering a second table under a name the
    /// catalog already holds is a [`RelError::DuplicateRelation`] — silently
    /// overwriting a stored extent is exactly the kind of bug a warehouse
    /// must not paper over. Use [`Catalog::replace`] for an intentional
    /// swap (e.g. installing a new table version).
    pub fn register(&mut self, table: Table) -> RelResult<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(RelError::DuplicateRelation(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Replaces (or inserts) a table under its own name, returning the
    /// previous entry if one existed. The explicit counterpart of
    /// [`Catalog::register`] for call sites that *mean* to overwrite.
    pub fn replace(&mut self, table: Table) -> Option<Table> {
        self.tables.insert(table.name().to_string(), table)
    }

    /// Looks up a table.
    pub fn get(&self, name: &str) -> RelResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| RelError::UnknownRelation(name.to_string()))
    }

    /// Looks up a table mutably.
    pub fn get_mut(&mut self, name: &str) -> RelResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RelError::UnknownRelation(name.to_string()))
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Iterates tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueType;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register(Table::new("T", Schema::of(&[("a", ValueType::Int)])))
            .unwrap();
        assert!(c.contains("T"));
        assert!(c.get("T").is_ok());
        assert!(c.get_mut("T").is_ok());
        assert!(matches!(c.get("U"), Err(RelError::UnknownRelation(_))));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn duplicate_registration_is_a_typed_error() {
        let mut c = Catalog::new();
        let schema = Schema::of(&[("a", ValueType::Int)]);
        c.register(Table::new("T", schema.clone())).unwrap();
        let err = c.register(Table::new("T", schema)).unwrap_err();
        assert!(matches!(err, RelError::DuplicateRelation(n) if n == "T"));
        // The original entry is untouched.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_swaps_and_returns_previous() {
        let mut c = Catalog::new();
        let schema = Schema::of(&[("a", ValueType::Int)]);
        assert!(c.replace(Table::new("T", schema.clone())).is_none());
        let mut t2 = Table::new("T", schema);
        t2.insert(crate::tup![crate::value::Value::Int(1)]).unwrap();
        let old = c.replace(t2).unwrap();
        assert!(old.is_empty());
        assert_eq!(c.get("T").unwrap().len(), 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Catalog::new();
        for n in ["Z", "A", "M"] {
            c.register(Table::new(n, Schema::of(&[("a", ValueType::Int)])))
                .unwrap();
        }
        let names: Vec<&str> = c.names().collect();
        assert_eq!(names, vec!["A", "M", "Z"]);
    }
}
