//! Signed delta relations: the paper's `ΔV`.
//!
//! A delta relation is a multiset of tuples with *signed* multiplicities:
//! positive counts are the paper's "plus tuples" (insertions), negative counts
//! the "minus tuples" (deletions). Updates are modeled as a deletion followed
//! by an insertion, exactly as in Section 2 of the paper.

use crate::error::RelResult;
use crate::schema::Schema;
use crate::table::Table;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// A signed multiset of tuples over a fixed schema.
#[derive(Clone, Debug)]
pub struct DeltaRelation {
    schema: Schema,
    rows: HashMap<Tuple, i64>,
}

impl DeltaRelation {
    /// Creates an empty delta.
    pub fn new(schema: Schema) -> Self {
        DeltaRelation {
            schema,
            rows: HashMap::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Adds `count` (signed) copies of `tuple`; entries that net to zero are
    /// dropped, so a delta never stores dead weight.
    pub fn add(&mut self, tuple: Tuple, count: i64) {
        if count == 0 {
            return;
        }
        use std::collections::hash_map::Entry;
        match self.rows.entry(tuple) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += count;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(e) => {
                e.insert(count);
            }
        }
    }

    /// Merges another delta into this one (bag union with signed counts).
    pub fn merge(&mut self, other: &DeltaRelation) {
        debug_assert_eq!(self.schema, other.schema, "delta schema mismatch in merge");
        for (t, m) in other.iter() {
            self.add(t.clone(), m);
        }
    }

    /// The signed multiplicity of `tuple` (0 when absent).
    pub fn multiplicity(&self, tuple: &Tuple) -> i64 {
        self.rows.get(tuple).copied().unwrap_or(0)
    }

    /// Iterates `(tuple, signed multiplicity)` pairs; multiplicities are
    /// never zero.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.rows.iter().map(|(t, &m)| (t, m))
    }

    /// Number of distinct tuples carried.
    pub fn distinct_len(&self) -> usize {
        self.rows.len()
    }

    /// Total row volume `|ΔV|`: the sum of absolute multiplicities. This is
    /// the size used by the linear work metric for `Inst` and delta scans.
    pub fn len(&self) -> u64 {
        self.rows.values().map(|m| m.unsigned_abs()).sum()
    }

    /// True when the delta carries no change.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Net change in cardinality this delta causes when installed:
    /// `|V'| − |V|` for the target view.
    pub fn net_count(&self) -> i64 {
        self.rows.values().sum()
    }

    /// Number of plus rows (insertions), counting multiplicities.
    pub fn plus_len(&self) -> u64 {
        self.rows
            .values()
            .filter(|m| **m > 0)
            .map(|m| *m as u64)
            .sum()
    }

    /// Number of minus rows (deletions), counting multiplicities.
    pub fn minus_len(&self) -> u64 {
        self.rows
            .values()
            .filter(|m| **m < 0)
            .map(|m| m.unsigned_abs())
            .sum()
    }

    /// Builds the delta that deletes every row of `table` matched by `pred`.
    pub fn deleting_where(table: &Table, mut pred: impl FnMut(&Tuple) -> bool) -> DeltaRelation {
        let mut d = DeltaRelation::new(table.schema().clone());
        for (t, m) in table.iter() {
            if pred(t) {
                d.add(t.clone(), -(m as i64));
            }
        }
        d
    }

    /// Builds a delta that inserts all given tuples once each.
    pub fn inserting(schema: Schema, tuples: impl IntoIterator<Item = Tuple>) -> DeltaRelation {
        let mut d = DeltaRelation::new(schema);
        for t in tuples {
            d.add(t, 1);
        }
        d
    }

    /// `table + delta` as a fresh table (used by tests and the estimator; the
    /// engine installs in place via [`Table::install`]).
    pub fn applied_to(&self, table: &Table) -> RelResult<Table> {
        let mut out = table.clone();
        out.install(self)?;
        Ok(out)
    }

    /// Rows sorted for deterministic display.
    pub fn sorted_rows(&self) -> Vec<(Tuple, i64)> {
        let mut v: Vec<(Tuple, i64)> = self.rows.iter().map(|(t, &m)| (t.clone(), m)).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::value::{Value, ValueType};

    fn schema() -> Schema {
        Schema::of(&[("a", ValueType::Int)])
    }

    #[test]
    fn add_cancels_to_zero() {
        let mut d = DeltaRelation::new(schema());
        d.add(tup![Value::Int(1)], 2);
        d.add(tup![Value::Int(1)], -2);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.multiplicity(&tup![Value::Int(1)]), 0);
    }

    #[test]
    fn sizes() {
        let mut d = DeltaRelation::new(schema());
        d.add(tup![Value::Int(1)], 3);
        d.add(tup![Value::Int(2)], -2);
        assert_eq!(d.len(), 5);
        assert_eq!(d.plus_len(), 3);
        assert_eq!(d.minus_len(), 2);
        assert_eq!(d.net_count(), 1);
        assert_eq!(d.distinct_len(), 2);
    }

    #[test]
    fn merge_is_bag_union() {
        let mut a = DeltaRelation::new(schema());
        a.add(tup![Value::Int(1)], 1);
        let mut b = DeltaRelation::new(schema());
        b.add(tup![Value::Int(1)], -1);
        b.add(tup![Value::Int(2)], 4);
        a.merge(&b);
        assert_eq!(a.multiplicity(&tup![Value::Int(1)]), 0);
        assert_eq!(a.multiplicity(&tup![Value::Int(2)]), 4);
    }

    #[test]
    fn deleting_where_selects_rows() {
        let mut t = Table::new("T", schema());
        for i in 0..10 {
            t.insert(tup![Value::Int(i)]).unwrap();
        }
        let d = DeltaRelation::deleting_where(&t, |tp| tp.get(0).as_int().unwrap() < 3);
        assert_eq!(d.minus_len(), 3);
        assert_eq!(d.plus_len(), 0);
        let t2 = d.applied_to(&t).unwrap();
        assert_eq!(t2.len(), 7);
    }

    #[test]
    fn inserting_builds_plus_delta() {
        let d = DeltaRelation::inserting(schema(), (0..4).map(|i| tup![Value::Int(i)]));
        assert_eq!(d.plus_len(), 4);
        assert_eq!(d.net_count(), 4);
    }

    #[test]
    fn net_count_matches_applied_size() {
        let mut t = Table::new("T", schema());
        for i in 0..10 {
            t.insert(tup![Value::Int(i)]).unwrap();
        }
        let mut d = DeltaRelation::new(schema());
        d.add(tup![Value::Int(0)], -1);
        d.add(tup![Value::Int(100)], 3);
        let t2 = d.applied_to(&t).unwrap();
        assert_eq!(t2.len() as i64, t.len() as i64 + d.net_count());
    }
}
