//! Error types for the relational substrate.

use std::fmt;

/// Errors raised by schema construction, expression evaluation, and operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A schema was built with two columns of the same name.
    DuplicateColumn(String),
    /// A column name did not resolve against a schema.
    UnknownColumn(String),
    /// A named relation did not resolve against a catalog.
    UnknownRelation(String),
    /// A relation was registered under a name the catalog already holds.
    DuplicateRelation(String),
    /// An expression combined operand types it does not support.
    TypeMismatch {
        /// What was being evaluated.
        context: String,
    },
    /// A tuple's arity or types did not match the target schema.
    SchemaMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Installing a delta would drive a tuple's multiplicity negative.
    NegativeMultiplicity {
        /// The relation being installed into.
        relation: String,
    },
    /// An aggregate cannot be maintained incrementally (e.g. MIN under deletes).
    UnsupportedIncremental(String),
    /// Integer overflow in arithmetic or aggregation.
    Overflow(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::DuplicateColumn(n) => write!(f, "duplicate column name: {n}"),
            RelError::UnknownColumn(n) => write!(f, "unknown column: {n}"),
            RelError::UnknownRelation(n) => write!(f, "unknown relation: {n}"),
            RelError::DuplicateRelation(n) => {
                write!(f, "relation already registered: {n}")
            }
            RelError::TypeMismatch { context } => write!(f, "type mismatch in {context}"),
            RelError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            RelError::NegativeMultiplicity { relation } => {
                write!(
                    f,
                    "install would make a multiplicity negative in {relation}"
                )
            }
            RelError::UnsupportedIncremental(what) => {
                write!(f, "not incrementally maintainable: {what}")
            }
            RelError::Overflow(context) => write!(f, "integer overflow in {context}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Convenience alias.
pub type RelResult<T> = Result<T, RelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelError::UnknownColumn("c_name".into());
        assert!(e.to_string().contains("c_name"));
        let e = RelError::NegativeMultiplicity {
            relation: "ORDER".into(),
        };
        assert!(e.to_string().contains("ORDER"));
    }
}
