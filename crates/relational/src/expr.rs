//! Scalar expressions and predicates evaluated over a single row.
//!
//! Expressions reference columns positionally after being *bound* against a
//! schema; the unbound form references columns by name so view definitions
//! stay readable. Arithmetic on [`Value::Decimal`] is scale-aware:
//! `Decimal * Decimal` rescales by dividing by 100, so
//! `price * (1 - discount)` works in fixed point.

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{Value, ValueType, DECIMAL_ONE};
use std::fmt;

/// A scalar expression over one row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScalarExpr {
    /// Column reference by name; resolved at bind time.
    Col(String),
    /// A literal value.
    Lit(Value),
    /// Addition.
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Subtraction.
    Sub(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Multiplication (decimal-aware).
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Self {
        ScalarExpr::Col(name.into())
    }

    /// Literal.
    pub fn lit(v: Value) -> Self {
        ScalarExpr::Lit(v)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // builder over owned AST nodes, not arithmetic
    pub fn add(self, rhs: ScalarExpr) -> Self {
        ScalarExpr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: ScalarExpr) -> Self {
        ScalarExpr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: ScalarExpr) -> Self {
        ScalarExpr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Resolves all column names against `schema`, producing an evaluable
    /// [`BoundExpr`].
    pub fn bind(&self, schema: &Schema) -> RelResult<BoundExpr> {
        Ok(match self {
            ScalarExpr::Col(name) => BoundExpr::Col(schema.index_of(name)?),
            ScalarExpr::Lit(v) => BoundExpr::Lit(v.clone()),
            ScalarExpr::Add(a, b) => {
                BoundExpr::Add(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            ScalarExpr::Sub(a, b) => {
                BoundExpr::Sub(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            ScalarExpr::Mul(a, b) => {
                BoundExpr::Mul(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
        })
    }

    /// Names of all columns this expression references.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            ScalarExpr::Col(n) => out.push(n),
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }

    /// The output type of this expression under `schema`, if well-typed.
    pub fn output_type(&self, schema: &Schema) -> RelResult<ValueType> {
        match self {
            ScalarExpr::Col(n) => Ok(schema.column(schema.index_of(n)?).ty),
            ScalarExpr::Lit(v) => Ok(v.value_type()),
            ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
                let ta = a.output_type(schema)?;
                let tb = b.output_type(schema)?;
                numeric_result_type(ta, tb).ok_or_else(|| RelError::TypeMismatch {
                    context: format!("{self:?}"),
                })
            }
        }
    }
}

fn numeric_result_type(a: ValueType, b: ValueType) -> Option<ValueType> {
    use ValueType::*;
    match (a, b) {
        (Int, Int) => Some(Int),
        (Decimal, Decimal) | (Int, Decimal) | (Decimal, Int) => Some(Decimal),
        _ => None,
    }
}

/// A position-resolved scalar expression, ready for evaluation.
#[derive(Clone, Debug)]
pub enum BoundExpr {
    /// Column at this index.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Addition.
    Add(Box<BoundExpr>, Box<BoundExpr>),
    /// Subtraction.
    Sub(Box<BoundExpr>, Box<BoundExpr>),
    /// Multiplication.
    Mul(Box<BoundExpr>, Box<BoundExpr>),
}

impl BoundExpr {
    /// Evaluates the expression against a row.
    pub fn eval(&self, row: &Tuple) -> RelResult<Value> {
        match self {
            BoundExpr::Col(i) => Ok(row.get(*i).clone()),
            BoundExpr::Lit(v) => Ok(v.clone()),
            BoundExpr::Add(a, b) => arith(a.eval(row)?, b.eval(row)?, ArithOp::Add),
            BoundExpr::Sub(a, b) => arith(a.eval(row)?, b.eval(row)?, ArithOp::Sub),
            BoundExpr::Mul(a, b) => arith(a.eval(row)?, b.eval(row)?, ArithOp::Mul),
        }
    }
}

#[derive(Clone, Copy)]
enum ArithOp {
    Add,
    Sub,
    Mul,
}

fn arith(a: Value, b: Value, op: ArithOp) -> RelResult<Value> {
    use Value::*;
    let overflow = || RelError::Overflow("scalar arithmetic".to_string());
    match (&a, &b) {
        (Int(x), Int(y)) => {
            let r = match op {
                ArithOp::Add => x.checked_add(*y),
                ArithOp::Sub => x.checked_sub(*y),
                ArithOp::Mul => x.checked_mul(*y),
            };
            r.map(Int).ok_or_else(overflow)
        }
        // Mixed int/decimal: promote the int to scale-2 first.
        (Int(x), Decimal(_)) => arith(
            Decimal(x.checked_mul(DECIMAL_ONE).ok_or_else(overflow)?),
            b,
            op,
        ),
        (Decimal(_), Int(y)) => {
            let y = y.checked_mul(DECIMAL_ONE).ok_or_else(overflow)?;
            arith(a, Decimal(y), op)
        }
        (Decimal(x), Decimal(y)) => {
            let r = match op {
                ArithOp::Add => x.checked_add(*y),
                ArithOp::Sub => x.checked_sub(*y),
                // Scale-2 * scale-2 = scale-4; rescale back (truncating).
                ArithOp::Mul => x.checked_mul(*y).map(|p| p / DECIMAL_ONE),
            };
            r.map(Decimal).ok_or_else(overflow)
        }
        _ => Err(RelError::TypeMismatch {
            context: format!("arith on {a:?} and {b:?}"),
        }),
    }
}

/// Comparison operators usable in predicates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over one row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Predicate {
    /// Comparison between two scalar expressions.
    Cmp(CmpOp, ScalarExpr, ScalarExpr),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Always true (neutral element for [`Predicate::and_all`]).
    True,
}

impl Predicate {
    /// `lhs op rhs`.
    pub fn cmp(op: CmpOp, lhs: ScalarExpr, rhs: ScalarExpr) -> Self {
        Predicate::Cmp(op, lhs, rhs)
    }

    /// `col = literal` shorthand.
    pub fn col_eq(col: impl Into<String>, v: Value) -> Self {
        Predicate::Cmp(CmpOp::Eq, ScalarExpr::Col(col.into()), ScalarExpr::Lit(v))
    }

    /// `col < literal` shorthand.
    pub fn col_lt(col: impl Into<String>, v: Value) -> Self {
        Predicate::Cmp(CmpOp::Lt, ScalarExpr::Col(col.into()), ScalarExpr::Lit(v))
    }

    /// `col > literal` shorthand.
    pub fn col_gt(col: impl Into<String>, v: Value) -> Self {
        Predicate::Cmp(CmpOp::Gt, ScalarExpr::Col(col.into()), ScalarExpr::Lit(v))
    }

    /// `col >= literal` shorthand.
    pub fn col_ge(col: impl Into<String>, v: Value) -> Self {
        Predicate::Cmp(CmpOp::Ge, ScalarExpr::Col(col.into()), ScalarExpr::Lit(v))
    }

    /// Conjunction of an arbitrary number of predicates.
    pub fn and_all(preds: impl IntoIterator<Item = Predicate>) -> Self {
        let mut it = preds.into_iter();
        let first = match it.next() {
            Some(p) => p,
            None => return Predicate::True,
        };
        it.fold(first, |acc, p| Predicate::And(Box::new(acc), Box::new(p)))
    }

    /// Conjunction.
    pub fn and(self, rhs: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(rhs))
    }

    /// Resolves column names against `schema`.
    pub fn bind(&self, schema: &Schema) -> RelResult<BoundPredicate> {
        Ok(match self {
            Predicate::Cmp(op, a, b) => BoundPredicate::Cmp(*op, a.bind(schema)?, b.bind(schema)?),
            Predicate::And(a, b) => {
                BoundPredicate::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Predicate::Or(a, b) => {
                BoundPredicate::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Predicate::Not(p) => BoundPredicate::Not(Box::new(p.bind(schema)?)),
            Predicate::True => BoundPredicate::True,
        })
    }

    /// Names of all columns this predicate references.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::Cmp(_, a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::True => {}
        }
    }
}

/// A position-resolved predicate.
#[derive(Clone, Debug)]
pub enum BoundPredicate {
    /// Comparison.
    Cmp(CmpOp, BoundExpr, BoundExpr),
    /// Conjunction.
    And(Box<BoundPredicate>, Box<BoundPredicate>),
    /// Disjunction.
    Or(Box<BoundPredicate>, Box<BoundPredicate>),
    /// Negation.
    Not(Box<BoundPredicate>),
    /// Always true.
    True,
}

impl BoundPredicate {
    /// Evaluates the predicate against a row.
    pub fn eval(&self, row: &Tuple) -> RelResult<bool> {
        Ok(match self {
            BoundPredicate::Cmp(op, a, b) => {
                let va = a.eval(row)?;
                let vb = b.eval(row)?;
                if va.value_type() != vb.value_type() {
                    return Err(RelError::TypeMismatch {
                        context: format!("compare {va:?} {op} {vb:?}"),
                    });
                }
                op.test(va.cmp(&vb))
            }
            BoundPredicate::And(a, b) => a.eval(row)? && b.eval(row)?,
            BoundPredicate::Or(a, b) => a.eval(row)? || b.eval(row)?,
            BoundPredicate::Not(p) => !p.eval(row)?,
            BoundPredicate::True => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    fn schema() -> Schema {
        Schema::of(&[
            ("k", ValueType::Int),
            ("price", ValueType::Decimal),
            ("disc", ValueType::Decimal),
            ("seg", ValueType::Str),
        ])
    }

    fn row() -> Tuple {
        tup![
            Value::Int(7),
            Value::Decimal(10_000), // 100.00
            Value::Decimal(10),     // 0.10
            Value::str("BUILDING"),
        ]
    }

    #[test]
    fn revenue_expression() {
        // price * (1 - disc) = 100.00 * 0.90 = 90.00
        let e = ScalarExpr::col("price")
            .mul(ScalarExpr::lit(Value::Decimal(100)).sub(ScalarExpr::col("disc")));
        let b = e.bind(&schema()).unwrap();
        assert_eq!(b.eval(&row()).unwrap(), Value::Decimal(9_000));
    }

    #[test]
    fn int_decimal_promotion() {
        let e = ScalarExpr::lit(Value::Int(2)).mul(ScalarExpr::col("price"));
        let b = e.bind(&schema()).unwrap();
        assert_eq!(b.eval(&row()).unwrap(), Value::Decimal(20_000));
        let t = e.output_type(&schema()).unwrap();
        assert_eq!(t, ValueType::Decimal);
    }

    #[test]
    fn predicates() {
        let p = Predicate::col_eq("seg", Value::str("BUILDING"))
            .and(Predicate::col_gt("k", Value::Int(3)));
        assert!(p.bind(&schema()).unwrap().eval(&row()).unwrap());
        let p = Predicate::col_lt("k", Value::Int(3));
        assert!(!p.bind(&schema()).unwrap().eval(&row()).unwrap());
        let p = Predicate::Not(Box::new(Predicate::True));
        assert!(!p.bind(&schema()).unwrap().eval(&row()).unwrap());
    }

    #[test]
    fn and_all_of_empty_is_true() {
        let p = Predicate::and_all(std::iter::empty());
        assert!(p.bind(&schema()).unwrap().eval(&row()).unwrap());
    }

    #[test]
    fn or_and_ne() {
        let p = Predicate::Or(
            Box::new(Predicate::col_eq("k", Value::Int(999))),
            Box::new(Predicate::cmp(
                CmpOp::Ne,
                ScalarExpr::col("seg"),
                ScalarExpr::lit(Value::str("AUTO")),
            )),
        );
        assert!(p.bind(&schema()).unwrap().eval(&row()).unwrap());
    }

    #[test]
    fn type_mismatch_detected() {
        let p = Predicate::col_eq("seg", Value::Int(1));
        assert!(p.bind(&schema()).unwrap().eval(&row()).is_err());
        let e = ScalarExpr::col("seg").add(ScalarExpr::col("k"));
        assert!(e.output_type(&schema()).is_err());
        let b = e.bind(&schema()).unwrap();
        assert!(b.eval(&row()).is_err());
    }

    #[test]
    fn referenced_columns_collected() {
        let p =
            Predicate::col_eq("seg", Value::str("x")).and(Predicate::col_gt("k", Value::Int(0)));
        let mut cols = p.referenced_columns();
        cols.sort_unstable();
        assert_eq!(cols, vec!["k", "seg"]);
    }

    #[test]
    fn unknown_column_bind_fails() {
        assert!(ScalarExpr::col("nope").bind(&schema()).is_err());
        assert!(Predicate::col_eq("nope", Value::Int(1))
            .bind(&schema())
            .is_err());
    }

    #[test]
    fn cmp_ops_exhaustive() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.test(Equal) && !CmpOp::Eq.test(Less));
        assert!(CmpOp::Ne.test(Less) && !CmpOp::Ne.test(Equal));
        assert!(CmpOp::Lt.test(Less) && !CmpOp::Lt.test(Equal));
        assert!(CmpOp::Le.test(Equal) && !CmpOp::Le.test(Greater));
        assert!(CmpOp::Gt.test(Greater) && !CmpOp::Gt.test(Equal));
        assert!(CmpOp::Ge.test(Equal) && !CmpOp::Ge.test(Less));
    }
}
