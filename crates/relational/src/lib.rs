//! # uww-relational
//!
//! The relational substrate for the *Shrinking the Warehouse Update Window*
//! reproduction: an in-memory multiset engine with signed delta relations.
//!
//! The paper ran its experiments on a commercial RDBMS; this crate provides
//! the equivalent machinery the update strategies need, built from scratch:
//!
//! * [`Value`], [`Schema`], [`Tuple`] — typed rows with exact (fixed-point)
//!   arithmetic so incremental maintenance matches recomputation bit-for-bit;
//! * [`Table`] — bag-semantics stored extents with an `install` primitive;
//! * [`DeltaRelation`] — signed multisets carrying the paper's plus/minus
//!   tuples;
//! * [`ViewDef`] — SELECT-FROM-WHERE-GROUPBY view definitions (`Def(V)`);
//! * [`ops`] — physical operators over signed row batches (scan, filter,
//!   project, hash join, grouping) that multiply multiplicities through
//!   joins, giving maintenance-expression semantics for free;
//! * [`WorkMeter`] — counts operand rows scanned and rows installed, the two
//!   quantities the paper's linear work metric is built from.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod delta;
pub mod error;
pub mod expr;
pub mod meter;
pub mod ops;
pub mod schema;
pub mod snapshot;
pub mod sql;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod value;
pub mod versioned;
pub mod viewdef;

pub use catalog::Catalog;
pub use delta::DeltaRelation;
pub use error::{RelError, RelResult};
pub use expr::{BoundExpr, BoundPredicate, CmpOp, Predicate, ScalarExpr};
pub use meter::WorkMeter;
pub use ops::{AggFunc, AggSpec, SignedRows};
pub use schema::{Column, Schema};
pub use snapshot::{
    catalog_digest, catalog_from_str, catalog_to_string, delta_digest, delta_from_str,
    delta_to_string, deltas_from_str, deltas_to_string, digest64, table_digest, table_to_string,
    value_from_wire, value_to_wire,
};
pub use sql::parse_view_def;
pub use stats::{join_cardinality, ColumnStats, TableStats};
pub use table::Table;
pub use tuple::Tuple;
pub use value::{date, days_to_ymd, ymd_to_days, Value, ValueType, DECIMAL_ONE, DECIMAL_SCALE};
pub use versioned::{CatalogVersion, VersionedCatalog};
pub use viewdef::{AggregateColumn, EquiJoin, OutputColumn, ViewDef, ViewOutput, ViewSource};
