//! Work metering.
//!
//! The paper's linear work metric charges, for every maintenance term, the
//! sizes of the operands the term scans, and for every install the size of
//! the delta being installed. The engine meters exactly those events as it
//! executes, so the *measured* work of a strategy can be compared against the
//! planner's *predicted* work and against wall-clock time.

use std::fmt;

/// Counters accumulated while executing update expressions.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct WorkMeter {
    /// Rows scanned from term operands (stored tables and delta relations).
    /// This is the quantity the linear work metric models for `Comp`.
    pub operand_rows_scanned: u64,
    /// Rows written by installs (plus + minus): the metric's `Inst` quantity.
    pub rows_installed: u64,
    /// Rows produced by intermediate operators (join/filter outputs). Not part
    /// of the paper's metric; useful for diagnosing where time goes.
    pub rows_emitted: u64,
    /// Number of maintenance terms evaluated.
    pub terms_evaluated: u64,
    /// Number of `Comp` expressions executed.
    pub comp_expressions: u64,
    /// Number of `Inst` expressions executed.
    pub inst_expressions: u64,
}

impl WorkMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records scanning `n` operand rows.
    pub fn scan(&mut self, n: u64) {
        self.operand_rows_scanned += n;
    }

    /// Records installing `n` rows.
    pub fn install(&mut self, n: u64) {
        self.rows_installed += n;
    }

    /// Records emitting `n` intermediate rows.
    pub fn emit(&mut self, n: u64) {
        self.rows_emitted += n;
    }

    /// Records evaluation of one maintenance term.
    pub fn term(&mut self) {
        self.terms_evaluated += 1;
    }

    /// The paper's total work: operand rows scanned plus rows installed
    /// (proportionality constants `c = i = 1`).
    pub fn linear_work(&self) -> u64 {
        self.operand_rows_scanned + self.rows_installed
    }

    /// Difference `self - earlier`, for scoped measurements.
    pub fn since(&self, earlier: &WorkMeter) -> WorkMeter {
        WorkMeter {
            operand_rows_scanned: self.operand_rows_scanned - earlier.operand_rows_scanned,
            rows_installed: self.rows_installed - earlier.rows_installed,
            rows_emitted: self.rows_emitted - earlier.rows_emitted,
            terms_evaluated: self.terms_evaluated - earlier.terms_evaluated,
            comp_expressions: self.comp_expressions - earlier.comp_expressions,
            inst_expressions: self.inst_expressions - earlier.inst_expressions,
        }
    }
}

impl fmt::Display for WorkMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} installed={} emitted={} terms={} comps={} insts={}",
            self.operand_rows_scanned,
            self.rows_installed,
            self.rows_emitted,
            self.terms_evaluated,
            self.comp_expressions,
            self.inst_expressions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_diff() {
        let mut m = WorkMeter::new();
        m.scan(10);
        m.install(3);
        m.emit(7);
        m.term();
        let snapshot = m;
        m.scan(5);
        m.install(2);
        let d = m.since(&snapshot);
        assert_eq!(d.operand_rows_scanned, 5);
        assert_eq!(d.rows_installed, 2);
        assert_eq!(d.rows_emitted, 0);
        assert_eq!(m.linear_work(), 20);
    }

    #[test]
    fn display_mentions_counters() {
        let mut m = WorkMeter::new();
        m.scan(42);
        assert!(m.to_string().contains("scanned=42"));
    }
}
