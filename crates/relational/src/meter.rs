//! Work metering.
//!
//! The paper's linear work metric charges, for every maintenance term, the
//! sizes of the operands the term scans, and for every install the size of
//! the delta being installed. The engine meters exactly those events as it
//! executes, so the *measured* work of a strategy can be compared against the
//! planner's *predicted* work and against wall-clock time.
//!
//! The meter distinguishes two views of that work:
//!
//! * **logical** — what the paper's model charges. `operand_rows_scanned`
//!   counts a full operand scan for *every* term that names the operand,
//!   whether or not the executor actually re-read it. Planner decisions
//!   (MinWork/Prune) are made against this metric, so it must not move when
//!   the executor gets smarter.
//! * **physical** — rows the executor actually touched: each operand
//!   materialization and each hash-table build pass counts its input rows
//!   once. The shared-operand term engine shrinks this without moving the
//!   logical metric.

use std::fmt;

/// Counters accumulated while executing update expressions.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct WorkMeter {
    /// Rows scanned from term operands (stored tables and delta relations).
    /// This is the quantity the linear work metric models for `Comp`.
    pub operand_rows_scanned: u64,
    /// Rows written by installs (plus + minus): the metric's `Inst` quantity.
    pub rows_installed: u64,
    /// Rows produced by intermediate operators (join/filter outputs). Not part
    /// of the paper's metric; useful for diagnosing where time goes.
    pub rows_emitted: u64,
    /// Number of maintenance terms evaluated.
    pub terms_evaluated: u64,
    /// Number of `Comp` expressions executed.
    pub comp_expressions: u64,
    /// Number of `Inst` expressions executed.
    pub inst_expressions: u64,
    /// Rows the executor *actually* read: operand materializations plus
    /// hash-table build passes. Without operand sharing this tracks
    /// `operand_rows_scanned` plus build inputs; with sharing it drops while
    /// the logical counters stay put.
    pub physical_rows_touched: u64,
    /// Hash-join build tables constructed from scratch.
    pub hash_tables_built: u64,
    /// Hash-join build tables served from the per-`Comp` intern cache.
    pub hash_tables_reused: u64,
    /// Subset of `hash_tables_reused` served from a table built by an
    /// *earlier expression* (the strategy-scope cache); per-`Comp` reuse does
    /// not move this counter, so `builds + reuses` still equals keyed join
    /// steps while cross-`Comp` wins stay separately visible.
    pub hash_tables_cross_reused: u64,
    /// Raw operand materializations served from the strategy-scope cache
    /// instead of re-reading the stored/delta extent. Physical-only: the
    /// logical scan is still charged per term via `scan_logical`.
    pub operand_reads_cached: u64,
}

impl WorkMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records scanning `n` operand rows: the executor read them, so both
    /// the logical and physical counters move.
    pub fn scan(&mut self, n: u64) {
        self.operand_rows_scanned += n;
        self.physical_rows_touched += n;
    }

    /// Records a *logical* scan of `n` operand rows that the executor
    /// satisfied from an already-materialized operand. The paper's metric
    /// charges the term as if it scanned; the hardware did not.
    pub fn scan_logical(&mut self, n: u64) {
        self.operand_rows_scanned += n;
    }

    /// Records building a hash table over `n` input rows. Physical-only:
    /// the model folds build cost into the operand scan it already charged.
    pub fn hash_build(&mut self, n: u64) {
        self.hash_tables_built += 1;
        self.physical_rows_touched += n;
    }

    /// Records a physical pass over `n` rows that is neither an operand
    /// scan nor a hash build — e.g. the single-bucket degenerate of an
    /// empty-key build, which is a disguised cross join and must not
    /// inflate `hash_tables_built` past the static sharing prediction.
    pub fn touch(&mut self, n: u64) {
        self.physical_rows_touched += n;
    }

    /// Records reusing an interned hash table instead of rebuilding it.
    pub fn hash_reuse(&mut self) {
        self.hash_tables_reused += 1;
    }

    /// Records reusing a hash table built by an *earlier expression* in the
    /// strategy. Counts as a reuse (so build/reuse totals are scope-stable)
    /// and additionally as a cross-expression reuse.
    pub fn hash_cross_reuse(&mut self) {
        self.hash_tables_reused += 1;
        self.hash_tables_cross_reused += 1;
    }

    /// Records serving a raw operand read from the strategy-scope cache.
    /// Physical-only; the caller still charges `scan_logical` per term.
    pub fn cached_read(&mut self) {
        self.operand_reads_cached += 1;
    }

    /// Records installing `n` rows.
    pub fn install(&mut self, n: u64) {
        self.rows_installed += n;
    }

    /// Records emitting `n` intermediate rows.
    pub fn emit(&mut self, n: u64) {
        self.rows_emitted += n;
    }

    /// Records evaluation of one maintenance term.
    pub fn term(&mut self) {
        self.terms_evaluated += 1;
    }

    /// The paper's total work: operand rows scanned plus rows installed
    /// (proportionality constants `c = i = 1`).
    pub fn linear_work(&self) -> u64 {
        self.operand_rows_scanned + self.rows_installed
    }

    /// Difference `self - earlier`, for scoped measurements.
    pub fn since(&self, earlier: &WorkMeter) -> WorkMeter {
        WorkMeter {
            operand_rows_scanned: self.operand_rows_scanned - earlier.operand_rows_scanned,
            rows_installed: self.rows_installed - earlier.rows_installed,
            rows_emitted: self.rows_emitted - earlier.rows_emitted,
            terms_evaluated: self.terms_evaluated - earlier.terms_evaluated,
            comp_expressions: self.comp_expressions - earlier.comp_expressions,
            inst_expressions: self.inst_expressions - earlier.inst_expressions,
            physical_rows_touched: self.physical_rows_touched - earlier.physical_rows_touched,
            hash_tables_built: self.hash_tables_built - earlier.hash_tables_built,
            hash_tables_reused: self.hash_tables_reused - earlier.hash_tables_reused,
            hash_tables_cross_reused: self.hash_tables_cross_reused
                - earlier.hash_tables_cross_reused,
            operand_reads_cached: self.operand_reads_cached - earlier.operand_reads_cached,
        }
    }

    /// Adds every counter of `other` into `self` — for folding per-term (or
    /// per-stage) meters into a total.
    pub fn absorb(&mut self, other: &WorkMeter) {
        self.operand_rows_scanned += other.operand_rows_scanned;
        self.rows_installed += other.rows_installed;
        self.rows_emitted += other.rows_emitted;
        self.terms_evaluated += other.terms_evaluated;
        self.comp_expressions += other.comp_expressions;
        self.inst_expressions += other.inst_expressions;
        self.physical_rows_touched += other.physical_rows_touched;
        self.hash_tables_built += other.hash_tables_built;
        self.hash_tables_reused += other.hash_tables_reused;
        self.hash_tables_cross_reused += other.hash_tables_cross_reused;
        self.operand_reads_cached += other.operand_reads_cached;
    }

    /// The counters the paper's model sees, with the physical ones zeroed —
    /// two executions are *logically equivalent* iff these compare equal.
    pub fn logical(&self) -> WorkMeter {
        WorkMeter {
            physical_rows_touched: 0,
            hash_tables_built: 0,
            hash_tables_reused: 0,
            hash_tables_cross_reused: 0,
            operand_reads_cached: 0,
            ..*self
        }
    }
}

impl fmt::Display for WorkMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} installed={} emitted={} terms={} comps={} insts={} \
             physical={} builds={} reuses={} cross_reuses={} cached_reads={}",
            self.operand_rows_scanned,
            self.rows_installed,
            self.rows_emitted,
            self.terms_evaluated,
            self.comp_expressions,
            self.inst_expressions,
            self.physical_rows_touched,
            self.hash_tables_built,
            self.hash_tables_reused,
            self.hash_tables_cross_reused,
            self.operand_reads_cached
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_diff() {
        let mut m = WorkMeter::new();
        m.scan(10);
        m.install(3);
        m.emit(7);
        m.term();
        let snapshot = m;
        m.scan(5);
        m.install(2);
        let d = m.since(&snapshot);
        assert_eq!(d.operand_rows_scanned, 5);
        assert_eq!(d.rows_installed, 2);
        assert_eq!(d.rows_emitted, 0);
        assert_eq!(m.linear_work(), 20);
    }

    #[test]
    fn display_mentions_counters() {
        let mut m = WorkMeter::new();
        m.scan(42);
        assert!(m.to_string().contains("scanned=42"));
        assert!(m.to_string().contains("physical=42"));
    }

    #[test]
    fn physical_and_logical_counters_split() {
        let mut m = WorkMeter::new();
        m.scan(10); // logical + physical
        m.scan_logical(10); // logical only (cache hit)
        m.hash_build(4); // physical only
        m.hash_reuse();
        assert_eq!(m.operand_rows_scanned, 20);
        assert_eq!(m.physical_rows_touched, 14);
        assert_eq!(m.hash_tables_built, 1);
        assert_eq!(m.hash_tables_reused, 1);
        // The paper's metric never sees the physical side.
        assert_eq!(m.linear_work(), 20);
        let mut shared = WorkMeter::new();
        shared.scan_logical(20);
        shared.scan(0);
        assert_eq!(
            shared.logical().operand_rows_scanned,
            m.logical().operand_rows_scanned
        );
    }

    #[test]
    fn cross_reuse_is_a_reuse_and_logical_ignores_cache_counters() {
        let mut m = WorkMeter::new();
        m.hash_reuse();
        m.hash_cross_reuse();
        m.cached_read();
        assert_eq!(m.hash_tables_reused, 2);
        assert_eq!(m.hash_tables_cross_reused, 1);
        assert_eq!(m.operand_reads_cached, 1);
        let l = m.logical();
        assert_eq!(l.hash_tables_cross_reused, 0);
        assert_eq!(l.operand_reads_cached, 0);
        let d = m.since(&WorkMeter::new());
        assert_eq!(d, m);
    }

    #[test]
    fn absorb_folds_all_counters() {
        let mut a = WorkMeter::new();
        a.scan(3);
        a.hash_build(2);
        let mut b = WorkMeter::new();
        b.scan_logical(7);
        b.hash_reuse();
        b.term();
        a.absorb(&b);
        assert_eq!(a.operand_rows_scanned, 10);
        assert_eq!(a.physical_rows_touched, 5);
        assert_eq!(a.hash_tables_built, 1);
        assert_eq!(a.hash_tables_reused, 1);
        assert_eq!(a.terms_evaluated, 1);
    }
}
