//! Grouping and aggregation over signed row batches.
//!
//! Aggregation over a *signed* batch produces, per group, signed accumulator
//! deltas: `SUM` adds `value * multiplicity`, `COUNT` adds the multiplicity.
//! Over an all-positive batch this is ordinary aggregation; over a
//! maintenance delta it is exactly the "summary delta" of
//! Mumick/Quass/Mumick (SIGMOD '97), which the paper's Section 8 cites as the
//! change representation for summary tables.
//!
//! `MIN`/`MAX` are supported **for insertions only**: an extremum is
//! mergeable under inserts (min-of-mins) but is not self-maintainable under
//! deletions without auxiliary per-group state; a minus tuple reaching a
//! MIN/MAX accumulator raises [`RelError::UnsupportedIncremental`] — the
//! classic self-maintainability boundary, surfaced instead of silently
//! producing wrong answers.

use super::SignedRows;
use crate::error::{RelError, RelResult};
use crate::expr::BoundExpr;
use crate::tuple::Tuple;
use crate::value::ValueType;
use std::collections::HashMap;

/// Aggregate functions supported by view definitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    /// Sum of a numeric expression. Self-maintainable under inserts and
    /// deletes.
    Sum,
    /// Count of rows (the expression is still evaluated for type checking but
    /// its value is ignored). Self-maintainable under inserts and deletes.
    Count,
    /// Minimum of a numeric/date expression. Insert-only incremental.
    Min,
    /// Maximum of a numeric/date expression. Insert-only incremental.
    Max,
}

impl AggFunc {
    /// True when the function stays maintainable when rows are deleted.
    pub fn survives_deletions(self) -> bool {
        matches!(self, AggFunc::Sum | AggFunc::Count)
    }
}

/// A bound aggregation specification: group-by keys plus aggregates.
#[derive(Clone, Debug)]
pub struct AggSpec {
    /// Expressions producing the group key.
    pub group_by: Vec<BoundExpr>,
    /// `(function, input expression, input type)` triples.
    pub aggs: Vec<(AggFunc, BoundExpr, ValueType)>,
}

/// One per-aggregate accumulator delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acc {
    /// Additive accumulator (SUM and COUNT): a signed raw delta.
    Sum(i64),
    /// Minimum seen (insert-only); `None` until a row contributes.
    Min(Option<i64>),
    /// Maximum seen (insert-only).
    Max(Option<i64>),
}

impl Acc {
    /// The neutral accumulator for `func`.
    pub fn identity(func: AggFunc) -> Acc {
        match func {
            AggFunc::Sum | AggFunc::Count => Acc::Sum(0),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    /// Merges another accumulator of the same shape.
    pub fn merge(&mut self, other: &Acc) {
        match (self, other) {
            (Acc::Sum(a), Acc::Sum(b)) => *a += b,
            (Acc::Min(a), Acc::Min(b)) => *a = opt_extreme(*a, *b, i64::min),
            (Acc::Max(a), Acc::Max(b)) => *a = opt_extreme(*a, *b, i64::max),
            _ => debug_assert!(false, "accumulator shape mismatch"),
        }
    }

    /// True when the accumulator is at its identity.
    pub fn is_identity(&self) -> bool {
        matches!(self, Acc::Sum(0) | Acc::Min(None) | Acc::Max(None))
    }

    /// The raw additive payload (SUM/COUNT only).
    pub fn sum(&self) -> Option<i64> {
        match self {
            Acc::Sum(v) => Some(*v),
            _ => None,
        }
    }
}

fn opt_extreme(a: Option<i64>, b: Option<i64>, f: impl Fn(i64, i64) -> i64) -> Option<i64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(f(x, y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Per-group signed accumulators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupAcc {
    /// One accumulator per aggregate, in spec order.
    pub accs: Vec<Acc>,
    /// Signed number of contributing rows (drives group birth/death).
    pub count: i64,
}

impl GroupAcc {
    /// The neutral accumulator row for a spec.
    pub fn identity(aggs: &[(AggFunc, ValueType)]) -> GroupAcc {
        GroupAcc {
            accs: aggs.iter().map(|(f, _)| Acc::identity(*f)).collect(),
            count: 0,
        }
    }

    /// Merges another group accumulator.
    pub fn merge(&mut self, other: &GroupAcc) {
        for (a, b) in self.accs.iter_mut().zip(&other.accs) {
            a.merge(b);
        }
        self.count += other.count;
    }

    /// True when nothing changed.
    pub fn is_identity(&self) -> bool {
        self.count == 0 && self.accs.iter().all(Acc::is_identity)
    }
}

/// Groups a signed batch, returning per-group accumulator deltas.
///
/// Groups whose every accumulator *and* count net to the identity are
/// dropped. A minus tuple contributing to a MIN/MAX accumulator is an
/// [`RelError::UnsupportedIncremental`] error.
///
/// Accepts any row slice (not just a whole [`SignedRows`] batch) so the
/// partition-parallel engine can aggregate contiguous chunks independently
/// and [`merge_groups`] the per-chunk maps.
pub fn group_rows(rows: &[(Tuple, i64)], spec: &AggSpec) -> RelResult<HashMap<Tuple, GroupAcc>> {
    let mut out: HashMap<Tuple, GroupAcc> = HashMap::new();
    for (row, mult) in rows {
        let mut key_vals = Vec::with_capacity(spec.group_by.len());
        for e in &spec.group_by {
            key_vals.push(e.eval(row)?);
        }
        let key = Tuple::new(key_vals);
        let acc = out.entry(key).or_insert_with(|| GroupAcc {
            accs: spec
                .aggs
                .iter()
                .map(|(f, _, _)| Acc::identity(*f))
                .collect(),
            count: 0,
        });
        for (i, (f, e, _ty)) in spec.aggs.iter().enumerate() {
            match f {
                AggFunc::Sum => {
                    let v = e.eval(row)?;
                    let raw = v.numeric_raw().ok_or_else(|| RelError::TypeMismatch {
                        context: format!("SUM over non-numeric value {v:?}"),
                    })?;
                    let term = raw.checked_mul(*mult).ok_or_else(overflow)?;
                    acc.accs[i].merge(&Acc::Sum(term));
                }
                AggFunc::Count => {
                    acc.accs[i].merge(&Acc::Sum(*mult));
                }
                AggFunc::Min | AggFunc::Max => {
                    if *mult < 0 {
                        return Err(RelError::UnsupportedIncremental(format!(
                            "{f:?} under deletions (a minus tuple reached the accumulator)"
                        )));
                    }
                    let v = e.eval(row)?;
                    let raw = extremum_raw(&v).ok_or_else(|| RelError::TypeMismatch {
                        context: format!("{f:?} over value {v:?}"),
                    })?;
                    let other = if matches!(f, AggFunc::Min) {
                        Acc::Min(Some(raw))
                    } else {
                        Acc::Max(Some(raw))
                    };
                    acc.accs[i].merge(&other);
                }
            }
        }
        acc.count += mult;
    }
    out.retain(|_, acc| !acc.is_identity());
    Ok(out)
}

/// Merges per-chunk group maps into one, re-applying the identity filter —
/// the reduce side of partition-parallel aggregation. Every accumulator is
/// commutative and associative under [`GroupAcc::merge`] (SUM/COUNT add;
/// MIN/MAX, insert-only, take extrema), so the merged map equals
/// [`group_rows`] over the concatenated input regardless of how the batch
/// was chunked or in which order chunks arrive.
pub fn merge_groups(
    maps: impl IntoIterator<Item = HashMap<Tuple, GroupAcc>>,
) -> HashMap<Tuple, GroupAcc> {
    let mut out: HashMap<Tuple, GroupAcc> = HashMap::new();
    for m in maps {
        for (key, acc) in m {
            match out.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().merge(&acc),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(acc);
                }
            }
        }
    }
    // A group can net to the identity only across chunks (each chunk map
    // already dropped its own identities).
    out.retain(|_, acc| !acc.is_identity());
    out
}

/// [`group_rows`] over `chunks` contiguous slices, merged — the sequential
/// reference for the partition-parallel aggregation path.
pub fn group_rows_chunked(
    rows: &SignedRows,
    spec: &AggSpec,
    chunks: usize,
) -> RelResult<HashMap<Tuple, GroupAcc>> {
    let size = rows.len().div_ceil(chunks.max(1)).max(1);
    let maps = rows
        .chunks(size)
        .map(|c| group_rows(c, spec))
        .collect::<RelResult<Vec<_>>>()?;
    Ok(merge_groups(maps))
}

/// Raw ordering payload for MIN/MAX: numerics and dates.
fn extremum_raw(v: &crate::value::Value) -> Option<i64> {
    use crate::value::Value;
    match v {
        Value::Int(x) | Value::Decimal(x) => Some(*x),
        Value::Date(d) => Some(*d as i64),
        Value::Str(_) => None,
    }
}

fn overflow() -> RelError {
    RelError::Overflow("aggregation".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use crate::schema::Schema;
    use crate::tup;
    use crate::value::Value;

    fn spec() -> AggSpec {
        let schema = Schema::of(&[("g", ValueType::Int), ("v", ValueType::Decimal)]);
        AggSpec {
            group_by: vec![ScalarExpr::col("g").bind(&schema).unwrap()],
            aggs: vec![
                (
                    AggFunc::Sum,
                    ScalarExpr::col("v").bind(&schema).unwrap(),
                    ValueType::Decimal,
                ),
                (
                    AggFunc::Count,
                    ScalarExpr::col("g").bind(&schema).unwrap(),
                    ValueType::Int,
                ),
            ],
        }
    }

    fn minmax_spec() -> AggSpec {
        let schema = Schema::of(&[("g", ValueType::Int), ("v", ValueType::Decimal)]);
        AggSpec {
            group_by: vec![ScalarExpr::col("g").bind(&schema).unwrap()],
            aggs: vec![
                (
                    AggFunc::Min,
                    ScalarExpr::col("v").bind(&schema).unwrap(),
                    ValueType::Decimal,
                ),
                (
                    AggFunc::Max,
                    ScalarExpr::col("v").bind(&schema).unwrap(),
                    ValueType::Decimal,
                ),
            ],
        }
    }

    #[test]
    fn positive_aggregation() {
        let rows = vec![
            (tup![Value::Int(1), Value::Decimal(100)], 1),
            (tup![Value::Int(1), Value::Decimal(250)], 2),
            (tup![Value::Int(2), Value::Decimal(10)], 1),
        ];
        let g = group_rows(&rows, &spec()).unwrap();
        assert_eq!(g.len(), 2);
        let a = &g[&tup![Value::Int(1)]];
        assert_eq!(a.accs, vec![Acc::Sum(600), Acc::Sum(3)]);
        assert_eq!(a.count, 3);
    }

    #[test]
    fn signed_aggregation_is_summary_delta() {
        let rows = vec![
            (tup![Value::Int(1), Value::Decimal(100)], -1),
            (tup![Value::Int(1), Value::Decimal(40)], 1),
        ];
        let g = group_rows(&rows, &spec()).unwrap();
        let a = &g[&tup![Value::Int(1)]];
        assert_eq!(a.accs, vec![Acc::Sum(-60), Acc::Sum(0)]);
        assert_eq!(a.count, 0);
    }

    #[test]
    fn fully_cancelled_groups_dropped() {
        let rows = vec![
            (tup![Value::Int(1), Value::Decimal(100)], 1),
            (tup![Value::Int(1), Value::Decimal(100)], -1),
        ];
        let g = group_rows(&rows, &spec()).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn min_max_over_inserts() {
        let rows = vec![
            (tup![Value::Int(1), Value::Decimal(100)], 1),
            (tup![Value::Int(1), Value::Decimal(40)], 2),
            (tup![Value::Int(1), Value::Decimal(70)], 1),
        ];
        let g = group_rows(&rows, &minmax_spec()).unwrap();
        let a = &g[&tup![Value::Int(1)]];
        assert_eq!(a.accs, vec![Acc::Min(Some(40)), Acc::Max(Some(100))]);
        assert_eq!(a.count, 4);
    }

    #[test]
    fn min_max_under_deletions_rejected() {
        let rows = vec![(tup![Value::Int(1), Value::Decimal(100)], -1)];
        let e = group_rows(&rows, &minmax_spec()).unwrap_err();
        assert!(matches!(e, RelError::UnsupportedIncremental(_)));
        assert!(!AggFunc::Min.survives_deletions());
        assert!(AggFunc::Sum.survives_deletions());
    }

    #[test]
    fn acc_merging_laws() {
        let mut a = Acc::Min(None);
        a.merge(&Acc::Min(Some(5)));
        a.merge(&Acc::Min(Some(9)));
        assert_eq!(a, Acc::Min(Some(5)));
        let mut b = Acc::Max(Some(3));
        b.merge(&Acc::Max(None));
        assert_eq!(b, Acc::Max(Some(3)));
        assert!(Acc::Sum(0).is_identity());
        assert!(!Acc::Sum(1).is_identity());
        assert!(Acc::Min(None).is_identity());
        assert_eq!(Acc::Sum(7).sum(), Some(7));
        assert_eq!(Acc::Min(Some(7)).sum(), None);
    }

    #[test]
    fn chunked_grouping_equals_sequential() {
        // Signed batch with cross-chunk cancellation: key 1's count nets to
        // zero only once the chunks merge.
        let rows: SignedRows = vec![
            (tup![Value::Int(1), Value::Decimal(100)], 1),
            (tup![Value::Int(2), Value::Decimal(10)], 2),
            (tup![Value::Int(1), Value::Decimal(100)], -1),
            (tup![Value::Int(3), Value::Decimal(7)], 1),
            (tup![Value::Int(2), Value::Decimal(5)], -1),
        ];
        let seq = group_rows(&rows, &spec()).unwrap();
        for chunks in [1, 2, 3, 5, 9] {
            let par = group_rows_chunked(&rows, &spec(), chunks).unwrap();
            assert_eq!(seq, par, "diverged at {chunks} chunks");
        }
        // Insert-only MIN/MAX merges to extrema across chunks too.
        let pos: SignedRows = (0..20)
            .map(|i| (tup![Value::Int(i % 3), Value::Decimal(100 - i)], 1))
            .collect();
        let seq = group_rows(&pos, &minmax_spec()).unwrap();
        assert_eq!(seq, group_rows_chunked(&pos, &minmax_spec(), 4).unwrap());
        // merge_groups drops fully-cancelled groups and tolerates any order.
        let a = group_rows(&rows[..2], &spec()).unwrap();
        let b = group_rows(&rows[2..], &spec()).unwrap();
        assert_eq!(merge_groups([b, a]), group_rows(&rows, &spec()).unwrap());
    }

    #[test]
    fn sum_over_string_is_error() {
        let schema = Schema::of(&[("g", ValueType::Int), ("s", ValueType::Str)]);
        let bad = AggSpec {
            group_by: vec![ScalarExpr::col("g").bind(&schema).unwrap()],
            aggs: vec![(
                AggFunc::Sum,
                ScalarExpr::col("s").bind(&schema).unwrap(),
                ValueType::Str,
            )],
        };
        let rows = vec![(tup![Value::Int(1), Value::str("x")], 1)];
        assert!(group_rows(&rows, &bad).is_err());

        // MIN over strings also rejected (ordering payload undefined).
        let bad = AggSpec {
            group_by: vec![ScalarExpr::col("g").bind(&schema).unwrap()],
            aggs: vec![(
                AggFunc::Min,
                ScalarExpr::col("s").bind(&schema).unwrap(),
                ValueType::Str,
            )],
        };
        assert!(group_rows(&rows, &bad).is_err());
    }
}
