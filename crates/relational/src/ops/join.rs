//! Join operators on signed row batches.

use super::SignedRows;
use crate::meter::WorkMeter;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// Hash equi-join.
///
/// Joins `left` and `right` on `left[left_keys[i]] == right[right_keys[i]]`
/// for all `i`, concatenating matching tuples (left columns first) and
/// multiplying their signed multiplicities. Builds the hash table on the
/// smaller batch.
pub fn hash_join(
    left: &SignedRows,
    left_keys: &[usize],
    right: &SignedRows,
    right_keys: &[usize],
    meter: &mut WorkMeter,
) -> SignedRows {
    assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
    if left_keys.is_empty() {
        return cross_join(left, right, meter);
    }
    // Build on the smaller side to bound memory; probe with the larger.
    let build_left = left.len() <= right.len();
    let (build, build_keys, probe, probe_keys) = if build_left {
        (left, left_keys, right, right_keys)
    } else {
        (right, right_keys, left, left_keys)
    };

    let mut table: HashMap<Tuple, Vec<(&Tuple, i64)>> = HashMap::with_capacity(build.len());
    for (t, m) in build {
        table
            .entry(t.project(build_keys))
            .or_default()
            .push((t, *m));
    }

    let mut out = Vec::new();
    for (t, m) in probe {
        if let Some(matches) = table.get(&t.project(probe_keys)) {
            for (bt, bm) in matches {
                let row = if build_left {
                    bt.concat(t)
                } else {
                    t.concat(bt)
                };
                out.push((row, m * bm));
            }
        }
    }
    meter.emit(out.len() as u64);
    out
}

/// Cross product, multiplying multiplicities. Used only when a view
/// definition genuinely has no equi-join between two source groups.
pub fn cross_join(left: &SignedRows, right: &SignedRows, meter: &mut WorkMeter) -> SignedRows {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for (lt, lm) in left {
        for (rt, rm) in right {
            out.push((lt.concat(rt), lm * rm));
        }
    }
    meter.emit(out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::value::Value;

    fn l() -> SignedRows {
        vec![
            (tup![Value::Int(1), Value::str("a")], 1),
            (tup![Value::Int(2), Value::str("b")], 2),
            (tup![Value::Int(3), Value::str("c")], -1),
        ]
    }

    fn r() -> SignedRows {
        vec![
            (tup![Value::Int(1), Value::Int(100)], 1),
            (tup![Value::Int(2), Value::Int(200)], -1),
            (tup![Value::Int(2), Value::Int(201)], 1),
            (tup![Value::Int(9), Value::Int(900)], 1),
        ]
    }

    #[test]
    fn equi_join_multiplies_signs() {
        let mut m = WorkMeter::new();
        let mut out = hash_join(&l(), &[0], &r(), &[0], &mut m);
        out.sort();
        // key 1: 1*1 = +1 row; key 2: 2*-1 and 2*1; key 3 and 9 unmatched.
        assert_eq!(out.len(), 3);
        let find = |k: i64, v: i64| {
            out.iter()
                .find(|(t, _)| t.get(0).as_int() == Some(k) && t.get(3).as_int() == Some(v))
                .map(|(_, m)| *m)
        };
        assert_eq!(find(1, 100), Some(1));
        assert_eq!(find(2, 200), Some(-2));
        assert_eq!(find(2, 201), Some(2));
        // Left columns come first regardless of build side.
        assert_eq!(out[0].0.arity(), 4);
        assert_eq!(out[0].0.get(1).as_str(), Some("a"));
    }

    #[test]
    fn column_order_stable_when_build_side_flips() {
        let mut m = WorkMeter::new();
        let small = vec![(tup![Value::Int(1), Value::str("x")], 1)];
        // left smaller -> build left; left bigger -> build right. Both must
        // emit left-columns-first.
        let a = hash_join(&small, &[0], &r(), &[0], &mut m);
        let big_left: SignedRows = (0..10)
            .map(|i| (tup![Value::Int(i % 2), Value::str("y")], 1))
            .collect();
        let b = hash_join(&big_left, &[0], &r(), &[0], &mut m);
        assert_eq!(a[0].0.get(1).as_str(), Some("x"));
        assert!(b.iter().all(|(t, _)| t.get(1).as_str() == Some("y")));
    }

    #[test]
    fn multi_column_keys() {
        let mut m = WorkMeter::new();
        let a = vec![(tup![Value::Int(1), Value::Int(2)], 1)];
        let b = vec![
            (tup![Value::Int(1), Value::Int(2)], 3),
            (tup![Value::Int(1), Value::Int(9)], 5),
        ];
        let out = hash_join(&a, &[0, 1], &b, &[0, 1], &mut m);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 3);
    }

    #[test]
    fn cross_product() {
        let mut m = WorkMeter::new();
        let out = cross_join(&l(), &r(), &mut m);
        assert_eq!(out.len(), 12);
        assert_eq!(m.rows_emitted, 12);
    }

    #[test]
    fn empty_key_list_is_cross_join() {
        let mut m = WorkMeter::new();
        let out = hash_join(&l(), &[], &r(), &[], &mut m);
        assert_eq!(out.len(), 12);
    }
}
