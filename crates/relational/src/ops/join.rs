//! Join operators on signed row batches.

use super::SignedRows;
use crate::meter::WorkMeter;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// Hash equi-join.
///
/// Joins `left` and `right` on `left[left_keys[i]] == right[right_keys[i]]`
/// for all `i`, concatenating matching tuples (left columns first) and
/// multiplying their signed multiplicities. Builds the hash table on the
/// smaller batch.
pub fn hash_join(
    left: &SignedRows,
    left_keys: &[usize],
    right: &SignedRows,
    right_keys: &[usize],
    meter: &mut WorkMeter,
) -> SignedRows {
    assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
    if left_keys.is_empty() {
        return cross_join(left, right, meter);
    }
    // Build on the smaller side to bound memory; probe with the larger.
    let build_left = left.len() <= right.len();
    let (build, build_keys, probe, probe_keys) = if build_left {
        (left, left_keys, right, right_keys)
    } else {
        (right, right_keys, left, left_keys)
    };
    let table = build_table(build, build_keys, meter);
    probe_table(build, &table, probe, probe_keys, build_left, meter)
}

/// A hash-join build table decoupled from the batch it indexes: key
/// projection → indices into the build batch, in batch order. Because it
/// holds indices rather than row references it has no lifetime tie and can
/// be interned (e.g. in an `Arc`) and probed many times — the shared-operand
/// term engine reuses one table across every term that joins the same
/// operand on the same key columns.
#[derive(Debug)]
pub struct BuiltTable {
    index: HashMap<Tuple, Vec<usize>>,
}

impl BuiltTable {
    /// Indexes `rows` by their projection onto `keys` without metering —
    /// for the partition-parallel build, whose chunks are indexed
    /// separately while the single aggregate [`WorkMeter::hash_build`] is
    /// charged once over the whole batch by the caller.
    pub fn index(rows: &SignedRows, keys: &[usize]) -> BuiltTable {
        let mut index: HashMap<Tuple, Vec<usize>> = HashMap::with_capacity(rows.len());
        for (i, (t, _)) in rows.iter().enumerate() {
            index.entry(t.project(keys)).or_default().push(i);
        }
        BuiltTable { index }
    }
}

/// Indexes `rows` by their projection onto `keys`. Charges one
/// [`WorkMeter::hash_build`] over the input size — a physical pass the
/// paper's logical metric does not model separately.
///
/// An **empty** key list degenerates to a single bucket holding every row:
/// a disguised cross join, not a hash build. It is metered as a plain
/// physical pass ([`WorkMeter::touch`]) so `hash_tables_built` counts only
/// genuine keyed builds — the quantity the static sharing plan predicts and
/// the conformance oracle compares against ([`hash_join`] never reaches
/// this path; it routes empty keys to [`cross_join`] outright).
pub fn build_table(rows: &SignedRows, keys: &[usize], meter: &mut WorkMeter) -> BuiltTable {
    if keys.is_empty() {
        meter.touch(rows.len() as u64);
    } else {
        meter.hash_build(rows.len() as u64);
    }
    BuiltTable::index(rows, keys)
}

/// Probes `table` (built over `build` — the same batch, same order) with
/// `probe`, concatenating matches with the build columns on the left when
/// `build_is_left`. Emission order and content are byte-identical to the
/// equivalent [`hash_join`] call.
pub fn probe_table(
    build: &SignedRows,
    table: &BuiltTable,
    probe: &SignedRows,
    probe_keys: &[usize],
    build_is_left: bool,
    meter: &mut WorkMeter,
) -> SignedRows {
    let mut out = Vec::new();
    for (t, m) in probe {
        if let Some(matches) = table.index.get(&t.project(probe_keys)) {
            for &bi in matches {
                let (bt, bm) = &build[bi];
                let row = if build_is_left {
                    bt.concat(t)
                } else {
                    t.concat(bt)
                };
                out.push((row, m * bm));
            }
        }
    }
    meter.emit(out.len() as u64);
    out
}

/// Cross product, multiplying multiplicities. Used only when a view
/// definition genuinely has no equi-join between two source groups.
pub fn cross_join(left: &SignedRows, right: &SignedRows, meter: &mut WorkMeter) -> SignedRows {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for (lt, lm) in left {
        for (rt, rm) in right {
            out.push((lt.concat(rt), lm * rm));
        }
    }
    meter.emit(out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::value::Value;

    fn l() -> SignedRows {
        vec![
            (tup![Value::Int(1), Value::str("a")], 1),
            (tup![Value::Int(2), Value::str("b")], 2),
            (tup![Value::Int(3), Value::str("c")], -1),
        ]
    }

    fn r() -> SignedRows {
        vec![
            (tup![Value::Int(1), Value::Int(100)], 1),
            (tup![Value::Int(2), Value::Int(200)], -1),
            (tup![Value::Int(2), Value::Int(201)], 1),
            (tup![Value::Int(9), Value::Int(900)], 1),
        ]
    }

    #[test]
    fn equi_join_multiplies_signs() {
        let mut m = WorkMeter::new();
        let mut out = hash_join(&l(), &[0], &r(), &[0], &mut m);
        out.sort();
        // key 1: 1*1 = +1 row; key 2: 2*-1 and 2*1; key 3 and 9 unmatched.
        assert_eq!(out.len(), 3);
        let find = |k: i64, v: i64| {
            out.iter()
                .find(|(t, _)| t.get(0).as_int() == Some(k) && t.get(3).as_int() == Some(v))
                .map(|(_, m)| *m)
        };
        assert_eq!(find(1, 100), Some(1));
        assert_eq!(find(2, 200), Some(-2));
        assert_eq!(find(2, 201), Some(2));
        // Left columns come first regardless of build side.
        assert_eq!(out[0].0.arity(), 4);
        assert_eq!(out[0].0.get(1).as_str(), Some("a"));
    }

    #[test]
    fn column_order_stable_when_build_side_flips() {
        let mut m = WorkMeter::new();
        let small = vec![(tup![Value::Int(1), Value::str("x")], 1)];
        // left smaller -> build left; left bigger -> build right. Both must
        // emit left-columns-first.
        let a = hash_join(&small, &[0], &r(), &[0], &mut m);
        let big_left: SignedRows = (0..10)
            .map(|i| (tup![Value::Int(i % 2), Value::str("y")], 1))
            .collect();
        let b = hash_join(&big_left, &[0], &r(), &[0], &mut m);
        assert_eq!(a[0].0.get(1).as_str(), Some("x"));
        assert!(b.iter().all(|(t, _)| t.get(1).as_str() == Some("y")));
    }

    #[test]
    fn multi_column_keys() {
        let mut m = WorkMeter::new();
        let a = vec![(tup![Value::Int(1), Value::Int(2)], 1)];
        let b = vec![
            (tup![Value::Int(1), Value::Int(2)], 3),
            (tup![Value::Int(1), Value::Int(9)], 5),
        ];
        let out = hash_join(&a, &[0, 1], &b, &[0, 1], &mut m);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 3);
    }

    #[test]
    fn cross_product() {
        let mut m = WorkMeter::new();
        let out = cross_join(&l(), &r(), &mut m);
        assert_eq!(out.len(), 12);
        assert_eq!(m.rows_emitted, 12);
    }

    #[test]
    fn empty_key_list_is_cross_join() {
        let mut m = WorkMeter::new();
        let out = hash_join(&l(), &[], &r(), &[], &mut m);
        assert_eq!(out.len(), 12);
    }

    #[test]
    fn cross_degeneration_keeps_operand_scan_accounting() {
        // Operand scans are charged by the scan operators (`scan_table` /
        // `scan_delta`), never inside a join — so the keyed path and the
        // empty-key cross degeneration must agree: neither touches
        // `operand_rows_scanned`, both charge their output as emitted. The
        // keyed path additionally charges its build pass as physical work;
        // the cross path builds no table and must charge none.
        let mut keyed = WorkMeter::new();
        hash_join(&l(), &[0], &r(), &[0], &mut keyed);
        let mut cross = WorkMeter::new();
        let out = hash_join(&l(), &[], &r(), &[], &mut cross);
        assert_eq!(keyed.operand_rows_scanned, 0);
        assert_eq!(cross.operand_rows_scanned, 0);
        assert_eq!(cross.rows_emitted, out.len() as u64);
        assert_eq!(keyed.hash_tables_built, 1);
        assert_eq!(keyed.physical_rows_touched, 3); // build side = smaller l()
        assert_eq!(cross.hash_tables_built, 0);
        assert_eq!(cross.physical_rows_touched, 0);
    }

    #[test]
    fn empty_key_build_meters_as_scan_not_hash_build() {
        // A degenerate single-bucket "build" is a disguised cross join: it
        // must charge the pass as physical rows touched, never as a hash
        // build the conformance oracle would expect the static plan to have
        // predicted.
        let mut m = WorkMeter::new();
        let t = build_table(&l(), &[], &mut m);
        assert_eq!(m.hash_tables_built, 0);
        assert_eq!(m.physical_rows_touched, l().len() as u64);
        // The single bucket still probes correctly (every probe row matches).
        let out = probe_table(&l(), &t, &r(), &[], true, &mut m);
        assert_eq!(out.len(), l().len() * r().len());
        // A keyed build over the same rows does charge a build.
        let mut k = WorkMeter::new();
        build_table(&l(), &[0], &mut k);
        assert_eq!(k.hash_tables_built, 1);
        assert_eq!(k.physical_rows_touched, l().len() as u64);
    }

    #[test]
    fn prebuilt_probe_matches_hash_join_bytes() {
        // probe_table over an interned BuiltTable must reproduce hash_join
        // exactly — same rows, same multiplicities, same emission order —
        // for both build-side orientations.
        let mut m1 = WorkMeter::new();
        let direct = hash_join(&l(), &[0], &r(), &[0], &mut m1);
        let mut m2 = WorkMeter::new();
        // l() is smaller, so hash_join built on the left.
        let table = build_table(&l(), &[0], &mut m2);
        let via_table = probe_table(&l(), &table, &r(), &[0], true, &mut m2);
        assert_eq!(direct, via_table);
        assert_eq!(m1.rows_emitted, m2.rows_emitted);
        // Flipped orientation: build on the right batch.
        let mut m3 = WorkMeter::new();
        let big_left: SignedRows = (0..10)
            .map(|i| (tup![Value::Int(i % 2), Value::str("y")], 1))
            .collect();
        let direct_flip = hash_join(&big_left, &[0], &r(), &[0], &mut m3);
        let mut m4 = WorkMeter::new();
        let rt = build_table(&r(), &[0], &mut m4);
        let via_flip = probe_table(&r(), &rt, &big_left, &[0], false, &mut m4);
        assert_eq!(direct_flip, via_flip);
    }
}
