//! Physical operators over signed row streams.
//!
//! Every operator consumes and produces a [`SignedRows`] batch: a list of
//! `(tuple, signed multiplicity)` pairs. Stored tables enter the pipeline
//! with positive multiplicities; delta relations enter with their signs.
//! Joins multiply multiplicities, so a minus tuple joined with stored rows
//! yields minus results — exactly the "handle plus and minus tuples
//! appropriately" semantics of the paper's maintenance expressions.

mod aggregate;
mod join;
mod partition;

pub use aggregate::{
    group_rows, group_rows_chunked, merge_groups, Acc, AggFunc, AggSpec, GroupAcc,
};
pub use join::{build_table, cross_join, hash_join, probe_table, BuiltTable};
pub use partition::{build_partitioned, part_of, probe_partitioned, PartitionedTable, Partitioner};

use crate::delta::DeltaRelation;
use crate::error::RelResult;
use crate::expr::{BoundExpr, BoundPredicate};
use crate::meter::WorkMeter;
use crate::table::Table;
use crate::tuple::Tuple;

/// A batch of rows with signed multiplicities.
pub type SignedRows = Vec<(Tuple, i64)>;

/// Scans a stored table, charging the meter for the full extent
/// (the term-execution model scans operands in their entirety).
pub fn scan_table(table: &Table, meter: &mut WorkMeter) -> SignedRows {
    meter.scan(table.len());
    table.iter().map(|(t, m)| (t.clone(), m as i64)).collect()
}

/// Scans a delta relation, charging the meter `|ΔV|` rows.
pub fn scan_delta(delta: &DeltaRelation, meter: &mut WorkMeter) -> SignedRows {
    meter.scan(delta.len());
    delta.iter().map(|(t, m)| (t.clone(), m)).collect()
}

/// Keeps rows satisfying `pred`; multiplicities pass through.
pub fn filter(rows: SignedRows, pred: &BoundPredicate) -> RelResult<SignedRows> {
    let mut out = Vec::with_capacity(rows.len());
    for (t, m) in rows {
        if pred.eval(&t)? {
            out.push((t, m));
        }
    }
    Ok(out)
}

/// Evaluates `exprs` over each row, producing projected rows.
pub fn project(
    rows: &SignedRows,
    exprs: &[BoundExpr],
    meter: &mut WorkMeter,
) -> RelResult<SignedRows> {
    let mut out = Vec::with_capacity(rows.len());
    for (t, m) in rows {
        let mut vals = Vec::with_capacity(exprs.len());
        for e in exprs {
            vals.push(e.eval(t)?);
        }
        out.push((Tuple::new(vals), *m));
    }
    meter.emit(out.len() as u64);
    Ok(out)
}

/// Collapses duplicate tuples by summing multiplicities, dropping zeros.
/// Used at term boundaries to keep intermediate batches small.
pub fn consolidate(rows: SignedRows) -> SignedRows {
    use std::collections::HashMap;
    let mut map: HashMap<Tuple, i64> = HashMap::with_capacity(rows.len());
    for (t, m) in rows {
        *map.entry(t).or_insert(0) += m;
    }
    map.into_iter().filter(|(_, m)| *m != 0).collect()
}

/// Sums the absolute multiplicities of a batch.
pub fn batch_len(rows: &SignedRows) -> u64 {
    rows.iter().map(|(_, m)| m.unsigned_abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Predicate, ScalarExpr};
    use crate::schema::Schema;
    use crate::tup;
    use crate::value::{Value, ValueType};

    fn schema() -> Schema {
        Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)])
    }

    fn rows() -> SignedRows {
        vec![
            (tup![Value::Int(1), Value::Int(10)], 2),
            (tup![Value::Int(2), Value::Int(20)], -1),
            (tup![Value::Int(3), Value::Int(30)], 1),
        ]
    }

    #[test]
    fn scan_charges_meter() {
        let mut t = Table::new("T", schema());
        t.insert_n(tup![Value::Int(1), Value::Int(2)], 3).unwrap();
        let mut m = WorkMeter::new();
        let rows = scan_table(&t, &mut m);
        assert_eq!(m.operand_rows_scanned, 3);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, 3);

        let mut d = DeltaRelation::new(schema());
        d.add(tup![Value::Int(9), Value::Int(9)], -2);
        let rows = scan_delta(&d, &mut m);
        assert_eq!(m.operand_rows_scanned, 5);
        assert_eq!(rows[0].1, -2);
    }

    #[test]
    fn filter_keeps_signs() {
        let p = Predicate::col_ge("a", Value::Int(2))
            .bind(&schema())
            .unwrap();
        let out = filter(rows(), &p).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|(_, m)| *m == -1));
    }

    #[test]
    fn project_evaluates_exprs() {
        let e = ScalarExpr::col("a")
            .add(ScalarExpr::col("b"))
            .bind(&schema())
            .unwrap();
        let mut m = WorkMeter::new();
        let out = project(&rows(), &[e], &mut m).unwrap();
        assert_eq!(out[0].0, tup![Value::Int(11)]);
        assert_eq!(out[1].1, -1);
        assert_eq!(m.rows_emitted, 3);
    }

    #[test]
    fn consolidate_cancels() {
        let rows = vec![
            (tup![Value::Int(1), Value::Int(1)], 2),
            (tup![Value::Int(1), Value::Int(1)], -2),
            (tup![Value::Int(2), Value::Int(2)], 1),
        ];
        let out = consolidate(rows);
        assert_eq!(out.len(), 1);
        assert_eq!(batch_len(&out), 1);
    }
}
