//! Hash partitioning of signed batches for partition-parallel joins.
//!
//! A `Comp` term's hash joins are embarrassingly partitionable by join key:
//! rows whose key projections are equal must land in the same partition, so
//! splitting the build and probe sides with the *same* hash over the
//! projected key **values** (not column indices — the two sides name their
//! keys at different positions) yields `P` completely independent
//! build/probe sub-joins whose concatenated output is multiset-identical to
//! the unpartitioned join.
//!
//! Three invariants the partition-parallel engine relies on:
//!
//! * **stability** — the hash is FNV-1a over the canonical wire form of
//!   each key value ([`value_to_wire`]), so a row's partition is a pure
//!   function of its key values: identical across runs, platforms, and the
//!   build/probe sides of one join. `std`'s `RandomState` is per-process
//!   seeded and would break both cross-run determinism and co-partitioning.
//! * **degenerate identity** — at `parts == 1` (and for empty key lists,
//!   the cross-join fallback) [`Partitioner::split`] returns the input as
//!   one chunk in original order, so the partitioned code path is
//!   byte-identical to the sequential one, not merely multiset-equal.
//! * **meter identity** — a partitioned build charges exactly one
//!   [`WorkMeter::hash_build`] over the *total* input (the same pass the
//!   sequential build performs, split across chunks), and each chunk probe
//!   charges its own emit; every counter therefore sums to precisely the
//!   sequential meter, partition count notwithstanding.

use super::join::{probe_table, BuiltTable};
use super::SignedRows;
use crate::meter::WorkMeter;
use crate::snapshot::value_to_wire;
use crate::tuple::Tuple;

/// The partition of `t` under `keys`: FNV-1a over the wire forms of the
/// projected key values, reduced modulo `parts`. Rows with equal key
/// projections always share a partition; `parts <= 1` or empty `keys`
/// always map to partition 0.
pub fn part_of(t: &Tuple, keys: &[usize], parts: usize) -> usize {
    if parts <= 1 || keys.is_empty() {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &k in keys {
        for b in value_to_wire(t.get(k)).as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Column separator so ("ab","c") and ("a","bc") hash apart.
        h ^= 0x1f;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % parts as u64) as usize
}

/// Splits [`SignedRows`] batches into co-partitionable chunks by key hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partitioner {
    parts: usize,
}

impl Partitioner {
    /// A partitioner producing `parts` chunks (floored at 1).
    pub fn new(parts: usize) -> Partitioner {
        Partitioner {
            parts: parts.max(1),
        }
    }

    /// Number of chunks every split produces.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Splits `rows` into `parts` chunks by [`part_of`] over `keys`. The
    /// split is stable: rows keep their input order within each chunk, and
    /// `parts == 1` (or an empty key list — the cross-join fallback, which
    /// has no key to co-partition on) returns the whole batch as chunk 0.
    pub fn split(&self, rows: &SignedRows, keys: &[usize]) -> Vec<SignedRows> {
        if self.parts == 1 || keys.is_empty() {
            let mut out = vec![Vec::new(); self.parts];
            out[0] = rows.clone();
            return out;
        }
        let mut out: Vec<SignedRows> =
            vec![Vec::with_capacity(rows.len() / self.parts + 1); self.parts];
        for (t, m) in rows {
            out[part_of(t, keys, self.parts)].push((t.clone(), *m));
        }
        out
    }

    /// Splits `rows` into `parts` contiguous chunks, ignoring keys — for
    /// operators that need no co-partitioning (cross joins iterate one side
    /// freely; aggregation merges commutatively). Chunk order concatenates
    /// back to the input order exactly.
    pub fn split_contiguous(&self, rows: &SignedRows) -> Vec<SignedRows> {
        if self.parts == 1 {
            return vec![rows.clone()];
        }
        let chunk = rows.len().div_ceil(self.parts).max(1);
        let mut out: Vec<SignedRows> = rows.chunks(chunk).map(|c| c.to_vec()).collect();
        out.resize(self.parts, Vec::new());
        out
    }
}

/// A hash-join build table split into co-partitioned chunks, owning the
/// build rows each chunk indexes. Like [`BuiltTable`] it has no lifetime
/// tie, so the shared-operand engine interns it (in an `Arc`) and probes it
/// from many terms — and because the partition count is baked into the
/// structure, a table built at one partitioning can never silently serve a
/// differently-partitioned probe.
#[derive(Debug)]
pub struct PartitionedTable {
    keys: Vec<usize>,
    chunks: Vec<(SignedRows, BuiltTable)>,
}

impl PartitionedTable {
    /// Assembles a table from pre-indexed chunks (as produced by a worker
    /// pool indexing [`Partitioner::split`] output). No metering: the
    /// caller charges the single aggregate build pass.
    pub fn from_indexed(keys: Vec<usize>, chunks: Vec<(SignedRows, BuiltTable)>) -> Self {
        PartitionedTable { keys, chunks }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.chunks.len()
    }

    /// The build-key column indices this table was partitioned and indexed
    /// on.
    pub fn keys(&self) -> &[usize] {
        &self.keys
    }

    /// The build rows of chunk `i`.
    pub fn chunk_rows(&self, i: usize) -> &SignedRows {
        &self.chunks[i].0
    }

    /// Total build rows across all chunks.
    pub fn total_rows(&self) -> usize {
        self.chunks.iter().map(|(r, _)| r.len()).sum()
    }

    /// Probes chunk `i` with `probe` rows already co-partitioned onto it
    /// (split with the same hash over `probe_keys`). Emission within the
    /// chunk is byte-identical to [`probe_table`] over that chunk.
    pub fn probe_chunk(
        &self,
        i: usize,
        probe: &SignedRows,
        probe_keys: &[usize],
        build_is_left: bool,
        meter: &mut WorkMeter,
    ) -> SignedRows {
        let (rows, table) = &self.chunks[i];
        probe_table(rows, table, probe, probe_keys, build_is_left, meter)
    }
}

/// Builds a partitioned table over `rows`, indexing each hash chunk
/// separately but charging exactly one [`WorkMeter::hash_build`] over the
/// total input — the same single pass the sequential [`build_table`]
/// performs, so partitioned and sequential meters are byte-identical.
///
/// [`build_table`]: super::join::build_table
pub fn build_partitioned(
    rows: &SignedRows,
    keys: &[usize],
    parts: usize,
    meter: &mut WorkMeter,
) -> PartitionedTable {
    let chunks = Partitioner::new(parts)
        .split(rows, keys)
        .into_iter()
        .map(|chunk| {
            let table = BuiltTable::index(&chunk, keys);
            (chunk, table)
        })
        .collect();
    meter.hash_build(rows.len() as u64);
    PartitionedTable {
        keys: keys.to_vec(),
        chunks,
    }
}

/// Sequential reference for the partition-parallel probe: co-partitions
/// `probe` onto the table's chunks and probes them in partition order.
/// Multiset-identical to [`probe_table`] over the unpartitioned build (and
/// byte-identical at one partition); the meter matches exactly — each chunk
/// charges its own emit and the emits sum to the sequential total.
pub fn probe_partitioned(
    table: &PartitionedTable,
    probe: &SignedRows,
    probe_keys: &[usize],
    build_is_left: bool,
    meter: &mut WorkMeter,
) -> SignedRows {
    let chunks = Partitioner::new(table.parts()).split(probe, probe_keys);
    let mut out = Vec::new();
    for (i, chunk) in chunks.iter().enumerate() {
        out.extend(table.probe_chunk(i, chunk, probe_keys, build_is_left, meter));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::join::{build_table, probe_table};
    use super::*;
    use crate::tup;
    use crate::value::Value;

    fn rows(n: i64) -> SignedRows {
        (0..n)
            .map(|i| {
                (
                    tup![
                        Value::Int(i % 7),
                        Value::str(format!("r{i}")),
                        Value::Int(i)
                    ],
                    if i % 5 == 0 { -1 } else { 1 + i % 3 },
                )
            })
            .collect()
    }

    fn sorted(mut r: SignedRows) -> SignedRows {
        r.sort();
        r
    }

    #[test]
    fn split_is_a_stable_partition_of_the_input() {
        let input = rows(100);
        for parts in [1, 2, 3, 8] {
            let chunks = Partitioner::new(parts).split(&input, &[0]);
            assert_eq!(chunks.len(), parts);
            // Every row lands in exactly one chunk; concatenation is a
            // permutation of the input.
            let total: usize = chunks.iter().map(Vec::len).sum();
            assert_eq!(total, input.len());
            let mut flat: SignedRows = chunks.iter().flatten().cloned().collect();
            flat.sort();
            assert_eq!(flat, sorted(input.clone()));
            // Stability: within each chunk, input order is preserved.
            for chunk in &chunks {
                for w in chunk.windows(2) {
                    let pos = |r: &(Tuple, i64)| input.iter().position(|x| x == r).unwrap();
                    assert!(pos(&w[0]) < pos(&w[1]));
                }
            }
        }
    }

    #[test]
    fn equal_keys_co_partition_across_sides_and_positions() {
        // The build side keys on column 0, the probe side on column 2: equal
        // *values* must land in the same partition regardless of position.
        let build = rows(50);
        let probe: SignedRows = (0..50)
            .map(|i| (tup![Value::str("x"), Value::Int(7), Value::Int(i % 7)], 1))
            .collect();
        let p = Partitioner::new(4);
        let bc = p.split(&build, &[0]);
        let pc = p.split(&probe, &[2]);
        for (bi, chunk) in bc.iter().enumerate() {
            for (t, _) in chunk {
                let key = t.get(0).clone();
                for (pi, pchunk) in pc.iter().enumerate() {
                    for (pt, _) in pchunk {
                        if pt.get(2) == &key {
                            assert_eq!(bi, pi, "key {key:?} split across partitions");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn single_partition_is_byte_identical_to_sequential() {
        let build = rows(40);
        let probe = rows(60);
        let mut seq = WorkMeter::new();
        let table = build_table(&build, &[0], &mut seq);
        let direct = probe_table(&build, &table, &probe, &[0], true, &mut seq);
        let mut par = WorkMeter::new();
        let pt = build_partitioned(&build, &[0], 1, &mut par);
        let via = probe_partitioned(&pt, &probe, &[0], true, &mut par);
        assert_eq!(direct, via); // order included
        assert_eq!(seq, par);
    }

    #[test]
    fn partitioned_probe_is_multiset_identical_with_equal_meter() {
        let build = rows(40);
        let probe = rows(60);
        let mut seq = WorkMeter::new();
        let table = build_table(&build, &[0], &mut seq);
        let direct = probe_table(&build, &table, &probe, &[0], true, &mut seq);
        for parts in [2, 3, 4, 8] {
            let mut par = WorkMeter::new();
            let pt = build_partitioned(&build, &[0], parts, &mut par);
            assert_eq!(pt.parts(), parts);
            assert_eq!(pt.total_rows(), build.len());
            let via = probe_partitioned(&pt, &probe, &[0], true, &mut par);
            assert_eq!(sorted(direct.clone()), sorted(via));
            // One aggregate build charge + summed emits = sequential meter.
            assert_eq!(seq, par, "meter diverged at {parts} partitions");
        }
        // Flipped orientation too.
        let mut seq2 = WorkMeter::new();
        let t2 = build_table(&probe, &[0], &mut seq2);
        let d2 = probe_table(&probe, &t2, &build, &[0], false, &mut seq2);
        let mut par2 = WorkMeter::new();
        let pt2 = build_partitioned(&probe, &[0], 3, &mut par2);
        let v2 = probe_partitioned(&pt2, &build, &[0], false, &mut par2);
        assert_eq!(sorted(d2), sorted(v2));
        assert_eq!(seq2, par2);
    }

    #[test]
    fn contiguous_split_concatenates_back_in_order() {
        let input = rows(10);
        for parts in [1, 3, 4, 16] {
            let chunks = Partitioner::new(parts).split_contiguous(&input);
            assert_eq!(chunks.len(), parts);
            let flat: SignedRows = chunks.into_iter().flatten().collect();
            assert_eq!(flat, input);
        }
    }

    #[test]
    fn part_of_is_stable_and_degenerate_on_empty_keys() {
        let t = tup![Value::Int(42), Value::str("k")];
        let p = part_of(&t, &[0, 1], 8);
        assert_eq!(p, part_of(&t, &[0, 1], 8));
        assert_eq!(part_of(&t, &[], 8), 0);
        assert_eq!(part_of(&t, &[0], 1), 0);
        // Empty keys route the whole batch to chunk 0 (cross-join fallback).
        let chunks = Partitioner::new(4).split(&rows(9), &[]);
        assert_eq!(chunks[0].len(), 9);
        assert!(chunks[1..].iter().all(Vec::is_empty));
    }
}
