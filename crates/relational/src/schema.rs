//! Column and relation schemas.

use crate::error::{RelError, RelResult};
use crate::value::ValueType;
use std::fmt;
use std::sync::Arc;

/// A named, typed column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    /// Column name, unique within its schema.
    pub name: String,
    /// Column type.
    pub ty: ValueType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns describing a relation.
///
/// Schemas are cheaply cloneable (`Arc` inside) and compared structurally.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<[Column]>,
}

impl Schema {
    /// Builds a schema from columns. Column names must be unique.
    pub fn new(columns: Vec<Column>) -> RelResult<Self> {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                if a.name == b.name {
                    return Err(RelError::DuplicateColumn(a.name.clone()));
                }
            }
        }
        Ok(Schema {
            columns: columns.into(),
        })
    }

    /// Convenience constructor from `(name, type)` pairs; panics on duplicates.
    pub fn of(cols: &[(&str, ValueType)]) -> Self {
        Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect())
            .expect("duplicate column name")
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Resolves a column name to its index.
    pub fn index_of(&self, name: &str) -> RelResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| RelError::UnknownColumn(name.to_string()))
    }

    /// True when `name` is a column of this schema.
    pub fn contains(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name == name)
    }

    /// Concatenates two schemas, prefixing clashes is the caller's job.
    pub fn concat(&self, other: &Schema) -> RelResult<Schema> {
        let mut cols: Vec<Column> = self.columns.to_vec();
        cols.extend(other.columns.iter().cloned());
        Schema::new(cols)
    }

    /// Returns a copy with every column renamed to `{prefix}.{name}`.
    pub fn qualified(&self, prefix: &str) -> Schema {
        let cols = self
            .columns
            .iter()
            .map(|c| Column::new(format!("{prefix}.{}", c.name), c.ty))
            .collect::<Vec<_>>();
        Schema {
            columns: cols.into(),
        }
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = f.debug_list();
        for c in self.columns.iter() {
            t.entry(&format_args!("{}: {}", c.name, c.ty));
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::of(&[
            ("a", ValueType::Int),
            ("b", ValueType::Str),
            ("c", ValueType::Date),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = abc();
        assert_eq!(s.index_of("a").unwrap(), 0);
        assert_eq!(s.index_of("c").unwrap(), 2);
        assert!(s.index_of("zzz").is_err());
        assert!(s.contains("b"));
        assert!(!s.contains("z"));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn duplicate_rejected() {
        let err = Schema::new(vec![
            Column::new("x", ValueType::Int),
            Column::new("x", ValueType::Str),
        ]);
        assert!(matches!(err, Err(RelError::DuplicateColumn(_))));
    }

    #[test]
    fn concat_and_qualify() {
        let s = abc();
        let q = s.qualified("t");
        assert_eq!(q.index_of("t.a").unwrap(), 0);
        let joined = q.concat(&abc().qualified("u")).unwrap();
        assert_eq!(joined.len(), 6);
        assert_eq!(joined.index_of("u.c").unwrap(), 5);
    }

    #[test]
    fn concat_detects_clash() {
        let s = abc();
        assert!(s.concat(&abc()).is_err());
    }
}
