//! Plain-text snapshots of tables, catalogs and delta relations.
//!
//! A line-oriented, dependency-free format for persisting warehouse state
//! (and for diffing states in bug reports). Deterministic: rows are written
//! in sorted order, so equal states serialize to equal bytes and the
//! [`digest64`] of a serialization is a stable content fingerprint — the
//! property the install WAL relies on to verify replayed deltas.
//!
//! ```text
//! # uww snapshot v1
//! TABLE CUSTOMER
//! SCHEMA c_custkey:int,c_name:str
//! ROW 1 <TAB> i:1 <TAB> s:Customer#000000001
//! END
//! ```

use crate::catalog::Catalog;
use crate::delta::DeltaRelation;
use crate::error::{RelError, RelResult};
use crate::schema::{Column, Schema};
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The header line every snapshot starts with.
pub const HEADER: &str = "# uww snapshot v1";

/// The header line every delta-set snapshot starts with.
pub const DELTA_HEADER: &str = "# uww deltas v1";

/// FNV-1a 64-bit digest of a string. Dependency-free and stable across
/// platforms; used as the content checksum of snapshots, WAL records and
/// serialized deltas.
pub fn digest64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Content digest of a table (over its deterministic serialization).
pub fn table_digest(table: &Table) -> u64 {
    digest64(&table_to_string(table))
}

/// Content digest of a whole catalog.
pub fn catalog_digest(catalog: &Catalog) -> u64 {
    digest64(&catalog_to_string(catalog))
}

/// Content digest of a delta relation.
pub fn delta_digest(delta: &DeltaRelation) -> u64 {
    digest64(&delta_to_string(delta))
}

/// Serializes one value to its wire form (`i:`/`d:`/`t:`/`s:` tagged).
pub fn value_to_wire(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

/// Parses a value from its wire form.
pub fn value_from_wire(s: &str) -> RelResult<Value> {
    parse_value(s)
}

/// Serializes one value.
fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "i:{i}");
        }
        Value::Decimal(d) => {
            let _ = write!(out, "d:{d}");
        }
        Value::Date(d) => {
            let _ = write!(out, "t:{d}");
        }
        Value::Str(s) => {
            out.push_str("s:");
            for c in s.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '\t' => out.push_str("\\t"),
                    '\n' => out.push_str("\\n"),
                    other => out.push(other),
                }
            }
        }
    }
}

fn parse_value(s: &str) -> RelResult<Value> {
    let bad = || RelError::SchemaMismatch {
        detail: format!("malformed snapshot value: {s}"),
    };
    let (tag, body) = s.split_once(':').ok_or_else(bad)?;
    Ok(match tag {
        "i" => Value::Int(body.parse().map_err(|_| bad())?),
        "d" => Value::Decimal(body.parse().map_err(|_| bad())?),
        "t" => Value::Date(body.parse().map_err(|_| bad())?),
        "s" => {
            let mut out = String::with_capacity(body.len());
            let mut chars = body.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    match chars.next() {
                        Some('\\') => out.push('\\'),
                        Some('t') => out.push('\t'),
                        Some('n') => out.push('\n'),
                        _ => return Err(bad()),
                    }
                } else {
                    out.push(c);
                }
            }
            Value::str(out)
        }
        _ => return Err(bad()),
    })
}

fn type_name(t: ValueType) -> &'static str {
    match t {
        ValueType::Int => "int",
        ValueType::Decimal => "decimal",
        ValueType::Str => "str",
        ValueType::Date => "date",
    }
}

fn parse_type(s: &str) -> RelResult<ValueType> {
    Ok(match s {
        "int" => ValueType::Int,
        "decimal" => ValueType::Decimal,
        "str" => ValueType::Str,
        "date" => ValueType::Date,
        other => {
            return Err(RelError::SchemaMismatch {
                detail: format!("unknown snapshot type: {other}"),
            })
        }
    })
}

fn schema_to_spec(schema: &Schema) -> String {
    schema
        .columns()
        .iter()
        .map(|c| format!("{}:{}", c.name, type_name(c.ty)))
        .collect::<Vec<_>>()
        .join(",")
}

fn schema_from_spec(spec: &str) -> RelResult<Schema> {
    let mut cols = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (cname, ty) = part
            .split_once(':')
            .ok_or_else(|| RelError::SchemaMismatch {
                detail: format!("malformed column spec: {part}"),
            })?;
        cols.push(Column::new(cname, parse_type(ty)?));
    }
    Schema::new(cols)
}

/// Serializes a single table.
pub fn table_to_string(table: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "TABLE {}", table.name());
    let _ = writeln!(out, "SCHEMA {}", schema_to_spec(table.schema()));
    for (row, mult) in table.sorted_rows() {
        let _ = write!(out, "ROW {mult}");
        for v in row.values() {
            out.push('\t');
            write_value(v, &mut out);
        }
        out.push('\n');
    }
    out.push_str("END\n");
    out
}

/// Serializes a whole catalog (tables in name order).
pub fn catalog_to_string(catalog: &Catalog) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for table in catalog.iter() {
        out.push_str(&table_to_string(table));
    }
    out
}

/// Parses a catalog snapshot.
pub fn catalog_from_str(s: &str) -> RelResult<Catalog> {
    let mut lines = s.lines().peekable();
    match lines.next() {
        Some(h) if h == HEADER => {}
        other => {
            return Err(RelError::SchemaMismatch {
                detail: format!("bad snapshot header: {other:?}"),
            })
        }
    }
    let mut catalog = Catalog::new();
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let name = line
            .strip_prefix("TABLE ")
            .ok_or_else(|| RelError::SchemaMismatch {
                detail: format!("expected TABLE line, got: {line}"),
            })?;
        let schema_line = lines.next().ok_or_else(|| RelError::SchemaMismatch {
            detail: "truncated snapshot: missing SCHEMA".to_string(),
        })?;
        let spec = schema_line
            .strip_prefix("SCHEMA ")
            .ok_or_else(|| RelError::SchemaMismatch {
                detail: format!("expected SCHEMA line, got: {schema_line}"),
            })?;
        let schema = schema_from_spec(spec)?;
        let mut table = Table::new(name, schema);
        loop {
            let row_line = lines.next().ok_or_else(|| RelError::SchemaMismatch {
                detail: "truncated snapshot: missing END".to_string(),
            })?;
            if row_line == "END" {
                break;
            }
            let rest = row_line
                .strip_prefix("ROW ")
                .ok_or_else(|| RelError::SchemaMismatch {
                    detail: format!("expected ROW or END, got: {row_line}"),
                })?;
            let mut fields = rest.split('\t');
            let mult: u64 = fields.next().and_then(|m| m.parse().ok()).ok_or_else(|| {
                RelError::SchemaMismatch {
                    detail: format!("bad multiplicity in: {row_line}"),
                }
            })?;
            let values: Vec<Value> = fields.map(parse_value).collect::<RelResult<_>>()?;
            table.insert_n(Tuple::new(values), mult)?;
        }
        catalog.register(table)?;
    }
    Ok(catalog)
}

/// Serializes a delta relation (signed multiplicities, sorted rows):
///
/// ```text
/// SCHEMA k:int,v:decimal
/// ROW -2 <TAB> i:1 <TAB> d:100
/// END
/// ```
pub fn delta_to_string(delta: &DeltaRelation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "SCHEMA {}", schema_to_spec(delta.schema()));
    for (row, mult) in delta.sorted_rows() {
        let _ = write!(out, "ROW {mult}");
        for v in row.values() {
            out.push('\t');
            write_value(v, &mut out);
        }
        out.push('\n');
    }
    out.push_str("END\n");
    out
}

/// Parses a delta relation serialized by [`delta_to_string`].
pub fn delta_from_str(s: &str) -> RelResult<DeltaRelation> {
    let mut lines = s.lines();
    parse_delta_body(&mut lines)
}

fn parse_delta_body<'a>(lines: &mut impl Iterator<Item = &'a str>) -> RelResult<DeltaRelation> {
    let schema_line = lines.next().ok_or_else(|| RelError::SchemaMismatch {
        detail: "truncated delta: missing SCHEMA".to_string(),
    })?;
    let spec = schema_line
        .strip_prefix("SCHEMA ")
        .ok_or_else(|| RelError::SchemaMismatch {
            detail: format!("expected SCHEMA line, got: {schema_line}"),
        })?;
    let mut delta = DeltaRelation::new(schema_from_spec(spec)?);
    loop {
        let row_line = lines.next().ok_or_else(|| RelError::SchemaMismatch {
            detail: "truncated delta: missing END".to_string(),
        })?;
        if row_line == "END" {
            break;
        }
        let rest = row_line
            .strip_prefix("ROW ")
            .ok_or_else(|| RelError::SchemaMismatch {
                detail: format!("expected ROW or END, got: {row_line}"),
            })?;
        let mut fields = rest.split('\t');
        let mult: i64 =
            fields
                .next()
                .and_then(|m| m.parse().ok())
                .ok_or_else(|| RelError::SchemaMismatch {
                    detail: format!("bad signed multiplicity in: {row_line}"),
                })?;
        let values: Vec<Value> = fields.map(parse_value).collect::<RelResult<_>>()?;
        delta.add(Tuple::new(values), mult);
    }
    Ok(delta)
}

/// Serializes a set of named deltas (a change batch) in name order.
pub fn deltas_to_string(deltas: &BTreeMap<String, DeltaRelation>) -> String {
    let mut out = String::from(DELTA_HEADER);
    out.push('\n');
    for (name, delta) in deltas {
        let _ = writeln!(out, "DELTA {name}");
        out.push_str(&delta_to_string(delta));
    }
    out
}

/// Parses a change batch serialized by [`deltas_to_string`].
pub fn deltas_from_str(s: &str) -> RelResult<BTreeMap<String, DeltaRelation>> {
    let mut lines = s.lines().peekable();
    match lines.next() {
        Some(h) if h == DELTA_HEADER => {}
        other => {
            return Err(RelError::SchemaMismatch {
                detail: format!("bad delta-set header: {other:?}"),
            })
        }
    }
    let mut out = BTreeMap::new();
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let name = line
            .strip_prefix("DELTA ")
            .ok_or_else(|| RelError::SchemaMismatch {
                detail: format!("expected DELTA line, got: {line}"),
            })?;
        let delta = parse_delta_body(&mut lines)?;
        if out.insert(name.to_string(), delta).is_some() {
            return Err(RelError::SchemaMismatch {
                detail: format!("duplicate delta for {name}"),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    fn sample_catalog() -> Catalog {
        let mut t = Table::new(
            "T",
            Schema::of(&[
                ("k", ValueType::Int),
                ("p", ValueType::Decimal),
                ("s", ValueType::Str),
                ("d", ValueType::Date),
            ]),
        );
        t.insert_n(
            tup![
                Value::Int(-5),
                Value::Decimal(1234),
                Value::str("tab\there\nand newline \\ backslash"),
                Value::Date(9181)
            ],
            3,
        )
        .unwrap();
        t.insert(tup![
            Value::Int(1),
            Value::Decimal(0),
            Value::str(""),
            Value::Date(0)
        ])
        .unwrap();
        let mut u = Table::new("U", Schema::of(&[("a", ValueType::Int)]));
        u.insert(tup![Value::Int(42)]).unwrap();
        let mut c = Catalog::new();
        c.register(t).unwrap();
        c.register(u).unwrap();
        c
    }

    #[test]
    fn round_trip_preserves_everything() {
        let c = sample_catalog();
        let text = catalog_to_string(&c);
        let back = catalog_from_str(&text).unwrap();
        assert_eq!(back.len(), 2);
        for t in c.iter() {
            assert!(back.get(t.name()).unwrap().same_contents(t), "{}", t.name());
        }
        // Deterministic output.
        assert_eq!(text, catalog_to_string(&back));
    }

    #[test]
    fn empty_catalog_round_trips() {
        let c = Catalog::new();
        let text = catalog_to_string(&c);
        let back = catalog_from_str(&text).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_snapshots_rejected() {
        assert!(catalog_from_str("").is_err());
        assert!(catalog_from_str("# wrong header\n").is_err());
        let missing_end = format!("{HEADER}\nTABLE T\nSCHEMA k:int\nROW 1\ti:1\n");
        assert!(catalog_from_str(&missing_end).is_err());
        let bad_value = format!("{HEADER}\nTABLE T\nSCHEMA k:int\nROW 1\tz:1\nEND\n");
        assert!(catalog_from_str(&bad_value).is_err());
        let bad_type = format!("{HEADER}\nTABLE T\nSCHEMA k:float\nEND\n");
        assert!(catalog_from_str(&bad_type).is_err());
        let bad_mult = format!("{HEADER}\nTABLE T\nSCHEMA k:int\nROW x\ti:1\nEND\n");
        assert!(catalog_from_str(&bad_mult).is_err());
        // A snapshot naming the same table twice is damage, not a merge.
        let dup = format!("{HEADER}\nTABLE T\nSCHEMA k:int\nEND\nTABLE T\nSCHEMA k:int\nEND\n");
        assert!(matches!(
            catalog_from_str(&dup),
            Err(RelError::DuplicateRelation(n)) if n == "T"
        ));
    }

    #[test]
    fn delta_round_trip_preserves_signs() {
        let mut d = DeltaRelation::new(Schema::of(&[("k", ValueType::Int), ("s", ValueType::Str)]));
        d.add(tup![Value::Int(1), Value::str("minus\trow")], -3);
        d.add(tup![Value::Int(2), Value::str("plus")], 2);
        let text = delta_to_string(&d);
        let back = delta_from_str(&text).unwrap();
        assert_eq!(
            back.multiplicity(&tup![Value::Int(1), Value::str("minus\trow")]),
            -3
        );
        assert_eq!(
            back.multiplicity(&tup![Value::Int(2), Value::str("plus")]),
            2
        );
        assert_eq!(text, delta_to_string(&back));
        assert_eq!(delta_digest(&d), delta_digest(&back));
    }

    #[test]
    fn delta_set_round_trip() {
        let mut a = DeltaRelation::new(Schema::of(&[("k", ValueType::Int)]));
        a.add(tup![Value::Int(7)], -1);
        let b = DeltaRelation::new(Schema::of(&[("x", ValueType::Str)]));
        let mut m = BTreeMap::new();
        m.insert("A".to_string(), a);
        m.insert("B".to_string(), b);
        let text = deltas_to_string(&m);
        let back = deltas_from_str(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back["A"].multiplicity(&tup![Value::Int(7)]), -1);
        assert!(back["B"].is_empty());
        // Malformed inputs rejected.
        assert!(deltas_from_str("junk").is_err());
        assert!(deltas_from_str(&format!("{DELTA_HEADER}\nDELTA A\nSCHEMA k:int\n")).is_err());
    }

    #[test]
    fn digests_are_content_fingerprints() {
        let c = sample_catalog();
        assert_eq!(catalog_digest(&c), catalog_digest(&c));
        let t = c.get("T").unwrap();
        let mut t2 = t.clone();
        assert_eq!(table_digest(t), table_digest(&t2));
        t2.insert(tup![
            Value::Int(99),
            Value::Decimal(1),
            Value::str("x"),
            Value::Date(1)
        ])
        .unwrap();
        assert_ne!(table_digest(t), table_digest(&t2));
        assert_ne!(digest64("a"), digest64("b"));
        assert_eq!(digest64(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn value_escapes_round_trip() {
        for v in [
            Value::str("plain"),
            Value::str("with\ttab"),
            Value::str("with\nnewline"),
            Value::str("with\\backslash"),
            Value::str("\\t literal"),
        ] {
            let mut s = String::new();
            write_value(&v, &mut s);
            assert_eq!(parse_value(&s).unwrap(), v, "{s}");
        }
    }
}
