//! Tokenizer for the view-definition SQL dialect.

use crate::error::{RelError, RelResult};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword (uppercased): SELECT, FROM, WHERE, AND, OR, NOT, GROUP, BY,
    /// AS, SUM, COUNT, MIN, MAX, DATE.
    Keyword(String),
    /// Identifier, possibly qualified (`C.c_custkey` lexes as Ident("C"),
    /// Dot, Ident("c_custkey") — the parser reassembles).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal as scale-2 fixed point.
    Decimal(i64),
    /// Single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "GROUP", "BY", "AS", "SUM", "COUNT", "MIN",
    "MAX", "DATE",
];

/// Lexes `input` into tokens.
pub fn lex(input: &str) -> RelResult<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let err = |msg: String| RelError::SchemaMismatch { detail: msg };

    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // Comment `--` or minus.
                if chars.get(i + 1) == Some(&'-') {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(err(format!("unexpected character: {c}")));
                }
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some('>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(err("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    // Decimal: exactly up to 2 fraction digits carried.
                    i += 1;
                    let frac_start = i;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    let whole: i64 = chars[start..frac_start - 1]
                        .iter()
                        .collect::<String>()
                        .parse()
                        .map_err(|_| err("bad number".into()))?;
                    let frac_str: String = chars[frac_start..i].iter().collect();
                    if frac_str.len() > 2 {
                        return Err(err(format!(
                            "decimal literal {whole}.{frac_str} exceeds scale 2"
                        )));
                    }
                    let mut frac: i64 = frac_str.parse().map_err(|_| err("bad number".into()))?;
                    if frac_str.len() == 1 {
                        frac *= 10;
                    }
                    out.push(Token::Decimal(whole * 100 + frac));
                } else {
                    let n: i64 = chars[start..i]
                        .iter()
                        .collect::<String>()
                        .parse()
                        .map_err(|_| err("bad number".into()))?;
                    out.push(Token::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '#')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word));
                }
            }
            other => return Err(err(format!("unexpected character: {other}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_query() {
        let toks =
            lex("SELECT a.x, SUM(b.y) FROM t a WHERE a.x >= 1.50 -- c\nGROUP BY a.x").unwrap();
        assert!(toks.contains(&Token::Keyword("SELECT".into())));
        assert!(toks.contains(&Token::Decimal(150)));
        assert!(toks.contains(&Token::Ge));
        // Comment swallowed.
        assert!(!toks
            .iter()
            .any(|t| matches!(t, Token::Ident(s) if s == "c")));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = lex("'O''Hare'").unwrap();
        assert_eq!(toks, vec![Token::Str("O'Hare".into())]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(lex("1.5").unwrap(), vec![Token::Decimal(150)]);
        assert_eq!(lex("0.07").unwrap(), vec![Token::Decimal(7)]);
        assert!(lex("1.234").is_err()); // too many fraction digits
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("< <= > >= = <> !=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = lex("select From wHeRe").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into())
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT @").is_err());
    }
}
