//! A small SQL dialect for authoring view definitions.
//!
//! Covers exactly the SELECT-FROM-WHERE-GROUPBY class the paper's
//! maintenance expressions handle; see [`parse_view_def`] for the grammar.

mod lexer;
mod parser;

pub use lexer::{lex, Token};
pub use parser::parse_view_def;
