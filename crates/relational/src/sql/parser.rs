//! Recursive-descent parser producing [`ViewDef`]s from SQL text.
//!
//! Supported grammar (the SELECT-FROM-WHERE-GROUPBY class the paper's
//! maintenance expressions cover):
//!
//! ```text
//! SELECT item (, item)*
//! FROM   table [alias] (, table [alias])*
//! [WHERE  boolean]
//! [GROUP BY colref (, colref)*]
//!
//! item    := SUM(expr) [AS name] | COUNT(expr | *) [AS name] | expr [AS name]
//! boolean := conj (OR conj)* ; conj := unit (AND unit)* ; unit := [NOT] atom
//! atom    := '(' boolean ')' | expr cmp expr
//! expr    := mulexp (('+'|'-') mulexp)* ; mulexp := prim ('*' prim)*
//! prim    := literal | DATE 'YYYY-MM-DD' | colref | '(' expr ')'
//! ```
//!
//! Top-level `WHERE` conjuncts of the form `col = col` across two different
//! sources become equi-join conditions; everything else becomes a filter.
//! Unqualified column references are auto-qualified when the view has a
//! single source.

use super::lexer::{lex, Token};
use crate::error::{RelError, RelResult};
use crate::expr::{CmpOp, Predicate, ScalarExpr};
use crate::ops::AggFunc;
use crate::value::{ymd_to_days, Value};
use crate::viewdef::{AggregateColumn, EquiJoin, OutputColumn, ViewDef, ViewOutput, ViewSource};

/// Parses SQL text into a [`ViewDef`] named `view_name`.
pub fn parse_view_def(view_name: &str, sql: &str) -> RelResult<ViewDef> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let def = p.view_def(view_name)?;
    if p.pos != p.tokens.len() {
        return Err(p.err(&format!("trailing input at token {}", p.pos)));
    }
    Ok(def)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

enum SelectItem {
    Agg {
        func: AggFunc,
        input: ScalarExpr,
        name: Option<String>,
    },
    Plain {
        expr: ScalarExpr,
        name: Option<String>,
    },
}

impl Parser {
    fn err(&self, msg: &str) -> RelError {
        RelError::SchemaMismatch {
            detail: format!("SQL parse error: {msg}"),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> RelResult<()> {
        match self.next() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(self.err(&format!("expected {kw}, got {other:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> RelResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(&format!("expected identifier, got {other:?}"))),
        }
    }

    fn view_def(&mut self, view_name: &str) -> RelResult<ViewDef> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.select_item()?);
        }

        self.expect_keyword("FROM")?;
        let mut sources = vec![self.from_item()?];
        while self.eat(&Token::Comma) {
            sources.push(self.from_item()?);
        }

        let where_clause = if self.keyword("WHERE") {
            Some(self.boolean()?)
        } else {
            None
        };

        let group_by = if self.keyword("GROUP") {
            self.expect_keyword("BY")?;
            let mut cols = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                cols.push(self.expr()?);
            }
            Some(cols)
        } else {
            None
        };

        self.assemble(view_name, items, sources, where_clause, group_by)
    }

    fn select_item(&mut self) -> RelResult<SelectItem> {
        let simple_agg = if self.keyword("SUM") {
            Some(AggFunc::Sum)
        } else if self.keyword("MIN") {
            Some(AggFunc::Min)
        } else if self.keyword("MAX") {
            Some(AggFunc::Max)
        } else {
            None
        };
        let item = if let Some(func) = simple_agg {
            self.expect_token(Token::LParen)?;
            let input = self.expr()?;
            self.expect_token(Token::RParen)?;
            SelectItem::Agg {
                func,
                input,
                name: None,
            }
        } else if self.keyword("COUNT") {
            self.expect_token(Token::LParen)?;
            let input = if self.eat(&Token::Star) {
                // COUNT(*): the counted expression is irrelevant; use a
                // constant.
                ScalarExpr::lit(Value::Int(1))
            } else {
                self.expr()?
            };
            self.expect_token(Token::RParen)?;
            SelectItem::Agg {
                func: AggFunc::Count,
                input,
                name: None,
            }
        } else {
            SelectItem::Plain {
                expr: self.expr()?,
                name: None,
            }
        };
        let name = if self.keyword("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(match item {
            SelectItem::Agg { func, input, .. } => SelectItem::Agg { func, input, name },
            SelectItem::Plain { expr, .. } => SelectItem::Plain { expr, name },
        })
    }

    fn expect_token(&mut self, t: Token) -> RelResult<()> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            other => Err(self.err(&format!("expected {t:?}, got {other:?}"))),
        }
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM-list item
    fn from_item(&mut self) -> RelResult<ViewSource> {
        let view = self.ident()?;
        let alias = match self.peek() {
            Some(Token::Ident(_)) => self.ident()?,
            _ => view.clone(),
        };
        Ok(ViewSource { view, alias })
    }

    // boolean := conj (OR conj)*
    fn boolean(&mut self) -> RelResult<Predicate> {
        let mut p = self.conjunction()?;
        while self.keyword("OR") {
            let rhs = self.conjunction()?;
            p = Predicate::Or(Box::new(p), Box::new(rhs));
        }
        Ok(p)
    }

    fn conjunction(&mut self) -> RelResult<Predicate> {
        let mut p = self.boolean_unit()?;
        while self.keyword("AND") {
            let rhs = self.boolean_unit()?;
            p = Predicate::And(Box::new(p), Box::new(rhs));
        }
        Ok(p)
    }

    fn boolean_unit(&mut self) -> RelResult<Predicate> {
        if self.keyword("NOT") {
            return Ok(Predicate::Not(Box::new(self.boolean_unit()?)));
        }
        // Parenthesized boolean vs parenthesized arithmetic: try boolean by
        // backtracking.
        if self.peek() == Some(&Token::LParen) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.boolean() {
                if self.eat(&Token::RParen) {
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => return Err(self.err(&format!("expected comparison, got {other:?}"))),
        };
        let rhs = self.expr()?;
        Ok(Predicate::Cmp(op, lhs, rhs))
    }

    fn expr(&mut self) -> RelResult<ScalarExpr> {
        let mut e = self.mulexp()?;
        loop {
            if self.eat(&Token::Plus) {
                e = ScalarExpr::Add(Box::new(e), Box::new(self.mulexp()?));
            } else if self.eat(&Token::Minus) {
                e = ScalarExpr::Sub(Box::new(e), Box::new(self.mulexp()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn mulexp(&mut self) -> RelResult<ScalarExpr> {
        let mut e = self.prim()?;
        while self.eat(&Token::Star) {
            e = ScalarExpr::Mul(Box::new(e), Box::new(self.prim()?));
        }
        Ok(e)
    }

    fn prim(&mut self) -> RelResult<ScalarExpr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(ScalarExpr::lit(Value::Int(n))),
            Some(Token::Decimal(d)) => Ok(ScalarExpr::lit(Value::Decimal(d))),
            Some(Token::Str(s)) => Ok(ScalarExpr::lit(Value::str(s))),
            Some(Token::Keyword(k)) if k == "DATE" => match self.next() {
                Some(Token::Str(s)) => {
                    Ok(ScalarExpr::lit(parse_date(&s).ok_or_else(|| {
                        self.err(&format!("bad date literal '{s}'"))
                    })?))
                }
                other => Err(self.err(&format!("expected date string, got {other:?}"))),
            },
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect_token(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(first)) => {
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    Ok(ScalarExpr::Col(format!("{first}.{col}")))
                } else {
                    // Unqualified; resolved during assembly.
                    Ok(ScalarExpr::Col(first))
                }
            }
            other => Err(self.err(&format!("expected expression, got {other:?}"))),
        }
    }

    fn assemble(
        &self,
        view_name: &str,
        items: Vec<SelectItem>,
        sources: Vec<ViewSource>,
        where_clause: Option<Predicate>,
        group_by: Option<Vec<ScalarExpr>>,
    ) -> RelResult<ViewDef> {
        // Auto-qualify unqualified columns when there is a single source.
        let qualify = |e: ScalarExpr| -> RelResult<ScalarExpr> {
            qualify_expr(e, &sources).map_err(|c| self.err(&c))
        };

        // Split WHERE into equi-joins and filters.
        let mut joins = Vec::new();
        let mut filters = Vec::new();
        if let Some(pred) = where_clause {
            for conjunct in split_conjuncts(pred) {
                match conjunct {
                    Predicate::Cmp(CmpOp::Eq, ScalarExpr::Col(a), ScalarExpr::Col(b)) => {
                        let a = qualify_col(&a, &sources).map_err(|c| self.err(&c))?;
                        let b = qualify_col(&b, &sources).map_err(|c| self.err(&c))?;
                        let sa = a.split_once('.').map(|x| x.0.to_string());
                        let sb = b.split_once('.').map(|x| x.0.to_string());
                        if sa != sb {
                            joins.push(EquiJoin::new(a, b));
                        } else {
                            filters.push(Predicate::Cmp(
                                CmpOp::Eq,
                                ScalarExpr::Col(a),
                                ScalarExpr::Col(b),
                            ));
                        }
                    }
                    other => filters.push(qualify_pred(other, &sources).map_err(|c| self.err(&c))?),
                }
            }
        }

        // Output shape.
        let has_agg = items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
        let output = if has_agg {
            let mut groups = Vec::new();
            let mut aggs = Vec::new();
            let mut agg_idx = 0usize;
            for item in items {
                match item {
                    SelectItem::Agg { func, input, name } => {
                        agg_idx += 1;
                        aggs.push(AggregateColumn {
                            name: name.unwrap_or_else(|| match func {
                                AggFunc::Sum => format!("sum_{agg_idx}"),
                                AggFunc::Count => format!("count_{agg_idx}"),
                                AggFunc::Min => format!("min_{agg_idx}"),
                                AggFunc::Max => format!("max_{agg_idx}"),
                            }),
                            func,
                            input: qualify(input)?,
                        });
                    }
                    SelectItem::Plain { expr, name } => {
                        let expr = qualify(expr)?;
                        let name = name
                            .or_else(|| default_name(&expr))
                            .ok_or_else(|| self.err("computed select item needs AS name"))?;
                        groups.push(OutputColumn { name, expr });
                    }
                }
            }
            // GROUP BY, when present, must cover exactly the plain items.
            if let Some(gb) = group_by {
                let listed: Vec<ScalarExpr> =
                    gb.into_iter().map(qualify).collect::<RelResult<_>>()?;
                for g in &groups {
                    if !listed.contains(&g.expr) {
                        return Err(
                            self.err(&format!("select item {} missing from GROUP BY", g.name))
                        );
                    }
                }
                if listed.len() != groups.len() {
                    return Err(self.err("GROUP BY lists columns not in the select list"));
                }
            } else if !groups.is_empty() {
                return Err(self.err("aggregate query with plain columns needs GROUP BY"));
            }
            ViewOutput::Aggregate {
                group_by: groups,
                aggregates: aggs,
            }
        } else {
            if group_by.is_some() {
                return Err(self.err("GROUP BY without aggregates is not supported"));
            }
            let mut outs = Vec::new();
            for item in items {
                let SelectItem::Plain { expr, name } = item else {
                    unreachable!("has_agg is false")
                };
                let expr = qualify(expr)?;
                let name = name
                    .or_else(|| default_name(&expr))
                    .ok_or_else(|| self.err("computed select item needs AS name"))?;
                outs.push(OutputColumn { name, expr });
            }
            ViewOutput::Project(outs)
        };

        Ok(ViewDef {
            name: view_name.to_string(),
            sources,
            joins,
            filters,
            output,
        })
    }
}

/// Flattens a predicate's top-level conjunction.
fn split_conjuncts(p: Predicate) -> Vec<Predicate> {
    match p {
        Predicate::And(a, b) => {
            let mut out = split_conjuncts(*a);
            out.extend(split_conjuncts(*b));
            out
        }
        other => vec![other],
    }
}

fn default_name(e: &ScalarExpr) -> Option<String> {
    match e {
        ScalarExpr::Col(c) => Some(c.split_once('.').map(|x| x.1).unwrap_or(c).to_string()),
        _ => None,
    }
}

fn qualify_col(c: &str, sources: &[ViewSource]) -> Result<String, String> {
    if c.contains('.') {
        return Ok(c.to_string());
    }
    if sources.len() == 1 {
        return Ok(format!("{}.{c}", sources[0].alias));
    }
    Err(format!(
        "unqualified column {c} is ambiguous over {} sources",
        sources.len()
    ))
}

fn qualify_expr(e: ScalarExpr, sources: &[ViewSource]) -> Result<ScalarExpr, String> {
    Ok(match e {
        ScalarExpr::Col(c) => ScalarExpr::Col(qualify_col(&c, sources)?),
        ScalarExpr::Lit(v) => ScalarExpr::Lit(v),
        ScalarExpr::Add(a, b) => ScalarExpr::Add(
            Box::new(qualify_expr(*a, sources)?),
            Box::new(qualify_expr(*b, sources)?),
        ),
        ScalarExpr::Sub(a, b) => ScalarExpr::Sub(
            Box::new(qualify_expr(*a, sources)?),
            Box::new(qualify_expr(*b, sources)?),
        ),
        ScalarExpr::Mul(a, b) => ScalarExpr::Mul(
            Box::new(qualify_expr(*a, sources)?),
            Box::new(qualify_expr(*b, sources)?),
        ),
    })
}

fn qualify_pred(p: Predicate, sources: &[ViewSource]) -> Result<Predicate, String> {
    Ok(match p {
        Predicate::Cmp(op, a, b) => {
            Predicate::Cmp(op, qualify_expr(a, sources)?, qualify_expr(b, sources)?)
        }
        Predicate::And(a, b) => Predicate::And(
            Box::new(qualify_pred(*a, sources)?),
            Box::new(qualify_pred(*b, sources)?),
        ),
        Predicate::Or(a, b) => Predicate::Or(
            Box::new(qualify_pred(*a, sources)?),
            Box::new(qualify_pred(*b, sources)?),
        ),
        Predicate::Not(a) => Predicate::Not(Box::new(qualify_pred(*a, sources)?)),
        Predicate::True => Predicate::True,
    })
}

fn parse_date(s: &str) -> Option<Value> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(Value::Date(ymd_to_days(y, m, d)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q3_identically_to_the_handwritten_def() {
        // The exact SQL from the paper's Q3, parsed, must equal the
        // handwritten definition in uww-tpcd (checked structurally here
        // against an equivalent local reconstruction).
        let sql = "
            SELECT l_orderkey, o_orderdate, o_shippriority,
                   SUM(l_extendedprice * (1 - l_discount)) AS revenue
            FROM   CUSTOMER C, ORD O, LINEITEM L
            WHERE  C.c_mktsegment = 'BUILDING'
              AND  C.c_custkey = O.o_custkey AND L.l_orderkey = O.o_orderkey
              AND  O.o_orderdate < DATE '1995-03-15'
              AND  L.l_shipdate > DATE '1995-03-15'
            GROUP BY l_orderkey, o_orderdate, o_shippriority";
        // Columns in SELECT/GROUP BY are unqualified: ambiguous over three
        // sources -> must be qualified. Re-run with qualified columns.
        assert!(parse_view_def("Q3", sql).is_err());

        let sql = "
            SELECT L.l_orderkey, O.o_orderdate, O.o_shippriority,
                   SUM(L.l_extendedprice * (1.00 - L.l_discount)) AS revenue
            FROM   CUSTOMER C, ORD O, LINEITEM L
            WHERE  C.c_mktsegment = 'BUILDING'
              AND  C.c_custkey = O.o_custkey AND L.l_orderkey = O.o_orderkey
              AND  O.o_orderdate < DATE '1995-03-15'
              AND  L.l_shipdate > DATE '1995-03-15'
            GROUP BY L.l_orderkey, O.o_orderdate, O.o_shippriority";
        let def = parse_view_def("Q3", sql).unwrap();
        assert_eq!(def.sources.len(), 3);
        assert_eq!(def.joins.len(), 2);
        assert_eq!(def.filters.len(), 3);
        match &def.output {
            ViewOutput::Aggregate {
                group_by,
                aggregates,
            } => {
                assert_eq!(group_by.len(), 3);
                assert_eq!(group_by[0].name, "l_orderkey");
                assert_eq!(aggregates.len(), 1);
                assert_eq!(aggregates[0].name, "revenue");
                assert_eq!(aggregates[0].func, AggFunc::Sum);
                assert_eq!(
                    aggregates[0].input,
                    ScalarExpr::col("L.l_extendedprice").mul(
                        ScalarExpr::lit(Value::Decimal(100)).sub(ScalarExpr::col("L.l_discount"))
                    )
                );
            }
            _ => panic!("aggregate expected"),
        }
        // The date filter carries an exact Date value.
        assert!(def.filters.iter().any(|f| matches!(
            f,
            Predicate::Cmp(CmpOp::Lt, _, ScalarExpr::Lit(Value::Date(_)))
        )));
    }

    #[test]
    fn single_source_auto_qualification() {
        let def = parse_view_def(
            "V",
            "SELECT k, x + x AS xx FROM R WHERE x > 3 OR NOT (k = 1)",
        )
        .unwrap();
        assert_eq!(def.sources[0].alias, "R");
        match &def.output {
            ViewOutput::Project(outs) => {
                assert_eq!(outs[0].expr, ScalarExpr::col("R.k"));
                assert_eq!(outs[0].name, "k");
                assert_eq!(outs[1].name, "xx");
            }
            _ => panic!("projection expected"),
        }
        assert_eq!(def.joins.len(), 0);
        assert_eq!(def.filters.len(), 1); // the whole OR is one filter
    }

    #[test]
    fn count_star_and_default_agg_names() {
        let def = parse_view_def("V", "SELECT g, COUNT(*), SUM(x) FROM R GROUP BY g").unwrap();
        match &def.output {
            ViewOutput::Aggregate { aggregates, .. } => {
                assert_eq!(aggregates[0].func, AggFunc::Count);
                assert_eq!(aggregates[0].name, "count_1");
                assert_eq!(aggregates[1].name, "sum_2");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn same_source_equality_is_a_filter_not_a_join() {
        let def = parse_view_def(
            "V",
            "SELECT R.a AS a FROM R, S WHERE R.a = R.b AND R.k = S.k",
        )
        .unwrap();
        assert_eq!(def.joins.len(), 1);
        assert_eq!(def.filters.len(), 1);
    }

    #[test]
    fn error_cases() {
        // Missing FROM.
        assert!(parse_view_def("V", "SELECT x").is_err());
        // GROUP BY without aggregates.
        assert!(parse_view_def("V", "SELECT k FROM R GROUP BY k").is_err());
        // Aggregate with plain column but no GROUP BY.
        assert!(parse_view_def("V", "SELECT k, SUM(x) FROM R").is_err());
        // GROUP BY not covering a plain column.
        assert!(parse_view_def("V", "SELECT k, g, SUM(x) FROM R GROUP BY k").is_err());
        // Computed column without a name.
        assert!(parse_view_def("V", "SELECT x + 1 FROM R").is_err());
        // Trailing garbage (note `FROM R extra` would parse: `extra` is an
        // alias, as in standard SQL).
        assert!(parse_view_def("V", "SELECT k FROM R WHERE k = 1 stuff").is_err());
        // Bad date.
        assert!(parse_view_def("V", "SELECT k FROM R WHERE d < DATE '1995-13-01'").is_err());
    }

    #[test]
    fn parsed_defs_validate_and_materialize() {
        use crate::schema::Schema;
        use crate::value::ValueType;
        let def = parse_view_def(
            "V",
            "SELECT g, SUM(x) AS total FROM R WHERE x >= 0 GROUP BY g",
        )
        .unwrap();
        let lookup = |name: &str| -> RelResult<Schema> {
            if name == "R" {
                Ok(Schema::of(&[
                    ("k", ValueType::Int),
                    ("g", ValueType::Int),
                    ("x", ValueType::Decimal),
                ]))
            } else {
                Err(RelError::UnknownRelation(name.into()))
            }
        };
        def.validate(lookup).unwrap();
    }
}
