//! Table statistics for result-size estimation.
//!
//! The paper (Section 5.5) prescribes "standard query result size
//! estimation methods \[Ull89\]" for deriving `|ΔV|` and `|V'|` of derived
//! views. Those methods need per-column statistics: cardinalities, distinct
//! counts, and value ranges. This module collects them exactly (the tables
//! are in memory; at warehouse scales a pass per update window is cheap).

use crate::table::Table;
use crate::value::Value;
use std::collections::HashSet;

/// Statistics for one column.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub distinct: u64,
    /// Minimum value (None for an empty table).
    pub min: Option<Value>,
    /// Maximum value.
    pub max: Option<Value>,
}

/// Statistics for one table.
#[derive(Clone, Debug, PartialEq)]
pub struct TableStats {
    /// Total rows (with multiplicities).
    pub rows: u64,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collects exact statistics with one pass over the table.
    pub fn collect(table: &Table) -> TableStats {
        let width = table.schema().len();
        let mut distinct: Vec<HashSet<&Value>> = vec![HashSet::new(); width];
        let mut mins: Vec<Option<&Value>> = vec![None; width];
        let mut maxs: Vec<Option<&Value>> = vec![None; width];
        for (row, _) in table.iter() {
            for (i, v) in row.values().iter().enumerate() {
                distinct[i].insert(v);
                if mins[i].is_none_or(|m| v < m) {
                    mins[i] = Some(v);
                }
                if maxs[i].is_none_or(|m| v > m) {
                    maxs[i] = Some(v);
                }
            }
        }
        TableStats {
            rows: table.len(),
            columns: (0..width)
                .map(|i| ColumnStats {
                    distinct: distinct[i].len() as u64,
                    min: mins[i].cloned(),
                    max: maxs[i].cloned(),
                })
                .collect(),
        }
    }

    /// The stats of column `idx`.
    pub fn column(&self, idx: usize) -> &ColumnStats {
        &self.columns[idx]
    }

    /// Selectivity of an equality predicate on column `idx` (the classic
    /// `1/distinct` uniform assumption).
    pub fn eq_selectivity(&self, idx: usize) -> f64 {
        let d = self.columns[idx].distinct;
        if d == 0 {
            0.0
        } else {
            1.0 / d as f64
        }
    }

    /// Selectivity of a range predicate `col < bound` under a uniform
    /// assumption over numeric/date ranges; 1/3 fallback (System R's
    /// classic default) for strings or empty tables.
    pub fn range_selectivity_lt(&self, idx: usize, bound: &Value) -> f64 {
        range_fraction(&self.columns[idx], bound)
            .unwrap_or(1.0 / 3.0)
            .clamp(0.0, 1.0)
    }

    /// Selectivity of `col > bound`.
    pub fn range_selectivity_gt(&self, idx: usize, bound: &Value) -> f64 {
        range_fraction(&self.columns[idx], bound)
            .map(|f| 1.0 - f)
            .unwrap_or(1.0 / 3.0)
            .clamp(0.0, 1.0)
    }
}

/// Fraction of the column's [min, max] range below `bound`.
fn range_fraction(c: &ColumnStats, bound: &Value) -> Option<f64> {
    let (min, max) = (c.min.as_ref()?, c.max.as_ref()?);
    let to_f = |v: &Value| -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::Decimal(d) => Some(*d as f64),
            Value::Date(d) => Some(*d as f64),
            Value::Str(_) => None,
        }
    };
    let (lo, hi, b) = (to_f(min)?, to_f(max)?, to_f(bound)?);
    if hi <= lo {
        return Some(if b > lo { 1.0 } else { 0.0 });
    }
    Some((b - lo) / (hi - lo))
}

/// Estimated output cardinality of an equi-join between two tables on one
/// key pair: `|R|·|S| / max(d_R, d_S)` (the textbook containment-of-value-
/// sets rule).
pub fn join_cardinality(
    left_rows: f64,
    left_distinct: u64,
    right_rows: f64,
    right_distinct: u64,
) -> f64 {
    let d = left_distinct.max(right_distinct).max(1) as f64;
    left_rows * right_rows / d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tup;
    use crate::value::ValueType;

    fn table() -> Table {
        let mut t = Table::new(
            "T",
            Schema::of(&[("k", ValueType::Int), ("s", ValueType::Str)]),
        );
        for i in 0..10 {
            t.insert(tup![
                Value::Int(i % 5),
                Value::str(if i % 2 == 0 { "a" } else { "b" })
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn collect_counts_distincts_and_ranges() {
        let s = TableStats::collect(&table());
        assert_eq!(s.rows, 10);
        assert_eq!(s.column(0).distinct, 5);
        assert_eq!(s.column(1).distinct, 2);
        assert_eq!(s.column(0).min, Some(Value::Int(0)));
        assert_eq!(s.column(0).max, Some(Value::Int(4)));
    }

    #[test]
    fn selectivities() {
        let s = TableStats::collect(&table());
        assert_eq!(s.eq_selectivity(0), 0.2);
        assert_eq!(s.eq_selectivity(1), 0.5);
        // k < 2 over range [0,4]: fraction 0.5.
        assert_eq!(s.range_selectivity_lt(0, &Value::Int(2)), 0.5);
        assert_eq!(s.range_selectivity_gt(0, &Value::Int(2)), 0.5);
        // Strings fall back to 1/3.
        assert!((s.range_selectivity_lt(1, &Value::str("z")) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_stats() {
        let t = Table::new("E", Schema::of(&[("k", ValueType::Int)]));
        let s = TableStats::collect(&t);
        assert_eq!(s.rows, 0);
        assert_eq!(s.column(0).distinct, 0);
        assert_eq!(s.column(0).min, None);
        assert_eq!(s.eq_selectivity(0), 0.0);
    }

    #[test]
    fn join_cardinality_rule() {
        // |R|=100 with 10 keys, |S|=50 with 25 keys -> 100*50/25 = 200.
        assert_eq!(join_cardinality(100.0, 10, 50.0, 25), 200.0);
        assert_eq!(join_cardinality(10.0, 0, 10.0, 0), 100.0); // degenerate
    }

    #[test]
    fn constant_column_range() {
        let mut t = Table::new("C", Schema::of(&[("k", ValueType::Int)]));
        for _ in 0..3 {
            t.insert(tup![Value::Int(7)]).unwrap();
        }
        let s = TableStats::collect(&t);
        assert_eq!(s.range_selectivity_lt(0, &Value::Int(7)), 0.0);
        assert_eq!(s.range_selectivity_lt(0, &Value::Int(8)), 1.0);
    }
}
