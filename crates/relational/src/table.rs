//! Multiset tables: the stored extent of a materialized view.

use crate::delta::DeltaRelation;
use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// A bag (multiset) of tuples with a fixed schema.
///
/// The paper's views are SQL relations with bag semantics; we store each
/// distinct tuple with a positive multiplicity. `len` is the total number of
/// rows (sum of multiplicities), which is the quantity `|V|` used by the
/// linear work metric.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: HashMap<Tuple, u64>,
    len: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: HashMap::new(),
            len: 0,
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of rows, counting multiplicities (the paper's `|V|`).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct tuples.
    pub fn distinct_len(&self) -> usize {
        self.rows.len()
    }

    /// Inserts `count` copies of `tuple`.
    pub fn insert_n(&mut self, tuple: Tuple, count: u64) -> RelResult<()> {
        if count == 0 {
            return Ok(());
        }
        if !tuple.conforms_to(&self.schema) {
            return Err(RelError::SchemaMismatch {
                detail: format!("tuple {tuple:?} does not fit table {}", self.name),
            });
        }
        *self.rows.entry(tuple).or_insert(0) += count;
        self.len += count;
        Ok(())
    }

    /// Inserts one copy of `tuple`.
    pub fn insert(&mut self, tuple: Tuple) -> RelResult<()> {
        self.insert_n(tuple, 1)
    }

    /// Removes `count` copies of `tuple`; errors if fewer are present.
    pub fn delete_n(&mut self, tuple: &Tuple, count: u64) -> RelResult<()> {
        if count == 0 {
            return Ok(());
        }
        match self.rows.get_mut(tuple) {
            Some(m) if *m >= count => {
                *m -= count;
                if *m == 0 {
                    self.rows.remove(tuple);
                }
                self.len -= count;
                Ok(())
            }
            _ => Err(RelError::NegativeMultiplicity {
                relation: self.name.clone(),
            }),
        }
    }

    /// Multiplicity of `tuple` (0 when absent).
    pub fn multiplicity(&self, tuple: &Tuple) -> u64 {
        self.rows.get(tuple).copied().unwrap_or(0)
    }

    /// Iterates `(tuple, multiplicity)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.rows.iter().map(|(t, &m)| (t, m))
    }

    /// All rows as a sorted `Vec<(Tuple, u64)>`, for deterministic output.
    pub fn sorted_rows(&self) -> Vec<(Tuple, u64)> {
        let mut v: Vec<(Tuple, u64)> = self.rows.iter().map(|(t, &m)| (t.clone(), m)).collect();
        v.sort();
        v
    }

    /// Applies a signed delta: inserts plus tuples, deletes minus tuples.
    ///
    /// This is the paper's `Inst` primitive. Errors (without partial effects
    /// rolled back — callers treat the error as fatal) if a deletion would
    /// remove more copies than are stored.
    pub fn install(&mut self, delta: &DeltaRelation) -> RelResult<()> {
        if *delta.schema() != self.schema {
            return Err(RelError::SchemaMismatch {
                detail: format!("delta schema does not match table {}", self.name),
            });
        }
        // Validate deletions up front so errors leave the table untouched.
        for (t, m) in delta.iter() {
            if m < 0 && self.multiplicity(t) < (-m) as u64 {
                return Err(RelError::NegativeMultiplicity {
                    relation: self.name.clone(),
                });
            }
        }
        for (t, m) in delta.iter() {
            if m > 0 {
                self.insert_n(t.clone(), m as u64)?;
            } else if m < 0 {
                self.delete_n(t, (-m) as u64)?;
            }
        }
        Ok(())
    }

    /// Structural equality: same schema and same multiset of rows.
    /// (`Table` deliberately does not implement `PartialEq`; names may differ.)
    pub fn same_contents(&self, other: &Table) -> bool {
        self.schema == other.schema && self.len == other.len && self.rows == other.rows
    }

    /// The delta that transforms `self` into `target`:
    /// plus tuples where `target` has more copies, minus where fewer.
    /// `self.install(&self.diff(&target))` yields `target`.
    pub fn diff(&self, target: &Table) -> RelResult<DeltaRelation> {
        if self.schema != *target.schema() {
            return Err(RelError::SchemaMismatch {
                detail: format!(
                    "diff between incompatible schemas ({} vs {})",
                    self.name,
                    target.name()
                ),
            });
        }
        let mut d = DeltaRelation::new(self.schema.clone());
        for (t, m) in target.iter() {
            let before = self.multiplicity(t) as i64;
            d.add(t.clone(), m as i64 - before);
        }
        for (t, m) in self.iter() {
            if target.multiplicity(t) == 0 {
                d.add(t.clone(), -(m as i64));
            }
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::value::{Value, ValueType};

    fn t() -> Table {
        Table::new("T", Schema::of(&[("a", ValueType::Int)]))
    }

    #[test]
    fn insert_delete_multiplicity() {
        let mut tab = t();
        tab.insert(tup![Value::Int(1)]).unwrap();
        tab.insert_n(tup![Value::Int(1)], 2).unwrap();
        tab.insert(tup![Value::Int(2)]).unwrap();
        assert_eq!(tab.len(), 4);
        assert_eq!(tab.distinct_len(), 2);
        assert_eq!(tab.multiplicity(&tup![Value::Int(1)]), 3);
        tab.delete_n(&tup![Value::Int(1)], 2).unwrap();
        assert_eq!(tab.len(), 2);
        assert_eq!(tab.multiplicity(&tup![Value::Int(1)]), 1);
        assert!(tab.delete_n(&tup![Value::Int(1)], 5).is_err());
        assert!(tab.delete_n(&tup![Value::Int(9)], 1).is_err());
    }

    #[test]
    fn schema_enforced() {
        let mut tab = t();
        assert!(tab.insert(tup![Value::str("x")]).is_err());
        assert!(tab.insert(tup![Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn install_round_trip() {
        let mut tab = t();
        tab.insert_n(tup![Value::Int(1)], 2).unwrap();
        let mut d = DeltaRelation::new(tab.schema().clone());
        d.add(tup![Value::Int(1)], -1);
        d.add(tup![Value::Int(5)], 3);
        tab.install(&d).unwrap();
        assert_eq!(tab.multiplicity(&tup![Value::Int(1)]), 1);
        assert_eq!(tab.multiplicity(&tup![Value::Int(5)]), 3);
        assert_eq!(tab.len(), 4);
    }

    #[test]
    fn install_validates_before_mutating() {
        let mut tab = t();
        tab.insert(tup![Value::Int(1)]).unwrap();
        let mut d = DeltaRelation::new(tab.schema().clone());
        d.add(tup![Value::Int(7)], 1);
        d.add(tup![Value::Int(1)], -2); // would go negative
        assert!(tab.install(&d).is_err());
        // Nothing was applied.
        assert_eq!(tab.len(), 1);
        assert_eq!(tab.multiplicity(&tup![Value::Int(7)]), 0);
    }

    #[test]
    fn same_contents_ignores_name() {
        let mut a = Table::new("A", Schema::of(&[("a", ValueType::Int)]));
        let mut b = Table::new("B", Schema::of(&[("a", ValueType::Int)]));
        a.insert(tup![Value::Int(1)]).unwrap();
        b.insert(tup![Value::Int(1)]).unwrap();
        assert!(a.same_contents(&b));
        b.insert(tup![Value::Int(1)]).unwrap();
        assert!(!a.same_contents(&b));
    }

    #[test]
    fn diff_round_trips() {
        let mut a = t();
        let mut b = Table::new("T2", Schema::of(&[("a", ValueType::Int)]));
        for i in [1, 1, 2, 3] {
            a.insert(tup![Value::Int(i)]).unwrap();
        }
        for i in [1, 3, 3, 9] {
            b.insert(tup![Value::Int(i)]).unwrap();
        }
        let d = a.diff(&b).unwrap();
        // 1: 2->1 (-1); 2: 1->0 (-1); 3: 1->2 (+1); 9: 0->1 (+1).
        assert_eq!(d.minus_len(), 2);
        assert_eq!(d.plus_len(), 2);
        let rebuilt = d.applied_to(&a).unwrap();
        assert!(rebuilt.same_contents(&b));
        // Identity diff is empty.
        assert!(a.diff(&a).unwrap().is_empty());
        // Schema mismatch rejected.
        let other = Table::new("X", Schema::of(&[("z", ValueType::Str)]));
        assert!(a.diff(&other).is_err());
    }

    #[test]
    fn sorted_rows_deterministic() {
        let mut tab = t();
        for i in [5, 1, 3] {
            tab.insert(tup![Value::Int(i)]).unwrap();
        }
        let rows: Vec<i64> = tab
            .sorted_rows()
            .iter()
            .map(|(t, _)| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(rows, vec![1, 3, 5]);
    }
}
