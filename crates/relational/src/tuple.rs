//! Tuples: immutable rows of [`Value`]s.

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable row. Cloning is O(1) (shared allocation), which matters
/// because multiset tables and delta relations key hash maps by tuples.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// The values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at column `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Projects the tuple onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenates two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Checks that this tuple's arity and value types match `schema`.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.arity() == schema.len()
            && self
                .values
                .iter()
                .zip(schema.columns())
                .all(|(v, c)| v.value_type() == c.ty)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = f.debug_tuple("");
        for v in self.values.iter() {
            t.field(v);
        }
        t.finish()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Builds a tuple from a heterogeneous list of values.
///
/// ```
/// use uww_relational::{tup, Value};
/// let t = tup![Value::Int(1), Value::str("x")];
/// assert_eq!(t.arity(), 2);
/// ```
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($v),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueType;

    #[test]
    fn project_and_concat() {
        let t = tup![Value::Int(1), Value::str("x"), Value::Date(3)];
        assert_eq!(t.project(&[2, 0]), tup![Value::Date(3), Value::Int(1)]);
        let u = tup![Value::Int(9)];
        assert_eq!(t.concat(&u).arity(), 4);
        assert_eq!(*t.concat(&u).get(3), Value::Int(9));
    }

    #[test]
    fn conformance() {
        let s = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Str)]);
        assert!(tup![Value::Int(1), Value::str("x")].conforms_to(&s));
        assert!(!tup![Value::str("x"), Value::Int(1)].conforms_to(&s));
        assert!(!tup![Value::Int(1)].conforms_to(&s));
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let t = tup![Value::Int(1)];
        let u = t.clone();
        assert!(std::ptr::eq(t.values().as_ptr(), u.values().as_ptr()));
    }
}
