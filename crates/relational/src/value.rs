//! Scalar values stored in warehouse tuples.
//!
//! All variants have total equality, total ordering, and a stable hash, so
//! tuples can live in hash-based multisets. Monetary quantities use scale-2
//! fixed-point [`Value::Decimal`] instead of floating point: equality of
//! incremental results against from-scratch recomputation must be exact.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Number of fractional digits carried by [`Value::Decimal`].
pub const DECIMAL_SCALE: u32 = 2;
/// `10^DECIMAL_SCALE`: one whole unit expressed in decimal ticks.
pub const DECIMAL_ONE: i64 = 100;

/// A scalar value.
///
/// `Decimal(n)` represents the number `n / 100` (scale-2 fixed point).
/// `Date(n)` counts days since 1970-01-01 (negative allowed).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit signed integer (keys, counts, priorities).
    Int(i64),
    /// Scale-2 fixed-point number (prices, discounts, balances).
    Decimal(i64),
    /// Interned immutable string.
    Str(Arc<str>),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Builds a decimal from whole units and cents, e.g. `decimal(12, 34)` is 12.34.
    pub fn decimal(units: i64, cents: i64) -> Self {
        debug_assert!((0..DECIMAL_ONE).contains(&cents.abs()));
        let sign = if units < 0 { -1 } else { 1 };
        Value::Decimal(units * DECIMAL_ONE + sign * cents)
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the raw scale-2 payload, if this is a [`Value::Decimal`].
    pub fn as_decimal(&self) -> Option<i64> {
        match self {
            Value::Decimal(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the day count, if this is a [`Value::Date`].
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// The [`ValueType`] tag of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Decimal(_) => ValueType::Decimal,
            Value::Str(_) => ValueType::Str,
            Value::Date(_) => ValueType::Date,
        }
    }

    /// Numeric payload used by arithmetic: the raw `i64` behind `Int` or
    /// `Decimal`. Returns `None` for strings and dates.
    pub fn numeric_raw(&self) -> Option<i64> {
        match self {
            Value::Int(v) | Value::Decimal(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Decimal(v) => {
                let sign = if *v < 0 { "-" } else { "" };
                let a = v.abs();
                write!(f, "{sign}{}.{:02}", a / DECIMAL_ONE, a % DECIMAL_ONE)
            }
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Date(v) => {
                let (y, m, d) = days_to_ymd(*v);
                write!(f, "{y:04}-{m:02}-{d:02}")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(v) => write!(f, "{v}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// The type of a column / value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValueType {
    /// 64-bit integer.
    Int,
    /// Scale-2 fixed point.
    Decimal,
    /// String.
    Str,
    /// Days since epoch.
    Date,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "int",
            ValueType::Decimal => "decimal",
            ValueType::Str => "str",
            ValueType::Date => "date",
        };
        f.write_str(s)
    }
}

/// Compares two values of possibly different types.
///
/// Values of different types order by type tag; within a type the natural
/// order applies. This keeps sorting total without panicking, while the
/// planner-level type checks ensure heterogeneous comparisons never occur in
/// well-typed queries.
pub fn total_cmp(a: &Value, b: &Value) -> Ordering {
    a.cmp(b)
}

/// Converts a calendar date to days since 1970-01-01 (proleptic Gregorian).
pub fn date(year: i32, month: u32, day: u32) -> Value {
    Value::Date(ymd_to_days(year, month, day))
}

/// Days since epoch for the given calendar date.
///
/// Uses Howard Hinnant's `days_from_civil` algorithm; exact for all Gregorian
/// dates.
pub fn ymd_to_days(y: i32, m: u32, d: u32) -> i32 {
    assert!((1..=12).contains(&m), "month out of range: {m}");
    assert!((1..=31).contains(&d), "day out of range: {d}");
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146097 + doe - 719468) as i32
}

/// Inverse of [`ymd_to_days`].
pub fn days_to_ymd(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_constructor_and_display() {
        assert_eq!(Value::decimal(12, 34), Value::Decimal(1234));
        assert_eq!(format!("{:?}", Value::Decimal(1234)), "12.34");
        assert_eq!(format!("{:?}", Value::Decimal(-5)), "-0.05");
        assert_eq!(format!("{:?}", Value::Decimal(7)), "0.07");
    }

    #[test]
    fn date_round_trip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1992, 1, 1),
            (1995, 3, 15),
            (1998, 12, 31),
            (2000, 2, 29),
            (1900, 3, 1),
            (1969, 12, 31),
        ] {
            let days = ymd_to_days(y, m, d);
            assert_eq!(days_to_ymd(days), (y, m, d), "date {y}-{m}-{d}");
        }
        assert_eq!(ymd_to_days(1970, 1, 1), 0);
        assert_eq!(ymd_to_days(1970, 1, 2), 1);
        assert_eq!(ymd_to_days(1969, 12, 31), -1);
    }

    #[test]
    fn date_ordering_matches_calendar() {
        assert!(date(1995, 3, 15) < date(1995, 3, 16));
        assert!(date(1994, 12, 31) < date(1995, 1, 1));
    }

    #[test]
    fn value_type_tags() {
        assert_eq!(Value::Int(1).value_type(), ValueType::Int);
        assert_eq!(Value::Decimal(1).value_type(), ValueType::Decimal);
        assert_eq!(Value::str("x").value_type(), ValueType::Str);
        assert_eq!(Value::Date(1).value_type(), ValueType::Date);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_decimal(), None);
        assert_eq!(Value::Decimal(7).as_decimal(), Some(7));
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::Date(3).as_date(), Some(3));
        assert_eq!(Value::Int(7).numeric_raw(), Some(7));
        assert_eq!(Value::Decimal(9).numeric_raw(), Some(9));
        assert_eq!(Value::str("a").numeric_raw(), None);
    }

    #[test]
    fn display_str_unquoted() {
        assert_eq!(Value::str("BUILDING").to_string(), "BUILDING");
        assert_eq!(format!("{:?}", Value::str("BUILDING")), "\"BUILDING\"");
    }
}
