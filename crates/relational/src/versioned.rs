//! Multi-version snapshot layer over the catalog.
//!
//! The paper's update window hurts because readers are either locked out
//! (Strict isolation, §7) or exposed to half-installed views (Low isolation).
//! This module gives the warehouse a third option: copy-on-write catalog
//! versions. Every install publishes a *new* [`CatalogVersion`] — an epoch
//! number plus a name→`Arc<Table>` map — and readers pin whichever version
//! was current when their query began. A pinned version is immutable, so a
//! reader can never observe a torn install, and publishing never waits for
//! readers to drain.
//!
//! Strict isolation is still expressible (and now *measurable*): each view
//! has an associated [`RwLock`] obtained via [`VersionedCatalog::view_lock`].
//! A strict installer holds the write lock across install+publish; a strict
//! reader takes the read lock before pinning. MVCC mode simply skips the
//! view locks.

use crate::error::{RelError, RelResult};
use crate::table::Table;
use crate::Catalog;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

/// One immutable published state of the warehouse: an epoch and the table
/// extents that were current when it was published.
///
/// Tables are shared via `Arc`, so publishing a new version after a single
/// view install copies one map of pointers, not the data.
#[derive(Clone, Debug)]
pub struct CatalogVersion {
    epoch: u64,
    tables: BTreeMap<String, Arc<Table>>,
}

impl CatalogVersion {
    /// The epoch at which this version was published. Epoch 0 is the load
    /// state; each publish increments it by one.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Looks up a view's extent in this version.
    pub fn get(&self, name: &str) -> RelResult<&Arc<Table>> {
        self.tables
            .get(name)
            .ok_or_else(|| RelError::UnknownRelation(name.to_string()))
    }

    /// View names in deterministic (sorted) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Iterates extents in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Table>> {
        self.tables.values()
    }

    /// Number of views in this version.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the version holds no views.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// A catalog that publishes copy-on-write versions.
///
/// Shared between an updater thread (which calls [`publish`]) and any number
/// of reader threads (which call [`snapshot`]); all methods take `&self`.
///
/// [`publish`]: VersionedCatalog::publish
/// [`snapshot`]: VersionedCatalog::snapshot
#[derive(Debug)]
pub struct VersionedCatalog {
    current: RwLock<Arc<CatalogVersion>>,
    /// Per-view locks for Strict isolation. Created lazily; MVCC readers and
    /// installers never touch them.
    view_locks: Mutex<BTreeMap<String, Arc<RwLock<()>>>>,
}

impl VersionedCatalog {
    /// Builds version 0 from a plain catalog by cloning every extent.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let tables = catalog
            .iter()
            .map(|t| (t.name().to_string(), Arc::new(t.clone())))
            .collect();
        Self {
            current: RwLock::new(Arc::new(CatalogVersion { epoch: 0, tables })),
            view_locks: Mutex::new(BTreeMap::new()),
        }
    }

    /// Pins the current version. The returned `Arc` stays valid (and
    /// immutable) no matter how many installs publish after it.
    pub fn snapshot(&self) -> Arc<CatalogVersion> {
        Arc::clone(&read_lock(&self.current))
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        read_lock(&self.current).epoch
    }

    /// Publishes a new version in which `table` replaces (or introduces) the
    /// extent stored under its own name. Returns the new epoch.
    ///
    /// The swap is atomic with respect to [`snapshot`]: a reader pins either
    /// the version before this publish or the one after, never a mixture.
    ///
    /// [`snapshot`]: VersionedCatalog::snapshot
    pub fn publish(&self, table: Table) -> u64 {
        let mut guard = write_lock(&self.current);
        let mut tables = guard.tables.clone();
        tables.insert(table.name().to_string(), Arc::new(table));
        let epoch = guard.epoch + 1;
        *guard = Arc::new(CatalogVersion { epoch, tables });
        epoch
    }

    /// The Strict-isolation lock for `view`, created on first use.
    ///
    /// Strict installers hold the *write* half across install+publish;
    /// strict readers hold the *read* half while they pin and scan. MVCC
    /// mode never calls this, which is exactly the paper's low-isolation
    /// observation: dropping the locks removes the reader stall.
    pub fn view_lock(&self, view: &str) -> Arc<RwLock<()>> {
        let mut locks = self.view_locks.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            locks
                .entry(view.to_string())
                .or_insert_with(|| Arc::new(RwLock::new(()))),
        )
    }

    /// Convenience: pin the current version and resolve one view in it.
    /// Returns the extent together with the pinned epoch.
    pub fn read_pinned(&self, view: &str) -> RelResult<(Arc<Table>, u64)> {
        let snap = self.snapshot();
        Ok((Arc::clone(snap.get(view)?), snap.epoch))
    }
}

fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::snapshot::table_digest;
    use crate::tup;
    use crate::value::{Value, ValueType};

    fn table_with(name: &str, rows: i64) -> Table {
        let mut t = Table::new(name, Schema::of(&[("k", ValueType::Int)]));
        for i in 0..rows {
            t.insert(tup![Value::Int(i)]).unwrap();
        }
        t
    }

    fn seed_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(table_with("T", 3)).unwrap();
        c.register(table_with("U", 1)).unwrap();
        c
    }

    #[test]
    fn snapshots_pin_an_epoch() {
        let vc = VersionedCatalog::from_catalog(&seed_catalog());
        assert_eq!(vc.epoch(), 0);
        let before = vc.snapshot();
        let e = vc.publish(table_with("T", 5));
        assert_eq!(e, 1);
        // The pinned version is untouched by the publish.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.get("T").unwrap().len(), 3);
        let after = vc.snapshot();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.get("T").unwrap().len(), 5);
        // Other views are shared, not copied.
        assert!(Arc::ptr_eq(
            before.get("U").unwrap(),
            after.get("U").unwrap()
        ));
    }

    #[test]
    fn read_pinned_resolves_one_view() {
        let vc = VersionedCatalog::from_catalog(&seed_catalog());
        let (t, epoch) = vc.read_pinned("T").unwrap();
        assert_eq!((t.len(), epoch), (3, 0));
        assert!(matches!(
            vc.read_pinned("missing"),
            Err(RelError::UnknownRelation(_))
        ));
    }

    #[test]
    fn view_locks_are_per_view_and_stable() {
        let vc = VersionedCatalog::from_catalog(&seed_catalog());
        let a = vc.view_lock("T");
        let b = vc.view_lock("T");
        let c = vc.view_lock("U");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_install() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let vc = Arc::new(VersionedCatalog::from_catalog(&seed_catalog()));
        let pre = table_digest(&vc.snapshot().get("T").unwrap().clone());
        let post_table = table_with("T", 7);
        let post = table_digest(&post_table);
        let done = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let vc = Arc::clone(&vc);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut seen_epochs = Vec::new();
                    let mut last_epoch = 0;
                    while !done.load(Ordering::Relaxed) {
                        let (t, epoch) = vc.read_pinned("T").unwrap();
                        assert!(epoch >= last_epoch, "epochs must be monotone");
                        last_epoch = epoch;
                        seen_epochs.push((epoch, table_digest(&t)));
                    }
                    seen_epochs
                })
            })
            .collect();

        // Give the readers a moment to observe epoch 0, then publish.
        std::thread::sleep(std::time::Duration::from_millis(5));
        vc.publish(post_table);
        std::thread::sleep(std::time::Duration::from_millis(5));
        done.store(true, Ordering::Relaxed);

        for r in readers {
            for (epoch, digest) in r.join().unwrap() {
                let expected = if epoch == 0 { pre } else { post };
                assert_eq!(digest, expected, "torn read at epoch {epoch}");
            }
        }
    }
}
